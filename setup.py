"""Compatibility shim so `pip install -e .` also works on older tooling.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so editable installs succeed in offline environments whose setuptools
lacks PEP 660 support (use ``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
