"""Unit and property tests for the open-loop load generator (loadgen).

Three layers, mirroring the module:

* **Arrival processes** — property tests: strictly increasing timestamps
  inside the window for every process and seed, mean rate within tolerance
  of the requested one at a fixed seed, determinism in the seed, and the
  fail-fast validation the CLI relies on.
* **Traces** — record -> save -> load -> replay reproduces the arrival
  sequence exactly and the file bytes are stable; every malformed-file shape
  raises a ``ValueError`` naming the file.
* **The driver and the chaos layer** — a frozen-clock open-loop run is a
  pure function of the trace and matches the sequential baseline estimate
  for estimate; overload sheds typed and bounded; ``SlowReplica`` /
  ``CacheWipe`` cost latency but never move a number; ``locate_knee`` and
  ``assert_degraded_not_collapsed`` enforce the degradation contract.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import math

import numpy as np
import pytest

from repro.core import NaruConfig
from repro.data import make_sessions, make_users
from repro.serve import (
    ARRIVAL_PROCESSES,
    ArrivalTrace,
    AsyncFleetClient,
    CacheWipe,
    ChaosScenario,
    FleetRouter,
    ModelRegistry,
    SCENARIOS,
    SlowReplica,
    VirtualClock,
    assert_degraded_not_collapsed,
    diurnal_arrivals,
    flash_arrivals,
    generate_arrivals,
    generate_mixed_workload,
    locate_knee,
    poisson_arrivals,
    run_fleet_sequential,
    run_open_loop,
    sweep_offered_load,
)

_CONFIG = NaruConfig(epochs=1, hidden_sizes=(8, 8), batch_size=64,
                     progressive_samples=40, seed=0)
_SAMPLES = 40

_GENERATORS = {"poisson": poisson_arrivals, "diurnal": diurnal_arrivals,
               "flash": flash_arrivals}


@pytest.fixture(scope="module")
def fleet():
    """A small fitted two-relation registry shared by the open-loop tests."""
    registry = ModelRegistry(default_config=_CONFIG)
    registry.register_table(make_users(num_users=80, seed=11))
    registry.register_table(make_sessions(num_rows=240, num_users=80, seed=12))
    registry.fit_all()
    return registry


@pytest.fixture(scope="module")
def workload(fleet):
    return generate_mixed_workload(
        {name: fleet.relation(name) for name in fleet.names}, 10,
        min_filters=1, max_filters=2, seed=21)


def _frozen_router(fleet, **kwargs):
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("num_samples", _SAMPLES)
    kwargs.setdefault("seed", 2)
    return FleetRouter(fleet, clock=VirtualClock(), **kwargs)


def _baseline(fleet, queries, arrivals):
    expanded = [queries[i % len(queries)] for i in range(len(arrivals))]
    return run_fleet_sequential(fleet, expanded, num_samples=_SAMPLES, seed=2)


# --------------------------------------------------------------------------- #
# Arrival-process properties
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
@pytest.mark.parametrize("seed", [0, 1, 97])
def test_arrivals_strictly_increasing_inside_window(process, seed):
    timestamps = generate_arrivals(process, rate_qps=200.0, duration_s=2.0,
                                   seed=seed)
    assert timestamps, "a 400-arrival window must not come out empty"
    assert all(b > a for a, b in zip(timestamps, timestamps[1:]))
    assert timestamps[0] >= 0.0
    assert timestamps[-1] < 2.0


@pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
def test_arrivals_mean_rate_matches_request(process):
    """Every process offers the *requested* mean rate: at 500 qps x 40 s the
    count is 20k in expectation with a ~1% relative standard deviation, so a
    5% tolerance at a fixed seed is both tight and stable."""
    rate, duration = 500.0, 40.0
    timestamps = generate_arrivals(process, rate_qps=rate, duration_s=duration,
                                   seed=3)
    realised = len(timestamps) / duration
    assert realised == pytest.approx(rate, rel=0.05)


@pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
def test_arrivals_deterministic_in_seed(process):
    first = generate_arrivals(process, rate_qps=50.0, duration_s=1.0, seed=7)
    second = generate_arrivals(process, rate_qps=50.0, duration_s=1.0, seed=7)
    other = generate_arrivals(process, rate_qps=50.0, duration_s=1.0, seed=8)
    assert first == second
    assert first != other


def test_flash_concentrates_and_diurnal_modulates():
    """The shapes are real, not cosmetic: the flash window's local rate beats
    the base windows', and a depth-0.8 diurnal first half (the sine's
    positive lobe) outweighs its second half."""
    flash = flash_arrivals(200.0, 10.0, seed=5, flash_at=0.4, flash_width=0.2,
                           multiplier=8.0)
    in_window = sum(1 for t in flash if 4.0 <= t < 6.0) / 2.0
    outside = sum(1 for t in flash if not 4.0 <= t < 6.0) / 8.0
    assert in_window > 3.0 * outside
    diurnal = diurnal_arrivals(200.0, 10.0, seed=5, depth=0.8)
    first_half = sum(1 for t in diurnal if t < 5.0)
    assert first_half > 0.65 * len(diurnal)


def test_generate_arrivals_validation():
    with pytest.raises(ValueError, match="unknown arrival process"):
        generate_arrivals("uniform", rate_qps=1.0, duration_s=1.0)
    for bad_rate in (0.0, -5.0, math.nan, math.inf):
        with pytest.raises(ValueError, match="rate must be positive"):
            generate_arrivals("poisson", rate_qps=bad_rate, duration_s=1.0)
    for bad_duration in (0.0, -1.0, math.nan):
        with pytest.raises(ValueError, match="duration must be positive"):
            generate_arrivals("poisson", rate_qps=1.0,
                              duration_s=bad_duration)
    with pytest.raises(ValueError, match="depth"):
        diurnal_arrivals(1.0, 1.0, depth=1.0)
    with pytest.raises(ValueError, match="period_s"):
        diurnal_arrivals(1.0, 1.0, period_s=0.0)
    with pytest.raises(ValueError, match="flash_at"):
        flash_arrivals(1.0, 1.0, flash_at=1.0)
    with pytest.raises(ValueError, match="flash_width"):
        flash_arrivals(1.0, 1.0, flash_width=0.0)
    with pytest.raises(ValueError, match="multiplier"):
        flash_arrivals(1.0, 1.0, multiplier=0.5)


# --------------------------------------------------------------------------- #
# Traces: record / replay / byte stability / malformed files
# --------------------------------------------------------------------------- #
def test_trace_record_replay_exact(tmp_path):
    trace = ArrivalTrace.record("flash", rate_qps=120.0, duration_s=3.0,
                                seed=9, flash_at=0.25, flash_width=0.25,
                                multiplier=4.0)
    path = tmp_path / "trace.json"
    trace.save(str(path))
    replayed = ArrivalTrace.load(str(path))
    assert replayed.timestamps == trace.timestamps  # element-for-element
    assert replayed == trace
    assert replayed.params == {"flash_at": 0.25, "flash_width": 0.25,
                               "multiplier": 4.0}
    assert len(replayed) == len(trace.timestamps)
    assert replayed.offered_qps == pytest.approx(len(trace) / 3.0)


def test_trace_bytes_stable(tmp_path):
    """Recording twice at one seed, or loading and re-saving, writes
    identical bytes — the property that makes traces diffable artifacts."""
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    ArrivalTrace.record("poisson", rate_qps=80.0, duration_s=2.0,
                        seed=4).save(str(first))
    ArrivalTrace.record("poisson", rate_qps=80.0, duration_s=2.0,
                        seed=4).save(str(second))
    assert first.read_bytes() == second.read_bytes()
    resaved = tmp_path / "c.json"
    ArrivalTrace.load(str(first)).save(str(resaved))
    assert resaved.read_bytes() == first.read_bytes()


@pytest.mark.parametrize("payload, message", [
    ("{not json", "not valid JSON"),
    ("[1, 2, 3]", "must hold a JSON object"),
    (json.dumps({"version": 2, "process": "poisson", "rate_qps": 1.0,
                 "duration_s": 1.0, "seed": 0, "timestamps": []}),
     "unsupported version"),
    (json.dumps({"version": 1, "process": "poisson"}),
     "missing required fields"),
    (json.dumps({"version": 1, "process": "poisson", "rate_qps": 1.0,
                 "duration_s": 1.0, "seed": 0, "timestamps": [0.1, "x"]}),
     "array of numbers"),
    (json.dumps({"version": 1, "process": "poisson", "rate_qps": 1.0,
                 "duration_s": 1.0, "seed": 0, "timestamps": [0.1, True]}),
     "array of numbers"),
    (json.dumps({"version": 1, "process": "poisson", "rate_qps": 1.0,
                 "duration_s": 1.0, "seed": 0, "timestamps": [0.5, 0.2]}),
     "non-decreasing"),
    (json.dumps({"version": 1, "process": "poisson", "rate_qps": "fast",
                 "duration_s": 1.0, "seed": 0, "timestamps": []}),
     "malformed"),
])
def test_trace_load_rejects_malformed_files(tmp_path, payload, message):
    path = tmp_path / "bad.json"
    path.write_text(payload)
    with pytest.raises(ValueError, match=message) as caught:
        ArrivalTrace.load(str(path))
    assert "bad.json" in str(caught.value)  # the message names the file


def test_trace_constructor_validates_timestamps():
    with pytest.raises(ValueError, match="non-decreasing"):
        ArrivalTrace(process="poisson", rate_qps=1.0, duration_s=1.0, seed=0,
                     timestamps=(0.2, 0.1))
    with pytest.raises(ValueError, match="finite non-negative"):
        ArrivalTrace(process="poisson", rate_qps=1.0, duration_s=1.0, seed=0,
                     timestamps=(-0.1,))
    with pytest.raises(ValueError, match="finite non-negative"):
        ArrivalTrace(process="poisson", rate_qps=1.0, duration_s=1.0, seed=0,
                     timestamps=(math.nan,))


# --------------------------------------------------------------------------- #
# Client pacing
# --------------------------------------------------------------------------- #
def test_client_clock_defaults_to_router_and_accepts_injection(fleet):
    router = _frozen_router(fleet)
    other = VirtualClock(start=100.0)
    assert AsyncFleetClient(router).clock is router.clock
    assert AsyncFleetClient(router, clock=other).clock is other


def test_pace_advances_frozen_clock_exactly(fleet):
    router = _frozen_router(fleet)

    async def main():
        client = AsyncFleetClient(router)
        await client.pace(0.25)
        first = client.clock()
        await client.pace(0.1)  # already past: a no-op, time never rewinds
        return first, client.clock()

    first, second = asyncio.run(main())
    assert first == pytest.approx(0.25)
    assert second == pytest.approx(0.25)


def test_pace_sleeps_real_time_with_hybrid_clock(fleet):
    import time

    clock = VirtualClock(base=time.perf_counter)
    router = FleetRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2,
                         clock=clock)

    async def main():
        client = AsyncFleetClient(router)
        deadline = client.clock() + 0.05
        await client.pace(deadline)
        return client.clock() - deadline

    overshoot = asyncio.run(main())
    assert overshoot >= -1e-4  # woke at (or just past) the deadline


# --------------------------------------------------------------------------- #
# The open-loop driver
# --------------------------------------------------------------------------- #
def test_open_loop_replay_is_deterministic_and_driftless(fleet, workload):
    """Under a frozen clock a trace replay is a pure function of the trace:
    two runs produce identical estimates, and every completed query matches
    the unloaded sequential baseline at its global index."""
    trace = ArrivalTrace.record("poisson", rate_qps=150.0, duration_s=0.3,
                                seed=6)
    outcomes = [run_open_loop(_frozen_router(fleet), workload, trace)
                for _ in range(2)]
    first, second = (outcome.report.selectivities for outcome in outcomes)
    np.testing.assert_allclose(second, first, rtol=0.0, atol=0.0)
    assert outcomes[0].submitted == len(trace)
    assert outcomes[0].completed == len(trace)
    assert outcomes[0].shed == 0
    assert outcomes[0].offered_qps == pytest.approx(trace.offered_qps)
    baseline = _baseline(fleet, workload, trace.timestamps)
    summary = assert_degraded_not_collapsed(outcomes[0], baseline=baseline)
    assert summary["degraded_not_collapsed"]
    assert summary["max_estimate_drift"] == 0.0


def test_open_loop_reports_arrival_based_latency(fleet, workload):
    """The knee column measures from *scheduled* arrival: e2e >= the
    service-time number, and both appear in as_dict for the reports."""
    trace = ArrivalTrace.record("poisson", rate_qps=100.0, duration_s=0.3,
                                seed=6)
    outcome = run_open_loop(_frozen_router(fleet), workload, trace)
    assert outcome.e2e_p95_ms is not None
    assert outcome.e2e_p95_ms >= 0.0
    assert outcome.service_e2e_p95_ms is not None
    assert outcome.max_lateness_ms >= 0.0
    summary = outcome.as_dict()
    assert summary["completed"] == outcome.completed
    assert summary["e2e_p95_ms"] == outcome.e2e_p95_ms
    assert set(summary["arrival_e2e_ms"]) == {"p50", "p95", "p99"}


def test_open_loop_overload_sheds_typed_and_bounded(fleet, workload):
    """A burst far beyond max_pending sheds (typed, counted) instead of
    growing the queue without bound — and the queries that *did* complete
    still match the baseline."""
    router = _frozen_router(fleet, batch_size=8, max_pending=2,
                            overflow="shed")
    arrivals = [0.0] * 30  # everything at once: queues must hit their bound
    outcome = run_open_loop(router, workload, arrivals, duration_s=1.0)
    assert outcome.shed > 0
    assert outcome.submitted + outcome.shed == len(arrivals)
    assert outcome.peak_pending <= 2
    baseline = _baseline(fleet, workload, arrivals)
    summary = assert_degraded_not_collapsed(outcome, baseline=baseline,
                                            max_pending=2)
    assert summary["shed"] == outcome.shed


def test_open_loop_validation_and_empty_run(fleet, workload):
    router = _frozen_router(fleet)
    with pytest.raises(ValueError, match="non-decreasing"):
        run_open_loop(router, workload, [0.2, 0.1])
    with pytest.raises(ValueError, match="at least one query"):
        run_open_loop(router, [], [0.1])
    outcome = run_open_loop(router, workload, [])
    assert outcome.submitted == outcome.completed == outcome.shed == 0
    assert outcome.arrival_e2e_ms is None
    assert outcome.e2e_p95_ms is None


def test_open_loop_ticks_flush_deadlines_inline(fleet, workload):
    """With a flush deadline configured, a frozen-clock run must still fire
    it (the inline tick): a partial batch dispatches when virtual pacing
    carries the clock past its deadline, not at drain."""
    router = _frozen_router(fleet, batch_size=64, flush_after_ms=10.0)
    outcome = run_open_loop(router, workload, [0.0, 0.1], duration_s=0.2)
    assert outcome.completed == 2
    assert outcome.report.stats.timeout_flushes >= 1


# --------------------------------------------------------------------------- #
# Chaos scenarios
# --------------------------------------------------------------------------- #
def test_chaos_scenario_validation(fleet):
    with pytest.raises(ValueError, match="at_fraction"):
        CacheWipe(at_fraction=1.0)
    with pytest.raises(ValueError, match="delay_ms"):
        SlowReplica("users", delay_ms=0.0)
    scenario = ChaosScenario(at_fraction=0.5)
    with pytest.raises(NotImplementedError):
        scenario.fire(0, None)
    assert set(SCENARIOS) == {"slow_replica", "cache_wipe"}
    assert isinstance(SCENARIOS["slow_replica"]("users", delay_ms=5.0),
                      SlowReplica)
    assert isinstance(SCENARIOS["cache_wipe"]("users", at_fraction=0.25),
                      CacheWipe)


def test_slow_replica_fires_once_chains_hook_and_restores(fleet, workload):
    trace = ArrivalTrace.record("poisson", rate_qps=120.0, duration_s=0.3,
                                seed=6)
    router = _frozen_router(fleet)
    route = router.resolve_route(workload[0])
    # Pre-install a hook: the scenario must chain onto it, not clobber it.
    engine = router.group(route).engines[0]
    observed = []
    prior_hook = observed.append
    engine.batch_hook = prior_hook
    scenario = SlowReplica(route, replica=0, delay_ms=25.0, at_fraction=0.0)
    outcome = run_open_loop(router, workload, trace, scenario=scenario)
    assert scenario.fired
    assert len(outcome.events) == 1  # fires exactly once
    assert "slow_replica" in outcome.events[0]
    assert observed, "the prior hook must keep firing under the wrapper"
    assert engine.batch_hook is prior_hook  # restored by finish()
    baseline = _baseline(fleet, workload, trace.timestamps)
    assert_degraded_not_collapsed(outcome, baseline=baseline)


def test_slow_replica_stall_advances_frozen_clock(fleet, workload):
    """The injected delay is visible in the latency accounting: queries
    behind the stall accrue measurable e2e under a purely virtual clock."""
    trace = ArrivalTrace.record("poisson", rate_qps=200.0, duration_s=0.25,
                                seed=6)
    route_of = _frozen_router(fleet).resolve_route(workload[0])
    quiet = run_open_loop(_frozen_router(fleet), workload, trace)
    slowed = run_open_loop(
        _frozen_router(fleet), workload, trace,
        scenario=SlowReplica(route_of, delay_ms=40.0, at_fraction=0.0))
    assert slowed.e2e_p95_ms > quiet.e2e_p95_ms


def test_cache_wipe_fires_and_estimates_hold(fleet, workload):
    trace = ArrivalTrace.record("poisson", rate_qps=150.0, duration_s=0.3,
                                seed=6)
    router = _frozen_router(fleet, result_cache=True)
    scenario = CacheWipe(at_fraction=0.5)
    outcome = run_open_loop(router, workload, trace, scenario=scenario)
    assert scenario.fired
    assert any("cache_wipe" in event for event in outcome.events)
    baseline = _baseline(fleet, workload, trace.timestamps)
    assert_degraded_not_collapsed(outcome, baseline=baseline)


def test_wipe_caches_empties_every_layer(fleet, workload):
    router = FleetRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2,
                         result_cache=True)
    router.run(workload)
    assert len(router._result_cache) > 0
    wiped = router.wipe_caches()
    assert wiped["result_caches"] == 1
    assert wiped["conditional_caches"] >= 1
    assert len(router._result_cache) == 0
    plain = _frozen_router(fleet)  # no result cache layer
    assert plain.wipe_caches()["result_caches"] == 0


# --------------------------------------------------------------------------- #
# Sweeps, the knee, and the degradation contract
# --------------------------------------------------------------------------- #
def test_sweep_produces_one_row_per_rate(fleet, workload):
    rows = sweep_offered_load(lambda: _frozen_router(fleet), workload,
                              [50.0, 100.0], duration_s=0.2, seed=3)
    assert len(rows) == 2
    assert rows[0]["offered_qps"] < rows[1]["offered_qps"]
    for row in rows:
        assert row["completed"] + 0 == row["submitted"]  # frozen: no shed
        assert {"e2e_p95_ms", "service_p95_ms", "peak_pending",
                "queue_p95_ms", "max_lateness_ms"} <= set(row)
    with pytest.raises(ValueError, match="at least one offered rate"):
        sweep_offered_load(lambda: _frozen_router(fleet), workload, [],
                           duration_s=0.2)


def test_locate_knee_cases():
    def row(qps, p95):
        return {"offered_qps": qps, "e2e_p95_ms": p95}

    knee = locate_knee([row(10, 1.0), row(20, 2.0), row(40, 9.0)], 5.0)
    assert knee["knee_qps"] == 20
    assert knee["first_over_qps"] == 40
    assert knee["rows_over"] == 1
    assert not knee["meets_all"]
    all_meet = locate_knee([row(10, 1.0), row(20, 2.0)], 5.0)
    assert all_meet["meets_all"]
    assert all_meet["knee_qps"] == 20
    assert all_meet["first_over_qps"] is None
    none_meet = locate_knee([row(10, 9.0)], 5.0)
    assert none_meet["knee_qps"] is None
    assert none_meet["first_over_qps"] == 10
    empty_row = locate_knee([row(10, None)], 5.0)  # nothing completed: over
    assert empty_row["knee_qps"] is None
    with pytest.raises(ValueError, match="at least one sweep row"):
        locate_knee([], 5.0)
    with pytest.raises(ValueError, match="slo_ms"):
        locate_knee([row(10, 1.0)], 0.0)


def test_degradation_contract_failures_are_named(fleet, workload):
    trace = ArrivalTrace.record("poisson", rate_qps=100.0, duration_s=0.3,
                                seed=6)
    outcome = run_open_loop(_frozen_router(fleet), workload, trace)
    baseline = _baseline(fleet, workload, trace.timestamps)
    assert_degraded_not_collapsed(outcome, baseline=baseline)  # passes as-is
    outcome.peak_pending = 99
    with pytest.raises(AssertionError, match="queue growth unbounded"):
        assert_degraded_not_collapsed(outcome, baseline=baseline,
                                      max_pending=10)
    outcome.peak_pending = 0
    outcome.submitted += 1
    with pytest.raises(AssertionError, match="vanished"):
        assert_degraded_not_collapsed(outcome, baseline=baseline)
    outcome.submitted -= 1
    drifted = dataclasses.replace(
        outcome.report.results[0],
        selectivity=outcome.report.results[0].selectivity + 0.5)
    outcome.report.results[0] = drifted
    with pytest.raises(AssertionError, match="estimate drift"):
        assert_degraded_not_collapsed(outcome, baseline=baseline)
