"""Shared fixtures: small tables and pre-trained estimators reused across tests."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core import NaruConfig, NaruEstimator
from repro.data import ColumnSpec, Table, make_correlated_table


@pytest.fixture(scope="session")
def tiny_table() -> Table:
    """A 4-column correlated table small enough for exact checks."""
    specs = [
        ColumnSpec("city", 6, "categorical", skew=1.2),
        ColumnSpec("year", 12, "ordinal", skew=1.1),
        ColumnSpec("stars", 5, "categorical", skew=1.4),
        ColumnSpec("price", 20, "ordinal", skew=1.1),
    ]
    return make_correlated_table(specs, num_rows=800, seed=11, name="tiny")


@pytest.fixture(scope="session")
def medium_table() -> Table:
    """A 7-column table used for estimator accuracy comparisons."""
    specs = [
        ColumnSpec("a", 8, "categorical", skew=1.3),
        ColumnSpec("b", 30, "ordinal", skew=1.2),
        ColumnSpec("c", 4, "categorical", skew=1.6),
        ColumnSpec("d", 50, "ordinal", skew=1.1),
        ColumnSpec("e", 12, "categorical", skew=1.4),
        ColumnSpec("f", 90, "ordinal", skew=1.05),
        ColumnSpec("g", 2, "categorical", skew=1.8),
    ]
    return make_correlated_table(specs, num_rows=2500, seed=5, name="medium")


@pytest.fixture(scope="session")
def trained_naru(tiny_table: Table) -> NaruEstimator:
    """A Naru estimator trained once and shared by read-only tests."""
    config = NaruConfig(epochs=15, hidden_sizes=(64, 64), batch_size=256,
                        learning_rate=5e-3, progressive_samples=400, seed=0)
    estimator = NaruEstimator(tiny_table, config)
    estimator.fit()
    return estimator


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def golden_serve_fixture() -> dict:
    """The frozen golden-serving answers committed under ``tests/data/``.

    Regenerate (only after an *intentional* semantic change to serving) with
    ``PYTHONPATH=src python tests/golden_serve.py`` and commit the diff.
    """
    path = os.path.join(os.path.dirname(__file__), "data",
                        "golden_serve_estimates.json")
    if not os.path.exists(path):
        pytest.fail(
            f"golden fixture {path} is missing; regenerate it with "
            "'PYTHONPATH=src python tests/golden_serve.py' and commit it")
    with open(path) as handle:
        return json.load(handle)
