"""Tests for the benchmark harness, report formatting, scales and registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    EXPERIMENTS,
    PAPER,
    SMOKE,
    EstimatorRun,
    NaruSampleVariant,
    accuracy_by_bucket,
    active_scale,
    compare_estimators,
    format_accuracy_table,
    format_latency_table,
    format_series,
    format_summary_table,
    list_experiments,
    run_experiment,
    run_estimator,
)
from repro.bench.reports import format_error
from repro.core import NaruConfig, NaruEstimator
from repro.estimators import IndependenceEstimator, TruthEstimator
from repro.query import ErrorSummary, WorkloadGenerator


@pytest.fixture()
def workload(medium_table):
    generator = WorkloadGenerator(medium_table, min_filters=2, max_filters=4, seed=3)
    return generator.generate_labeled(12)


class TestHarness:
    def test_run_estimator_records_everything(self, medium_table, workload):
        run = run_estimator(TruthEstimator(medium_table), workload)
        assert run.name == "Truth"
        assert len(run.errors) == len(workload)
        assert len(run.latencies_ms) == len(workload)
        assert all(latency >= 0 for latency in run.latencies_ms)
        # The truth estimator is exact, so every q-error is 1.
        assert run.max_error() == pytest.approx(1.0)
        assert run.overall_summary().median == pytest.approx(1.0)

    def test_compare_estimators_keys_by_name(self, medium_table, workload):
        runs = compare_estimators(
            [TruthEstimator(medium_table), IndependenceEstimator(medium_table)], workload)
        assert set(runs) == {"Truth", "Indep"}

    def test_accuracy_by_bucket_structure(self, medium_table, workload):
        runs = compare_estimators([TruthEstimator(medium_table)], workload)
        buckets = accuracy_by_bucket(runs)
        assert set(buckets["Truth"]) == {"high", "medium", "low"}

    def test_latency_quantiles(self, medium_table, workload):
        run = run_estimator(IndependenceEstimator(medium_table), workload)
        quantiles = run.latency_quantiles()
        assert set(quantiles) == {0.5, 0.95, 0.99}
        assert quantiles[0.5] <= quantiles[0.99] + 1e-9

    def test_empty_run_summary(self):
        run = EstimatorRun(name="empty")
        assert np.isnan(run.overall_summary().median)
        assert np.isnan(run.max_error())


class TestNaruSampleVariant:
    def test_variant_uses_fixed_sample_budget(self, tiny_table, trained_naru, workload):
        variant = NaruSampleVariant(trained_naru, 128)
        assert variant.name == "Naru-128"
        generator = WorkloadGenerator(tiny_table, min_filters=2, max_filters=3, seed=5)
        query = generator.generate_query()
        estimate = variant.estimate_selectivity(query)
        assert 0.0 <= estimate <= 1.0
        assert variant.size_bytes() == trained_naru.size_bytes()


class TestReports:
    def test_format_error_ranges(self):
        assert format_error(float("nan")) == "-"
        assert format_error(1.234) == "1.23"
        assert format_error(123.4) == "123"
        assert format_error(23_456) == "2e4"

    def test_accuracy_table_contains_all_estimators(self):
        summary = ErrorSummary(count=3, median=1.2, p95=2.0, p99=3.0, maximum=4.0)
        results = {"Naru": {"high": summary, "medium": summary, "low": summary}}
        text = format_accuracy_table(results, "Title")
        assert "Naru" in text and "Title" in text and "1.20" in text

    def test_summary_table(self):
        summary = ErrorSummary(count=3, median=1.0, p95=1.5, p99=2.0, maximum=5.0)
        text = format_summary_table({"Sample": summary}, "OOD")
        assert "Sample" in text and "5.00" in text

    def test_series_formatting_handles_mixed_types(self):
        text = format_series([{"dataset": "DMV", "value": 1.5}], ["dataset", "value"], "S")
        assert "DMV" in text and "1.5" in text

    def test_latency_table(self):
        text = format_latency_table({"Naru": {0.5: 10.0, 0.95: 12.0, 0.99: 15.0}}, "Lat")
        assert "Naru" in text and "p99" in text


class TestScalesAndRegistry:
    def test_presets_are_consistent(self):
        assert SMOKE.dmv_rows < PAPER.dmv_rows
        assert SMOKE.num_queries < PAPER.num_queries
        assert len(SMOKE.naru_samples) >= 1

    def test_active_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert active_scale() is PAPER
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert active_scale() is SMOKE
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            active_scale()

    def test_registry_covers_every_table_and_figure(self):
        names = set(EXPERIMENTS)
        expected = {"figure4", "table3", "table4", "table5", "figure5", "figure6",
                    "table6", "table7", "figure7", "figure8", "table8"}
        assert expected <= names

    def test_list_experiments_matches_registry(self):
        assert {name for name, _ in list_experiments()} == set(EXPERIMENTS)

    def test_run_experiment_unknown_name(self):
        with pytest.raises(KeyError):
            run_experiment("table99")


class TestEndToEndMiniExperiment:
    def test_mini_comparison_produces_paper_shape(self, medium_table):
        """A miniature Table-3-style run: Naru beats Indep at the tail."""
        naru = NaruEstimator(medium_table, NaruConfig(
            epochs=8, hidden_sizes=(48, 48), batch_size=128, progressive_samples=300,
            seed=1))
        naru.fit()
        workload = WorkloadGenerator(medium_table, min_filters=3, max_filters=5,
                                     seed=21).generate_labeled(20)
        runs = compare_estimators([naru, IndependenceEstimator(medium_table)], workload)
        naru_run = runs[naru.name]
        indep_run = runs["Indep"]
        assert naru_run.max_error() <= indep_run.max_error() * 1.5
