"""Tests for the relational substrate: columns, tables, dictionary encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Column, Table


class TestColumn:
    def test_dictionary_encoding_is_sorted_and_consistent(self):
        column = Column("city", np.array(["SF", "Portland", "SF", "Austin"]))
        assert list(column.domain) == ["Austin", "Portland", "SF"]
        assert column.domain_size == 3
        np.testing.assert_array_equal(column.codes, [2, 1, 2, 0])

    def test_value_code_roundtrip(self):
        column = Column("n", np.array([5, 3, 9, 3]))
        for value in (3, 5, 9):
            assert column.code_to_value(column.value_to_code(value)) == value

    def test_value_to_code_missing_raises(self):
        column = Column("n", np.array([1, 2, 3]))
        with pytest.raises(KeyError):
            column.value_to_code(42)

    def test_range_code_bounds(self):
        column = Column("n", np.array([10, 20, 30, 40]))
        assert column.codes_leq(25) == 2    # codes {0,1} are <= 25
        assert column.codes_leq(30) == 3
        assert column.codes_lt(30) == 2
        assert column.codes_lt(5) == 0
        assert column.codes_leq(100) == 4

    def test_marginal_sums_to_one(self):
        column = Column("n", np.array([1, 1, 1, 2]))
        marginal = column.marginal()
        assert marginal.sum() == pytest.approx(1.0)
        assert marginal[0] == pytest.approx(0.75)

    def test_empty_column_rejected(self):
        with pytest.raises(ValueError):
            Column("empty", np.array([]))

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            Column("bad", np.ones((2, 2)))

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_codes_preserve_order(self, values):
        column = Column("v", np.array(values))
        # Codes must be order-isomorphic to the raw values.
        raw = np.array(values)
        assert np.all((raw[:, None] < raw[None, :])
                      == (column.codes[:, None] < column.codes[None, :]))

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_value_counts_total(self, values):
        column = Column("v", np.array(values))
        assert column.value_counts().sum() == len(values)


class TestTable:
    def test_from_dict_and_basic_properties(self):
        table = Table.from_dict({"a": [1, 2, 2], "b": ["x", "y", "x"]}, name="t")
        assert table.num_rows == 3
        assert table.num_columns == 2
        assert table.column_names == ["a", "b"]
        assert table.domain_sizes == [2, 2]

    def test_from_records(self):
        table = Table.from_records([(1, "x"), (2, "y")], ["a", "b"])
        assert table.num_rows == 2
        assert table.column("b").domain_size == 2

    def test_mismatched_row_counts_rejected(self):
        with pytest.raises(ValueError):
            Table([Column("a", np.array([1, 2])), Column("b", np.array([1]))])

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(ValueError):
            Table([Column("a", np.array([1])), Column("a", np.array([2]))])

    def test_encoded_matrix_shape_and_dtype(self, tiny_table):
        encoded = tiny_table.encoded()
        assert encoded.shape == (tiny_table.num_rows, tiny_table.num_columns)
        assert encoded.dtype == np.int64
        for index, column in enumerate(tiny_table.columns):
            assert encoded[:, index].max() < column.domain_size

    def test_column_lookup_and_index(self, tiny_table):
        assert tiny_table.column("city").name == "city"
        assert tiny_table.column_index("year") == 1
        with pytest.raises(KeyError):
            tiny_table.column("nope")
        with pytest.raises(KeyError):
            tiny_table.column_index("nope")

    def test_log_joint_size(self):
        table = Table.from_dict({"a": [1, 2], "b": [1, 2], "c": [1, 2]})
        assert table.log_joint_size() == pytest.approx(np.log10(8))

    def test_project_and_take_rows(self, tiny_table):
        projected = tiny_table.project(["stars", "city"])
        assert projected.column_names == ["stars", "city"]
        subset = tiny_table.take_rows(np.arange(10))
        assert subset.num_rows == 10

    def test_concat_same_schema(self, tiny_table):
        doubled = tiny_table.concat(tiny_table)
        assert doubled.num_rows == 2 * tiny_table.num_rows

    def test_concat_schema_mismatch_rejected(self, tiny_table):
        with pytest.raises(ValueError):
            tiny_table.concat(tiny_table.project(["city"]))

    def test_sample_rows(self, tiny_table, rng):
        sample = tiny_table.sample_rows(50, rng)
        assert sample.shape == (50, tiny_table.num_columns)

    def test_raw_row(self, tiny_table):
        row = tiny_table.raw_row(0)
        assert len(row) == tiny_table.num_columns

    def test_in_memory_bytes_positive(self, tiny_table):
        assert tiny_table.in_memory_bytes() > 0
