"""Property-style invariance suite for the replicated serving stack.

The serving layer's one load-bearing contract: **how** a workload is served —
micro-batch size, replica count, result cache on or off, routing order — must
never change **what** it answers.  Every query's random stream is keyed by
``(seed, global workload index)`` alone, so the unbatched sequential baseline
(:func:`repro.serve.run_fleet_sequential`) is the ground truth and every
configuration in the grid below must reproduce it.

The tolerance is one-ulp loose (``atol=1e-12`` on selectivities in ``[0, 1]``)
because different micro-batch shapes push different row counts through the
BLAS, which may round the last bit differently; any real behavioural drift —
a re-keyed stream, a misrouted query, a cache serving the wrong entry — shows
up orders of magnitude above it.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.core import NaruConfig
from repro.data import JoinSpec, make_sessions, make_users
from repro.query import Query, WorkloadGenerator
from repro.serve import (
    FleetRouter,
    ModelRegistry,
    ProcessFleet,
    StreamingRouter,
    VirtualClock,
    generate_mixed_workload,
    load_workload,
    run_fleet_sequential,
    save_workload,
    stream_workload,
)

_CONFIG = NaruConfig(epochs=2, hidden_sizes=(16, 16), batch_size=128,
                     progressive_samples=60, seed=0)
_SAMPLES = 60
_SEED = 2
_DEFAULT_ROUTE = "sessions"

#: The grid of serving configurations that must all agree with the baseline.
_BATCH_SIZES = (1, 3, 16)
_REPLICAS = (1, 2, 4)
_RESULT_CACHE = (False, True)


@pytest.fixture(scope="module")
def fleet():
    """A fitted registry: two base tables plus their join relation."""
    registry = ModelRegistry(default_config=_CONFIG)
    registry.register_table(make_users(num_users=100, seed=4))
    registry.register_table(make_sessions(num_rows=400, num_users=100, seed=5))
    registry.register_join(JoinSpec("sessions", "users", "user_id", "user_id"))
    registry.fit_all()
    return registry


@pytest.fixture(scope="module")
def workload(fleet):
    """A mixed workload: qualified queries over all three relations plus
    unqualified (v1-style) queries that fall back to the default route."""
    qualified = generate_mixed_workload(
        {name: fleet.relation(name) for name in fleet.names}, 12,
        min_filters=1, max_filters=3, seed=7)
    unqualified = [
        Query(query.predicates)  # strip the qualifier: v1-file behaviour
        for query in WorkloadGenerator(fleet.relation(_DEFAULT_ROUTE),
                                       min_filters=1, max_filters=3,
                                       seed=31).generate(3)
    ]
    # Interleave so unqualified queries land inside micro-batch windows, not
    # only at the tail.
    mixed = list(qualified)
    for offset, query in enumerate(unqualified):
        mixed.insert(4 * offset + 2, query)
    return mixed


@pytest.fixture(scope="module")
def baseline(fleet, workload):
    """Ground truth: one unbatched, uncached sampler pass per query."""
    return run_fleet_sequential(fleet, workload, num_samples=_SAMPLES,
                                seed=_SEED, default_route=_DEFAULT_ROUTE)


def _router(fleet, *, batch_size, replicas, result_cache):
    for name in fleet.names:
        fleet.set_replicas(name, replicas)
    try:
        return FleetRouter(fleet, batch_size=batch_size, num_samples=_SAMPLES,
                           seed=_SEED, default_route=_DEFAULT_ROUTE,
                           result_cache=result_cache)
    finally:
        for name in fleet.names:
            fleet.set_replicas(name, 1)


@pytest.mark.parametrize("batch_size", _BATCH_SIZES)
@pytest.mark.parametrize("replicas", _REPLICAS)
@pytest.mark.parametrize("result_cache", _RESULT_CACHE,
                         ids=["nocache", "rescache"])
def test_grid_matches_sequential_baseline(fleet, workload, baseline,
                                          batch_size, replicas, result_cache):
    """Every (batch_size, replicas, result_cache) cell reproduces the baseline."""
    router = _router(fleet, batch_size=batch_size, replicas=replicas,
                     result_cache=result_cache)
    report = router.run(workload)
    assert [result.index for result in report.results] == \
        list(range(len(workload)))
    assert [result.route for result in report.results] == \
        [result.route for result in baseline.results]
    np.testing.assert_allclose(report.selectivities, baseline.selectivities,
                               rtol=0.0, atol=1e-12)


@pytest.mark.parametrize("batch_size", _BATCH_SIZES)
@pytest.mark.parametrize("replicas", _REPLICAS)
def test_dedup_grid_is_bit_identical(fleet, workload, batch_size, replicas):
    """Prefix deduplication changes performance counters, never an estimate.

    Stronger than the baseline comparisons above: dedup on vs off at the
    *same* batch shape is exactly equal (no ``atol``) — the sampler kernel is
    row-exact and dedup only regroups rows, so the two runs must return the
    very same bits.
    """
    fused = _router(fleet, batch_size=batch_size, replicas=replicas,
                    result_cache=False).run(workload)
    for name in fleet.names:
        fleet.set_replicas(name, replicas)
    try:
        unfused_router = FleetRouter(
            fleet, batch_size=batch_size, num_samples=_SAMPLES, seed=_SEED,
            default_route=_DEFAULT_ROUTE, dedup=False)
    finally:
        for name in fleet.names:
            fleet.set_replicas(name, 1)
    unfused = unfused_router.run(workload)
    assert np.array_equal(fused.selectivities, unfused.selectivities)
    # The fused run really did deduplicate; the unfused one really did not.
    assert fused.stats.unique_rows < fused.stats.rows_submitted
    assert unfused.stats.unique_rows == unfused.stats.rows_submitted


@pytest.mark.parametrize("batch_size", _BATCH_SIZES)
@pytest.mark.parametrize("replicas", (1, 2))
@pytest.mark.parametrize("arrival", ["inorder", "shuffled"])
def test_streaming_grid_matches_sequential_baseline(fleet, workload, baseline,
                                                    batch_size, replicas,
                                                    arrival):
    """Streaming ≡ batch ≡ sequential: submitting the workload one query at a
    time through the asyncio client — in order or in a shuffled arrival order
    with pre-assigned indices — reproduces the unbatched baseline for every
    (batch_size, replicas) cell."""
    for name in fleet.names:
        fleet.set_replicas(name, replicas)
    try:
        router = StreamingRouter(fleet, batch_size=batch_size,
                                 num_samples=_SAMPLES, seed=_SEED,
                                 default_route=_DEFAULT_ROUTE)
    finally:
        for name in fleet.names:
            fleet.set_replicas(name, 1)
    order = list(range(len(workload)))
    if arrival == "shuffled":
        random.Random(13).shuffle(order)
    report = stream_workload(router, workload, arrival_order=order)
    assert [result.index for result in report.results] == \
        list(range(len(workload)))
    assert [result.route for result in report.results] == \
        [result.route for result in baseline.results]
    np.testing.assert_allclose(report.selectivities, baseline.selectivities,
                               rtol=0.0, atol=1e-12)


def test_adaptive_batching_matches_sequential_baseline(fleet, workload,
                                                       baseline):
    """An SLO so tight the controller shrinks to batch_size=1 mid-workload
    still changes no estimate: adaptive batch boundaries are invisible."""
    router = StreamingRouter(fleet, batch_size=8, num_samples=_SAMPLES,
                             seed=_SEED, default_route=_DEFAULT_ROUTE,
                             slo_ms=1e-6, adaptive=True)
    report = stream_workload(router, workload)
    np.testing.assert_allclose(report.selectivities, baseline.selectivities,
                               rtol=0.0, atol=1e-12)
    # The impossible SLO really did move the batch size mid-workload.
    assert any(min(stats["batch_trace"]) < 8
               for stats in report.stats.routes.values())


@pytest.mark.parametrize("batch_size", (1, 64))
def test_flush_timeout_changes_batches_not_estimates(fleet, workload,
                                                     baseline, batch_size):
    """Timeout-triggered flushes move *when* micro-batches dispatch, never
    *what* they estimate.  Under a virtual clock advanced 2 ms per arrival
    with a 5 ms flush deadline, batch boundaries are fully deterministic:
    at batch_size=64 partial batches repeatedly hit the deadline (so the
    batch pattern differs from the single-final-flush run), at batch_size=1
    every submission dispatches immediately and the deadline never fires —
    and both reproduce the sequential baseline exactly."""
    def timed_run():
        router = StreamingRouter(fleet, batch_size=batch_size,
                                 num_samples=_SAMPLES, seed=_SEED,
                                 default_route=_DEFAULT_ROUTE,
                                 flush_after_ms=5.0, clock=VirtualClock())
        report = stream_workload(router, workload, advance_ms=2.0)
        batches = {route: stats["num_batches"]
                   for route, stats in report.stats.routes.items()}
        return report, batches

    report, batches = timed_run()
    np.testing.assert_allclose(report.selectivities, baseline.selectivities,
                               rtol=0.0, atol=1e-12)
    if batch_size == 1:
        # Dispatch-on-submit never leaves a batch pending long enough.
        assert report.stats.timeout_flushes == 0
    else:
        # The deadline really rebatched the workload: partial batches were
        # force-dispatched instead of riding to the final drain flush.
        assert report.stats.timeout_flushes > 0
        untimed_router = StreamingRouter(fleet, batch_size=batch_size,
                                         num_samples=_SAMPLES, seed=_SEED,
                                         default_route=_DEFAULT_ROUTE)
        untimed = stream_workload(untimed_router, workload)
        assert sum(batches.values()) > sum(
            stats["num_batches"] for stats in untimed.stats.routes.values())
        # Every query's wait is bounded by the deadline plus one 2 ms
        # arrival tick (deadlines are checked per arrival).
        assert all(result.queue_wait_ms <= 5.0 + 2.0 + 1e-9
                   for result in report.results)
    # The virtual clock makes the flush pattern byte-stable, run after run.
    _, batches_again = timed_run()
    assert batches_again == batches


@pytest.mark.parametrize("replicas", _REPLICAS[1:])
def test_replicas_match_single_replica_run(fleet, workload, replicas):
    """replicas=1 and replicas=N agree on the same router configuration."""
    single = _router(fleet, batch_size=4, replicas=1,
                     result_cache=False).run(workload)
    replicated = _router(fleet, batch_size=4, replicas=replicas,
                         result_cache=False).run(workload)
    np.testing.assert_allclose(replicated.selectivities, single.selectivities,
                               rtol=0.0, atol=1e-12)
    # The replicated run really did spread the queries: with 15 queries per
    # route grid cell, at least one route uses more than one replica.
    used = {(result.route, result.replica) for result in replicated.results}
    assert len(used) > len({route for route, _ in used})


def test_replica_assignment_is_deterministic(fleet, workload):
    """The (relation, index) hash pins each query to the same replica, always."""
    first = _router(fleet, batch_size=4, replicas=3,
                    result_cache=False).run(workload)
    second = _router(fleet, batch_size=4, replicas=3,
                     result_cache=False).run(workload)
    assert [result.replica for result in first.results] == \
        [result.replica for result in second.results]


def test_warm_result_cache_replays_exactly(fleet, workload):
    """A replayed workload is answered from the result cache, bit-for-bit."""
    router = _router(fleet, batch_size=4, replicas=2, result_cache=True)
    cold = router.run(workload)
    warm = router.run(workload)
    assert warm.result_cache_hits == len(workload)
    assert all(result.from_result_cache for result in warm.results)
    np.testing.assert_array_equal(warm.selectivities, cold.selectivities)
    # Cardinalities are rebuilt from the routed relation's live row count.
    for result in warm.results:
        assert result.cardinality == pytest.approx(
            result.selectivity * fleet.relation(result.route).num_rows)


def test_run_refuses_unreported_streaming_cache_hits(fleet, workload):
    """Cache-served streaming results cannot be wiped silently by run()."""
    router = _router(fleet, batch_size=4, replicas=1, result_cache=True)
    router.run(workload)                   # warm the result cache
    router.submit(workload[0])             # streaming hit: answered, unreported
    with pytest.raises(RuntimeError, match="unreported"):
        router.run(workload[:2])
    report = router.report()               # collect the streaming scope...
    assert report.results[-1].from_result_cache
    assert router.run(workload[:2]).stats.num_queries == 2  # ...then run works


def test_cache_hit_cardinality_tracks_refreshed_row_counts(fleet, workload):
    """Cached selectivities stay valid under set_row_count: the cardinality
    of a cache-served answer scales by the estimator's live row count, the
    same number the model-served path uses."""
    router = _router(fleet, batch_size=4, replicas=1, result_cache=True)
    cold = router.run(workload)
    route = cold.results[0].route
    estimator = fleet.estimator(route)
    original_rows = estimator.num_rows
    estimator.set_row_count(original_rows * 2)
    try:
        warm = router.run(workload)
        assert warm.results[0].from_result_cache
        assert warm.results[0].cardinality == pytest.approx(
            warm.results[0].selectivity * original_rows * 2)
    finally:
        estimator.set_row_count(original_rows)


def test_duplicate_query_is_served_first_occurrence(fleet, workload):
    """Exact repeats share the earliest dispatched occurrence's answer —
    inside one workload scope (results enter the cache as their micro-batch
    dispatches) as well as on a replay of it."""
    repeated = workload[:4] + [workload[1].qualified(workload[1].table
                                                     or _DEFAULT_ROUTE)]
    router = _router(fleet, batch_size=1, replicas=2, result_cache=True)
    first = router.run(repeated)
    # batch_size=1 dispatches each query on submission, so the intra-run
    # repeat already hits the cache in the cold pass.
    assert first.results[-1].from_result_cache
    assert first.results[-1].selectivity == first.results[1].selectivity
    second = router.run(repeated)          # replay: everything hits
    assert second.results[-1].from_result_cache
    assert second.results[-1].selectivity == first.results[1].selectivity


def test_weighted_workloads_build_hot_relations(fleet):
    """`weights` skews the mixed-workload split without dropping queries."""
    relations = {name: fleet.relation(name) for name in fleet.names}
    hot = generate_mixed_workload(relations, 20, min_filters=1, max_filters=3,
                                  seed=7, weights={"sessions": 3.0,
                                                   "users": 1.0})
    counts = {name: sum(query.table == name for query in hot)
              for name in fleet.names}
    assert sum(counts.values()) == 20
    assert counts["sessions"] == 15
    assert counts["users"] == 5
    assert counts["sessions_join_users"] == 0  # unnamed relations get zero
    # Weighting one relation never changes another relation's queries: the
    # users queries of the hot split are a prefix-set of the even split's.
    even = generate_mixed_workload(relations, 20, min_filters=1,
                                   max_filters=3, seed=7)
    hot_users = [str(query) for query in hot if query.table == "users"]
    even_users = [str(query) for query in even if query.table == "users"]
    assert hot_users == even_users[:len(hot_users)]
    # The hot majority is diluted through the workload, not appended as one
    # tail burst: with a 15/5 split, no more than 3 sessions queries run
    # back-to-back (one users query every ~3 sessions queries).
    longest = run = 0
    for query in hot:
        run = run + 1 if query.table == "sessions" else 0
        longest = max(longest, run)
    assert longest <= 3
    with pytest.raises(ValueError, match="negative"):
        generate_mixed_workload(relations, 8, weights={"users": -1.0})
    with pytest.raises(ValueError, match="unknown relations"):
        generate_mixed_workload(relations, 8, weights={"nope": 1.0})
    with pytest.raises(ValueError, match="positive"):
        generate_mixed_workload(relations, 8, weights={"users": 0.0})


def test_workload_file_roundtrip_preserves_estimates(fleet, workload, baseline,
                                                     tmp_path):
    """A v2 workload file replayed through the router reproduces the baseline."""
    path = str(tmp_path / "mixed.json")
    save_workload(path, workload, table_name=_DEFAULT_ROUTE)
    loaded = load_workload(path)
    report = _router(fleet, batch_size=4, replicas=2,
                     result_cache=False).run(loaded)
    np.testing.assert_allclose(report.selectivities, baseline.selectivities,
                               rtol=0.0, atol=1e-12)


# --------------------------------------------------------------------------- #
# Cross-process fleet: the process boundary is invisible in the numbers
# --------------------------------------------------------------------------- #
def _procfleet(fleet, *, workers, batch_size, replicas=1, use_cache=True):
    """A ProcessFleet over the module fixture, logging where CI can scoop
    the files up as artifacts (``REPRO_PROCFLEET_LOG_DIR``, unset locally)."""
    return ProcessFleet(fleet, workers=workers, batch_size=batch_size,
                        replicas=replicas, num_samples=_SAMPLES, seed=_SEED,
                        use_cache=use_cache, default_route=_DEFAULT_ROUTE,
                        log_dir=os.environ.get("REPRO_PROCFLEET_LOG_DIR"))


@pytest.mark.parametrize("batch_size", (1, 64))
@pytest.mark.parametrize("workers", (1, 2, 4))
def test_procfleet_grid_matches_sequential_baseline(fleet, workload, baseline,
                                                    workers, batch_size):
    """Every (workers, batch_size) cell reproduces the unbatched baseline:
    sharding engines across OS processes must never change an estimate."""
    with _procfleet(fleet, workers=workers, batch_size=batch_size) as proc:
        report = proc.run(workload)
    assert [result.index for result in report.results] == \
        list(range(len(workload)))
    assert [result.route for result in report.results] == \
        [result.route for result in baseline.results]
    np.testing.assert_allclose(report.selectivities, baseline.selectivities,
                               rtol=0.0, atol=1e-12)


def test_procfleet_worker_count_is_invisible(fleet, workload):
    """workers=1 and workers=N agree bit for bit: engine state is keyed by
    (relation, replica), so which process hosts an engine cannot matter."""
    with _procfleet(fleet, workers=1, batch_size=7, replicas=2) as single:
        one = single.run(workload)
    with _procfleet(fleet, workers=4, batch_size=7, replicas=2) as sharded:
        many = sharded.run(workload)
    np.testing.assert_array_equal(many.selectivities, one.selectivities)
    assert [result.replica for result in many.results] == \
        [result.replica for result in one.results]
    # The sharded run really did use several processes.
    used_pids = {stats["pid"] for stats in many.stats.workers.values()
                 if stats["num_queries"]}
    assert len(used_pids) > 1


@pytest.mark.parametrize("replicas,use_cache",
                         [(1, True), (3, False)],
                         ids=["singleton-cached", "replicated-nocache"])
def test_procfleet_matches_in_process_router(fleet, workload, replicas,
                                             use_cache):
    """The process fleet matches the in-process FleetRouter bit for bit when
    the per-(route, replica) micro-batch composition and cache structure
    match: one replica per route (each side has exactly one cache per
    model), or any replica count with conditional caches off (the router
    shares one cache across a replica group; the fleet's are per-engine)."""
    for name in fleet.names:
        fleet.set_replicas(name, replicas)
    try:
        router = FleetRouter(fleet, batch_size=5, num_samples=_SAMPLES,
                             seed=_SEED, default_route=_DEFAULT_ROUTE,
                             use_cache=use_cache)
        in_process = router.run(workload)
    finally:
        for name in fleet.names:
            fleet.set_replicas(name, 1)
    with _procfleet(fleet, workers=3, batch_size=5, replicas=replicas,
                    use_cache=use_cache) as proc:
        cross_process = proc.run(workload)
    np.testing.assert_array_equal(cross_process.selectivities,
                                  in_process.selectivities)
    assert [result.replica for result in cross_process.results] == \
        [result.replica for result in in_process.results]
