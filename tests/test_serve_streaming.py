"""Unit tests for the streaming layer: controller, async client, SLO wiring.

The invariance suite (``test_serve_invariance.py``) owns the streaming ≡
batch grid; this module pins down the component behaviours — the adaptive
controller's AIMD policy and clamps, the async client's future lifecycle,
per-relation SLO plumbing through the registry, and the latency-percentile
helper the reports are built from.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import NaruConfig
from repro.data import make_sessions, make_users
from repro.query import WorkloadGenerator
from repro.serve import (
    AdaptiveBatchController,
    AdmissionError,
    AsyncFleetClient,
    FleetRouter,
    ModelRegistry,
    RoutingError,
    StreamingRouter,
    generate_bursty_workload,
    generate_mixed_workload,
    latency_percentiles,
    stream_workload,
)

_CONFIG = NaruConfig(epochs=2, hidden_sizes=(16, 16), batch_size=128,
                     progressive_samples=50, seed=0)
_SAMPLES = 50


@pytest.fixture(scope="module")
def fleet():
    """A small fitted two-relation registry shared by the streaming tests."""
    registry = ModelRegistry(default_config=_CONFIG)
    registry.register_table(make_users(num_users=80, seed=4))
    registry.register_table(make_sessions(num_rows=300, num_users=80, seed=5))
    registry.fit_all()
    return registry


@pytest.fixture(scope="module")
def workload(fleet):
    return generate_mixed_workload(
        {name: fleet.relation(name) for name in fleet.names}, 14,
        min_filters=1, max_filters=3, seed=7)


# --------------------------------------------------------------------------- #
# AdaptiveBatchController
# --------------------------------------------------------------------------- #
def test_controller_shrinks_monotonically_under_violation():
    controller = AdaptiveBatchController(slo_ms=10.0, max_batch=32)
    sizes = [controller.observe(100.0) for _ in range(10)]
    assert sizes[0] < 32  # the very first violation already shrinks
    assert all(b <= a for a, b in zip(sizes, sizes[1:]))  # never grows
    assert sizes[-1] == 1  # ...all the way down to min_batch
    assert controller.shrinks >= 5
    assert controller.trace[0] == 32


def test_controller_clamps_at_both_bounds():
    controller = AdaptiveBatchController(slo_ms=10.0, max_batch=8, min_batch=2)
    for _ in range(20):
        assert controller.observe(1000.0) >= 2
    assert controller.batch_size == 2
    for _ in range(50):
        assert controller.observe(0.01) <= 8
    assert controller.batch_size == 8  # grown back, additively, to the cap


def test_controller_disabled_is_fixed():
    controller = AdaptiveBatchController(slo_ms=None, max_batch=16)
    for latency in (0.01, 1000.0, 5.0, 99999.0):
        assert controller.observe(latency) == 16
    assert not controller.enabled
    assert controller.target_ms is None
    assert list(controller.trace) == [16] * 5
    assert controller.shrinks == controller.grows == 0
    assert controller.ewma_ms is not None  # it still tracks, for reporting


def test_controller_does_not_grow_above_target_band():
    controller = AdaptiveBatchController(slo_ms=10.0, max_batch=32,
                                         headroom=0.8, grow_below=0.5)
    controller.observe(100.0)  # shrink once
    size = controller.batch_size
    # EWMA inside [grow_below * target, target]: hold, neither grow nor shrink.
    controller.ewma_ms = 6.0
    assert controller.observe(6.0) == size


def test_controller_validates_arguments():
    with pytest.raises(ValueError, match="slo_ms"):
        AdaptiveBatchController(slo_ms=0.0)
    with pytest.raises(ValueError, match="min_batch"):
        AdaptiveBatchController(min_batch=0)
    with pytest.raises(ValueError, match="max_batch"):
        AdaptiveBatchController(max_batch=2, min_batch=4)
    with pytest.raises(ValueError, match="alpha"):
        AdaptiveBatchController(alpha=0.0)
    with pytest.raises(ValueError, match="headroom"):
        AdaptiveBatchController(headroom=1.5)
    with pytest.raises(ValueError, match="grow_below"):
        AdaptiveBatchController(grow_below=1.0)
    with pytest.raises(ValueError, match="initial"):
        AdaptiveBatchController(max_batch=8, initial=9)
    with pytest.raises(ValueError, match="trace_limit"):
        AdaptiveBatchController(trace_limit=0)


def test_controller_trace_is_bounded():
    controller = AdaptiveBatchController(slo_ms=10.0, max_batch=4,
                                         trace_limit=8)
    for _ in range(50):
        controller.observe(100.0)
    assert len(controller.trace) == 8      # ring buffer, not unbounded
    assert controller.shrinks >= 2         # cumulative counters survive


def test_ewma_tracks_latency():
    controller = AdaptiveBatchController(slo_ms=100.0, alpha=0.5, max_batch=4)
    controller.observe(10.0)
    assert controller.ewma_ms == pytest.approx(10.0)
    controller.observe(20.0)
    assert controller.ewma_ms == pytest.approx(15.0)


# --------------------------------------------------------------------------- #
# StreamingRouter wiring
# --------------------------------------------------------------------------- #
def test_streaming_router_adapts_batch_size(fleet, workload):
    router = StreamingRouter(fleet, batch_size=8, num_samples=_SAMPLES,
                             seed=2, slo_ms=0.01, adaptive=True)
    report = router.run(workload)
    for route in report.stats.routes:
        trace = report.stats.routes[route]["batch_trace"]
        assert trace[0] == 8
        assert min(trace) < 8  # the impossible SLO forced a shrink
        assert router.controller(route).shrinks > 0
    snapshots = router.controllers_report()
    assert set(snapshots) == set(report.stats.routes)
    assert all(entry["slo_ms"] == 0.01 for entry in snapshots.values())


def test_streaming_router_adaptive_false_is_fixed(fleet, workload):
    fixed = FleetRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)
    frozen = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                             seed=2, slo_ms=0.01, adaptive=False)
    left = fixed.run(workload)
    right = frozen.run(workload)
    np.testing.assert_allclose(right.selectivities, left.selectivities,
                               rtol=0.0, atol=1e-12)
    for route in left.stats.routes:
        assert left.stats.routes[route]["num_batches"] == \
            right.stats.routes[route]["num_batches"]
        trace = right.stats.routes[route]["batch_trace"]
        assert set(trace) == {4}  # disabled controller never moves


def test_registry_slo_overrides_router_slo(fleet):
    fleet.set_slo("sessions", 123.0)
    try:
        router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                                 seed=2, slo_ms=50.0, adaptive=True)
        assert router.effective_slo("sessions") == 123.0
        assert router.effective_slo("users") == 50.0
        assert router.controller("sessions").slo_ms == 123.0
        assert router.controller("users").slo_ms == 50.0
    finally:
        fleet.set_slo("sessions", None)
    assert fleet.slo_ms("sessions") is None


def test_registry_slo_validation(fleet):
    with pytest.raises(ValueError, match="slo_ms"):
        fleet.set_slo("users", 0.0)
    with pytest.raises(KeyError):
        fleet.set_slo("nope", 10.0)
    registry = ModelRegistry(default_config=_CONFIG)
    with pytest.raises(ValueError, match="slo_ms"):
        registry.register_table(make_users(num_users=16, seed=0), slo_ms=-1.0)
    name = registry.register_table(make_users(num_users=16, seed=1), slo_ms=5.0)
    assert registry.slo_ms(name) == 5.0
    assert registry.size_report()[name]["slo_ms"] == 5.0


def test_streaming_router_validates_arguments(fleet):
    with pytest.raises(ValueError, match="slo_ms"):
        StreamingRouter(fleet, slo_ms=-1.0)
    with pytest.raises(ValueError, match="min_batch"):
        StreamingRouter(fleet, batch_size=4, min_batch=5)
    # Controller tuning knobs fail fast at construction, not on the first
    # routed query mid-serve.
    with pytest.raises(ValueError, match="alpha"):
        StreamingRouter(fleet, slo_ms=5.0, ewma_alpha=1.5)
    with pytest.raises(ValueError, match="headroom"):
        StreamingRouter(fleet, slo_ms=5.0, headroom=0.0)
    with pytest.raises(ValueError, match="grow_below"):
        StreamingRouter(fleet, slo_ms=5.0, grow_below=1.0)


def test_batch_trace_is_per_scope(fleet, workload):
    """Each report's batch_trace covers its own scope: element 0 is the size
    in force entering the scope, then one entry per dispatch — warmup history
    does not leak into the steady scope's report."""
    router = StreamingRouter(fleet, batch_size=8, num_samples=_SAMPLES,
                             seed=2, slo_ms=0.01, adaptive=True)
    warmup = router.run(workload)
    steady = router.run(workload)
    for route in steady.stats.routes:
        warm_stats = warmup.stats.routes[route]
        steady_stats = steady.stats.routes[route]
        assert warm_stats["batch_trace"][0] == 8  # fresh router: the maximum
        assert len(warm_stats["batch_trace"]) == warm_stats["num_batches"] + 1
        # The steady scope opens at the converged size, not the maximum, and
        # its trace counts only its own dispatches.
        assert steady_stats["batch_trace"][0] == warm_stats["batch_trace"][-1]
        assert len(steady_stats["batch_trace"]) == \
            steady_stats["num_batches"] + 1


# --------------------------------------------------------------------------- #
# AsyncFleetClient
# --------------------------------------------------------------------------- #
def test_async_client_resolves_futures_with_routed_results(fleet, workload):
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)
    batch = FleetRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                        seed=2).run(workload)

    async def main():
        client = AsyncFleetClient(router)
        futures = [client.submit(query) for query in workload]
        report = await client.drain()
        return [future.result() for future in futures], report

    results, report = asyncio.run(main())
    assert [result.index for result in results] == list(range(len(workload)))
    np.testing.assert_allclose([result.selectivity for result in results],
                               batch.selectivities, rtol=0.0, atol=1e-12)
    np.testing.assert_allclose(report.selectivities, batch.selectivities,
                               rtol=0.0, atol=1e-12)


def test_async_client_duplicate_index_rejected(fleet, workload):
    router = StreamingRouter(fleet, batch_size=64, num_samples=_SAMPLES, seed=2)

    async def main():
        client = AsyncFleetClient(router)
        client.submit(workload[0], index=5)
        with pytest.raises(ValueError, match="already used"):
            client.submit(workload[1], index=5)
        assert client.outstanding == 1
        await client.drain()

    asyncio.run(main())


def test_async_client_rejects_index_reuse_after_dispatch(fleet, workload):
    """A dispatched index is as used as a pending one: reusing it would make
    two queries share one random stream and corrupt report ordering."""
    router = StreamingRouter(fleet, batch_size=1, num_samples=_SAMPLES, seed=2)

    async def main():
        client = AsyncFleetClient(router)
        future = client.submit(workload[0], index=3)
        assert future.done()  # batch_size=1 dispatches on submission
        with pytest.raises(ValueError, match="already used"):
            client.submit(workload[1], index=3)
        await client.drain()

    asyncio.run(main())


def test_async_client_routing_error_leaves_no_future(fleet, workload):
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)

    async def main():
        client = AsyncFleetClient(router)
        with pytest.raises(RoutingError):
            client.submit(workload[0].qualified("not_registered"))
        assert client.outstanding == 0
        assert router.next_index == 0  # nothing was consumed
        return await client.drain()

    report = asyncio.run(main())
    assert report.stats.num_queries == 0


def test_async_client_result_cache_hit_resolves_immediately(fleet, workload):
    router = StreamingRouter(fleet, batch_size=64, num_samples=_SAMPLES,
                             seed=2, result_cache=True)
    router.run(workload)  # warm the result cache
    start_index = router.next_index  # the scope continues after run()

    async def main():
        client = AsyncFleetClient(router)
        future = client.submit(workload[0])
        assert future.done()  # served from the result cache, synchronously
        result = future.result()
        assert result.from_result_cache
        await client.drain()
        return result

    result = asyncio.run(main())
    assert result.index == start_index


def test_async_client_empty_stream_drains_to_well_formed_report(fleet):
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)

    async def main():
        async with AsyncFleetClient(router) as client:
            assert client.outstanding == 0
        return router.report()

    report = asyncio.run(main())
    assert report.results == []
    assert report.stats.num_queries == 0
    assert report.stats.queries_per_second == 0.0
    assert report.stats.latency_ms == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_async_client_detaches_and_restores_observer(fleet):
    seen = []
    prior = seen.append
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                             seed=2, on_result=prior)

    async def main():
        async with AsyncFleetClient(router) as client:
            client.submit(WorkloadGenerator(fleet.relation("users"),
                                            min_filters=1, max_filters=2,
                                            seed=9).generate(1)[0]
                          .qualified("users"))

    asyncio.run(main())
    assert router.on_result is prior  # prior observer restored
    assert len(seen) == 1  # ...and it kept firing while the client was live


# --------------------------------------------------------------------------- #
# stream_workload
# --------------------------------------------------------------------------- #
def test_stream_workload_rejects_bad_arrival_order(fleet, workload):
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)
    with pytest.raises(ValueError, match="permutation"):
        stream_workload(router, workload, arrival_order=[0, 0, 1])


def test_stream_workload_sheds_like_run(fleet, workload):
    router = StreamingRouter(fleet, batch_size=8, num_samples=_SAMPLES,
                             seed=2, max_pending=2, overflow="shed")
    report = stream_workload(router, workload)
    assert report.stats.shed > 0
    assert report.stats.num_queries + report.stats.shed == len(workload)
    # Shed queries leave their position-keyed index unused; route_of must
    # look results up by index field, not list position, across the gaps.
    for result in report.results:
        assert report.route_of(result.index) == result.route
    served = {result.index for result in report.results}
    missing = next(position for position in range(len(workload))
                   if position not in served)
    with pytest.raises(KeyError, match="no result"):
        report.route_of(missing)


# --------------------------------------------------------------------------- #
# Bursty workloads and latency percentiles
# --------------------------------------------------------------------------- #
def test_bursty_workload_is_mixed_workload_reordered(fleet):
    relations = {name: fleet.relation(name) for name in fleet.names}
    mixed = generate_mixed_workload(relations, 24, min_filters=1,
                                    max_filters=3, seed=3,
                                    weights={"sessions": 3.0, "users": 1.0})
    bursty = generate_bursty_workload(relations, 24, hot="sessions",
                                      burst_size=6, min_filters=1,
                                      max_filters=3, seed=3,
                                      weights={"sessions": 3.0, "users": 1.0})
    assert sorted(map(str, bursty)) == sorted(map(str, mixed))
    # The hot relation opens with a full uninterrupted burst.
    assert [query.table for query in bursty[:6]] == ["sessions"] * 6
    with pytest.raises(ValueError, match="hot relation"):
        generate_bursty_workload(relations, 8, hot="nope")
    with pytest.raises(ValueError, match="burst_size"):
        generate_bursty_workload(relations, 8, hot="users", burst_size=0)


def test_latency_percentiles_weighting_and_edges():
    assert latency_percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    flat = latency_percentiles([10.0, 10.0, 10.0])
    assert flat == {"p50": 10.0, "p95": 10.0, "p99": 10.0}
    # Query weighting: one 100 ms batch of 99 queries dominates the tail of
    # one 1 ms batch of 1 query.
    weighted = latency_percentiles([1.0, 100.0], weights=[1, 99])
    assert weighted["p50"] == 100.0
    unweighted = latency_percentiles([1.0, 100.0])
    assert unweighted["p50"] == pytest.approx(50.5)
    with pytest.raises(ValueError, match="equal length"):
        latency_percentiles([1.0], weights=[1, 2])
    assert latency_percentiles([5.0], weights=[0]) == \
        {"p50": 0.0, "p95": 0.0, "p99": 0.0}
