"""Unit tests for the streaming layer: controller, async client, SLO wiring.

The invariance suite (``test_serve_invariance.py``) owns the streaming ≡
batch grid; this module pins down the component behaviours — the adaptive
controller's AIMD policy and clamps, the async client's future lifecycle,
per-relation SLO plumbing through the registry, and the latency-percentile
helper the reports are built from.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import NaruConfig
from repro.data import make_sessions, make_users
from repro.query import WorkloadGenerator
from repro.serve import (
    AdaptiveBatchController,
    AdmissionError,
    AsyncFleetClient,
    FleetRouter,
    ModelRegistry,
    RoutingError,
    StreamingRouter,
    VirtualClock,
    generate_bursty_workload,
    generate_mixed_workload,
    latency_percentiles,
    stream_workload,
)

_CONFIG = NaruConfig(epochs=2, hidden_sizes=(16, 16), batch_size=128,
                     progressive_samples=50, seed=0)
_SAMPLES = 50


@pytest.fixture(scope="module")
def fleet():
    """A small fitted two-relation registry shared by the streaming tests."""
    registry = ModelRegistry(default_config=_CONFIG)
    registry.register_table(make_users(num_users=80, seed=4))
    registry.register_table(make_sessions(num_rows=300, num_users=80, seed=5))
    registry.fit_all()
    return registry


@pytest.fixture(scope="module")
def workload(fleet):
    return generate_mixed_workload(
        {name: fleet.relation(name) for name in fleet.names}, 14,
        min_filters=1, max_filters=3, seed=7)


# --------------------------------------------------------------------------- #
# AdaptiveBatchController
# --------------------------------------------------------------------------- #
def test_controller_shrinks_monotonically_under_violation():
    controller = AdaptiveBatchController(slo_ms=10.0, max_batch=32)
    sizes = [controller.observe(100.0) for _ in range(10)]
    assert sizes[0] < 32  # the very first violation already shrinks
    assert all(b <= a for a, b in zip(sizes, sizes[1:]))  # never grows
    assert sizes[-1] == 1  # ...all the way down to min_batch
    assert controller.shrinks >= 5
    assert controller.trace[0] == 32


def test_controller_clamps_at_both_bounds():
    controller = AdaptiveBatchController(slo_ms=10.0, max_batch=8, min_batch=2)
    for _ in range(20):
        assert controller.observe(1000.0) >= 2
    assert controller.batch_size == 2
    for _ in range(50):
        assert controller.observe(0.01) <= 8
    assert controller.batch_size == 8  # grown back, additively, to the cap


def test_controller_disabled_is_fixed():
    controller = AdaptiveBatchController(slo_ms=None, max_batch=16)
    for latency in (0.01, 1000.0, 5.0, 99999.0):
        assert controller.observe(latency) == 16
    assert not controller.enabled
    assert controller.target_ms is None
    assert list(controller.trace) == [16] * 5
    assert controller.shrinks == controller.grows == 0
    assert controller.ewma_ms is not None  # it still tracks, for reporting


def test_controller_does_not_grow_above_target_band():
    controller = AdaptiveBatchController(slo_ms=10.0, max_batch=32,
                                         headroom=0.8, grow_below=0.5)
    controller.observe(100.0)  # shrink once
    size = controller.batch_size
    # EWMA inside [grow_below * target, target]: hold, neither grow nor shrink.
    controller.ewma_ms = 6.0
    assert controller.observe(6.0) == size


def test_controller_validates_arguments():
    with pytest.raises(ValueError, match="slo_ms"):
        AdaptiveBatchController(slo_ms=0.0)
    with pytest.raises(ValueError, match="min_batch"):
        AdaptiveBatchController(min_batch=0)
    with pytest.raises(ValueError, match="max_batch"):
        AdaptiveBatchController(max_batch=2, min_batch=4)
    with pytest.raises(ValueError, match="alpha"):
        AdaptiveBatchController(alpha=0.0)
    with pytest.raises(ValueError, match="headroom"):
        AdaptiveBatchController(headroom=1.5)
    with pytest.raises(ValueError, match="grow_below"):
        AdaptiveBatchController(grow_below=1.0)
    with pytest.raises(ValueError, match="initial"):
        AdaptiveBatchController(max_batch=8, initial=9)
    with pytest.raises(ValueError, match="trace_limit"):
        AdaptiveBatchController(trace_limit=0)


def test_controller_trace_is_bounded():
    controller = AdaptiveBatchController(slo_ms=10.0, max_batch=4,
                                         trace_limit=8)
    for _ in range(50):
        controller.observe(100.0)
    assert len(controller.trace) == 8      # ring buffer, not unbounded
    assert controller.shrinks >= 2         # cumulative counters survive


def test_ewma_tracks_latency():
    controller = AdaptiveBatchController(slo_ms=100.0, alpha=0.5, max_batch=4)
    controller.observe(10.0)
    assert controller.ewma_ms == pytest.approx(10.0)
    controller.observe(20.0)
    assert controller.ewma_ms == pytest.approx(15.0)


# --------------------------------------------------------------------------- #
# StreamingRouter wiring
# --------------------------------------------------------------------------- #
def test_streaming_router_adapts_batch_size(fleet, workload):
    router = StreamingRouter(fleet, batch_size=8, num_samples=_SAMPLES,
                             seed=2, slo_ms=0.01, adaptive=True)
    report = router.run(workload)
    for route in report.stats.routes:
        trace = report.stats.routes[route]["batch_trace"]
        assert trace[0] == 8
        assert min(trace) < 8  # the impossible SLO forced a shrink
        assert router.controller(route).shrinks > 0
    snapshots = router.controllers_report()
    assert set(snapshots) == set(report.stats.routes)
    assert all(entry["slo_ms"] == 0.01 for entry in snapshots.values())


def test_streaming_router_adaptive_false_is_fixed(fleet, workload):
    fixed = FleetRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)
    frozen = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                             seed=2, slo_ms=0.01, adaptive=False)
    left = fixed.run(workload)
    right = frozen.run(workload)
    np.testing.assert_allclose(right.selectivities, left.selectivities,
                               rtol=0.0, atol=1e-12)
    for route in left.stats.routes:
        assert left.stats.routes[route]["num_batches"] == \
            right.stats.routes[route]["num_batches"]
        trace = right.stats.routes[route]["batch_trace"]
        assert set(trace) == {4}  # disabled controller never moves


def test_registry_slo_overrides_router_slo(fleet):
    fleet.set_slo("sessions", 123.0)
    try:
        router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                                 seed=2, slo_ms=50.0, adaptive=True)
        assert router.effective_slo("sessions") == 123.0
        assert router.effective_slo("users") == 50.0
        assert router.controller("sessions").slo_ms == 123.0
        assert router.controller("users").slo_ms == 50.0
    finally:
        fleet.set_slo("sessions", None)
    assert fleet.slo_ms("sessions") is None


def test_registry_slo_validation(fleet):
    with pytest.raises(ValueError, match="slo_ms"):
        fleet.set_slo("users", 0.0)
    with pytest.raises(KeyError):
        fleet.set_slo("nope", 10.0)
    registry = ModelRegistry(default_config=_CONFIG)
    with pytest.raises(ValueError, match="slo_ms"):
        registry.register_table(make_users(num_users=16, seed=0), slo_ms=-1.0)
    name = registry.register_table(make_users(num_users=16, seed=1), slo_ms=5.0)
    assert registry.slo_ms(name) == 5.0
    assert registry.size_report()[name]["slo_ms"] == 5.0


def test_streaming_router_validates_arguments(fleet):
    with pytest.raises(ValueError, match="slo_ms"):
        StreamingRouter(fleet, slo_ms=-1.0)
    with pytest.raises(ValueError, match="min_batch"):
        StreamingRouter(fleet, batch_size=4, min_batch=5)
    # Controller tuning knobs fail fast at construction, not on the first
    # routed query mid-serve.
    with pytest.raises(ValueError, match="alpha"):
        StreamingRouter(fleet, slo_ms=5.0, ewma_alpha=1.5)
    with pytest.raises(ValueError, match="headroom"):
        StreamingRouter(fleet, slo_ms=5.0, headroom=0.0)
    with pytest.raises(ValueError, match="grow_below"):
        StreamingRouter(fleet, slo_ms=5.0, grow_below=1.0)


def test_batch_trace_is_per_scope(fleet, workload):
    """Each report's batch_trace covers its own scope: element 0 is the size
    in force entering the scope, then one entry per dispatch — warmup history
    does not leak into the steady scope's report."""
    router = StreamingRouter(fleet, batch_size=8, num_samples=_SAMPLES,
                             seed=2, slo_ms=0.01, adaptive=True)
    warmup = router.run(workload)
    steady = router.run(workload)
    for route in steady.stats.routes:
        warm_stats = warmup.stats.routes[route]
        steady_stats = steady.stats.routes[route]
        assert warm_stats["batch_trace"][0] == 8  # fresh router: the maximum
        assert len(warm_stats["batch_trace"]) == warm_stats["num_batches"] + 1
        # The steady scope opens at the converged size, not the maximum, and
        # its trace counts only its own dispatches.
        assert steady_stats["batch_trace"][0] == warm_stats["batch_trace"][-1]
        assert len(steady_stats["batch_trace"]) == \
            steady_stats["num_batches"] + 1


# --------------------------------------------------------------------------- #
# AsyncFleetClient
# --------------------------------------------------------------------------- #
def test_async_client_resolves_futures_with_routed_results(fleet, workload):
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)
    batch = FleetRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                        seed=2).run(workload)

    async def main():
        client = AsyncFleetClient(router)
        futures = [client.submit(query) for query in workload]
        report = await client.drain()
        return [future.result() for future in futures], report

    results, report = asyncio.run(main())
    assert [result.index for result in results] == list(range(len(workload)))
    np.testing.assert_allclose([result.selectivity for result in results],
                               batch.selectivities, rtol=0.0, atol=1e-12)
    np.testing.assert_allclose(report.selectivities, batch.selectivities,
                               rtol=0.0, atol=1e-12)


def test_async_client_duplicate_index_rejected(fleet, workload):
    router = StreamingRouter(fleet, batch_size=64, num_samples=_SAMPLES, seed=2)

    async def main():
        client = AsyncFleetClient(router)
        client.submit(workload[0], index=5)
        with pytest.raises(ValueError, match="already used"):
            client.submit(workload[1], index=5)
        assert client.outstanding == 1
        await client.drain()

    asyncio.run(main())


def test_async_client_rejects_index_reuse_after_dispatch(fleet, workload):
    """A dispatched index is as used as a pending one: reusing it would make
    two queries share one random stream and corrupt report ordering."""
    router = StreamingRouter(fleet, batch_size=1, num_samples=_SAMPLES, seed=2)

    async def main():
        client = AsyncFleetClient(router)
        future = client.submit(workload[0], index=3)
        assert future.done()  # batch_size=1 dispatches on submission
        with pytest.raises(ValueError, match="already used"):
            client.submit(workload[1], index=3)
        await client.drain()

    asyncio.run(main())


def test_async_client_routing_error_leaves_no_future(fleet, workload):
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)

    async def main():
        client = AsyncFleetClient(router)
        with pytest.raises(RoutingError):
            client.submit(workload[0].qualified("not_registered"))
        assert client.outstanding == 0
        assert router.next_index == 0  # nothing was consumed
        return await client.drain()

    report = asyncio.run(main())
    assert report.stats.num_queries == 0


def test_async_client_result_cache_hit_resolves_immediately(fleet, workload):
    router = StreamingRouter(fleet, batch_size=64, num_samples=_SAMPLES,
                             seed=2, result_cache=True)
    router.run(workload)  # warm the result cache
    start_index = router.next_index  # the scope continues after run()

    async def main():
        client = AsyncFleetClient(router)
        future = client.submit(workload[0])
        assert future.done()  # served from the result cache, synchronously
        result = future.result()
        assert result.from_result_cache
        await client.drain()
        return result

    result = asyncio.run(main())
    assert result.index == start_index


def test_async_client_empty_stream_drains_to_well_formed_report(fleet):
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)

    async def main():
        async with AsyncFleetClient(router) as client:
            assert client.outstanding == 0
        return router.report()

    report = asyncio.run(main())
    assert report.results == []
    assert report.stats.num_queries == 0
    assert report.stats.queries_per_second == 0.0
    assert report.stats.latency_ms == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_async_client_detaches_and_restores_observer(fleet):
    seen = []
    prior = seen.append
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                             seed=2, on_result=prior)

    async def main():
        async with AsyncFleetClient(router) as client:
            client.submit(WorkloadGenerator(fleet.relation("users"),
                                            min_filters=1, max_filters=2,
                                            seed=9).generate(1)[0]
                          .qualified("users"))

    asyncio.run(main())
    assert router.on_result is prior  # prior observer restored
    assert len(seen) == 1  # ...and it kept firing while the client was live


# --------------------------------------------------------------------------- #
# stream_workload
# --------------------------------------------------------------------------- #
def test_stream_workload_rejects_bad_arrival_order(fleet, workload):
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)
    with pytest.raises(ValueError, match="permutation"):
        stream_workload(router, workload, arrival_order=[0, 0, 1])


def test_stream_workload_sheds_like_run(fleet, workload):
    router = StreamingRouter(fleet, batch_size=8, num_samples=_SAMPLES,
                             seed=2, max_pending=2, overflow="shed")
    report = stream_workload(router, workload)
    assert report.stats.shed > 0
    assert report.stats.num_queries + report.stats.shed == len(workload)
    # Shed queries leave their position-keyed index unused; route_of must
    # look results up by index field, not list position, across the gaps.
    for result in report.results:
        assert report.route_of(result.index) == result.route
    served = {result.index for result in report.results}
    missing = next(position for position in range(len(workload))
                   if position not in served)
    with pytest.raises(KeyError, match="no result"):
        report.route_of(missing)


# --------------------------------------------------------------------------- #
# Bursty workloads and latency percentiles
# --------------------------------------------------------------------------- #
def test_bursty_workload_is_mixed_workload_reordered(fleet):
    relations = {name: fleet.relation(name) for name in fleet.names}
    mixed = generate_mixed_workload(relations, 24, min_filters=1,
                                    max_filters=3, seed=3,
                                    weights={"sessions": 3.0, "users": 1.0})
    bursty = generate_bursty_workload(relations, 24, hot="sessions",
                                      burst_size=6, min_filters=1,
                                      max_filters=3, seed=3,
                                      weights={"sessions": 3.0, "users": 1.0})
    assert sorted(map(str, bursty)) == sorted(map(str, mixed))
    # The hot relation opens with a full uninterrupted burst.
    assert [query.table for query in bursty[:6]] == ["sessions"] * 6
    with pytest.raises(ValueError, match="hot relation"):
        generate_bursty_workload(relations, 8, hot="nope")
    with pytest.raises(ValueError, match="burst_size"):
        generate_bursty_workload(relations, 8, hot="users", burst_size=0)


def test_latency_percentiles_weighting_and_edges():
    assert latency_percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    flat = latency_percentiles([10.0, 10.0, 10.0])
    assert flat == {"p50": 10.0, "p95": 10.0, "p99": 10.0}
    # Query weighting: one 100 ms batch of 99 queries dominates the tail of
    # one 1 ms batch of 1 query.
    weighted = latency_percentiles([1.0, 100.0], weights=[1, 99])
    assert weighted["p50"] == 100.0
    unweighted = latency_percentiles([1.0, 100.0])
    assert unweighted["p50"] == pytest.approx(50.5)
    with pytest.raises(ValueError, match="equal length"):
        latency_percentiles([1.0], weights=[1, 2])
    assert latency_percentiles([5.0], weights=[0]) == \
        {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_latency_percentiles_rejects_negative_weights():
    """Negative weights are a caller bug: silently clipping them (the old
    ``np.maximum(counts, 0)``) would report percentiles over a different
    population than asked for, so they must raise instead."""
    with pytest.raises(ValueError, match="non-negative"):
        latency_percentiles([1.0, 2.0], weights=[3, -1])
    # The non-negative path is untouched: zeros drop, positives repeat.
    assert latency_percentiles([1.0, 2.0], weights=[0, 2])["p50"] == 2.0


# --------------------------------------------------------------------------- #
# VirtualClock, queue-wait accounting and flush deadlines
# --------------------------------------------------------------------------- #
def test_virtual_clock_advances_monotonically():
    clock = VirtualClock()
    assert clock() == 0.0
    assert clock.advance(1.5) == 1.5
    assert clock() == 1.5
    with pytest.raises(ValueError, match="backwards"):
        clock.advance(-0.1)
    # A based clock rides on its underlying time source.
    real = {"now": 10.0}
    based = VirtualClock(start=1.0, base=lambda: real["now"])
    assert based() == 11.0
    assert based.advance(2.0) == 13.0
    real["now"] = 12.0
    assert based() == 15.0  # the base moved underneath


def test_engine_flush_deadline_and_tick(fleet, workload):
    """A partially filled micro-batch dispatches once its oldest query has
    waited past flush_after_ms — and only then."""
    clock = VirtualClock()
    router = StreamingRouter(fleet, batch_size=8, num_samples=_SAMPLES,
                             seed=2, flush_after_ms=5.0, clock=clock)
    route = router.resolve_route(workload[0])
    router.submit(workload[0])
    engine = max(router.group(route).engines, key=lambda e: e.pending)
    assert engine.flush_deadline == pytest.approx(5e-3)
    assert router.tick() == pytest.approx(5e-3)  # not due yet: deadline back
    assert engine.pending == 1
    clock.advance(4e-3)
    assert router.tick() == pytest.approx(5e-3)  # still 1 ms early
    clock.advance(2e-3)
    assert router.tick() is None                 # overdue: dispatched
    assert engine.pending == 0
    report = router.report()
    assert report.stats.timeout_flushes == 1
    assert report.stats.routes[route]["timeout_flushes"] == 1
    [result] = report.results
    assert result.queue_wait_ms == pytest.approx(6.0)
    assert result.e2e_ms == pytest.approx(6.0)  # virtual dispatch takes 0 ms


def test_flush_deadline_validation(fleet):
    with pytest.raises(ValueError, match="flush_after_ms"):
        StreamingRouter(fleet, flush_after_ms=0.0)
    with pytest.raises(ValueError, match="flush_after_ms"):
        FleetRouter(fleet, flush_after_ms=-1.0)


def test_registry_flush_after_overrides_router(fleet):
    fleet.set_flush_after("sessions", 250.0)
    try:
        router = FleetRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                             seed=2, flush_after_ms=80.0)
        assert router.effective_flush_after("sessions") == 250.0
        assert router.effective_flush_after("users") == 80.0
        assert router.engine("sessions").flush_after_ms == 250.0
        assert router.engine("users").flush_after_ms == 80.0
        assert router.has_flush_timeouts
    finally:
        fleet.set_flush_after("sessions", None)
    assert fleet.flush_after_ms("sessions") is None
    with pytest.raises(ValueError, match="flush_after_ms"):
        fleet.set_flush_after("sessions", 0.0)
    with pytest.raises(KeyError):
        fleet.set_flush_after("nope", 10.0)
    registry = ModelRegistry(default_config=_CONFIG)
    name = registry.register_table(make_users(num_users=16, seed=2),
                                   flush_after_ms=40.0)
    assert registry.flush_after_ms(name) == 40.0
    assert registry.size_report()[name]["flush_after_ms"] == 40.0
    with pytest.raises(ValueError, match="flush_after_ms"):
        registry.register_table(make_users(num_users=16, seed=3),
                                name="users_b", flush_after_ms=-5.0)


def test_report_exposes_queue_wait_and_e2e_percentiles(fleet, workload):
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)
    report = router.run(workload)
    for scope in (report.stats.as_dict(), *report.stats.routes.values()):
        assert {"p50", "p95", "p99"} == set(scope["latency_ms"])
        assert {"p50", "p95", "p99"} == set(scope["queue_wait_ms"])
        assert {"p50", "p95", "p99"} == set(scope["e2e_ms"])
    assert report.queue_wait_percentiles == report.stats.queue_wait_ms
    assert report.e2e_percentiles == report.stats.e2e_ms
    assert report.dispatch_percentiles == report.stats.latency_ms
    # Per query, end-to-end is wait + dispatch, so the fleet e2e p95 can
    # never undercut the dispatch p95 and every result carries both fields.
    assert report.e2e_percentiles["p95"] >= \
        report.dispatch_percentiles["p95"] - 1e-9
    for result in report.results:
        assert result.e2e_ms >= result.queue_wait_ms >= 0.0


def test_stream_workload_advance_ms_requires_virtual_clock(fleet, workload):
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)
    with pytest.raises(ValueError, match="advanceable"):
        stream_workload(router, workload, advance_ms=1.0)
    clocked = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                              seed=2, clock=VirtualClock())
    with pytest.raises(ValueError, match="non-negative"):
        stream_workload(clocked, workload, advance_ms=-1.0)


# --------------------------------------------------------------------------- #
# SLO scope: end-to-end vs dispatch-only accounting
# --------------------------------------------------------------------------- #
def test_slo_scope_validation(fleet):
    with pytest.raises(ValueError, match="slo_scope"):
        StreamingRouter(fleet, slo_ms=5.0, slo_scope="both")


def test_e2e_scope_steers_on_queue_wait_dispatch_scope_does_not(fleet,
                                                                workload):
    """The measurement-bug regression, isolated: under a virtual clock the
    dispatch latency is exactly zero, so *all* latency is queueing delay.
    The e2e-scoped controller sees it and shrinks; the dispatch-scoped
    controller (the pre-fix accounting) is blind to it and never moves."""
    reports = {}
    controllers = {}
    for scope in ("dispatch", "e2e"):
        clock = VirtualClock()
        router = StreamingRouter(fleet, batch_size=8, num_samples=_SAMPLES,
                                 seed=2, slo_ms=5.0, adaptive=True,
                                 slo_scope=scope, flush_after_ms=50.0,
                                 clock=clock)
        reports[scope] = stream_workload(router, workload, advance_ms=2.0)
        controllers[scope] = {route: router.controller(route).shrinks
                              for route in reports[scope].stats.routes}
    assert all(shrinks == 0 for shrinks in controllers["dispatch"].values())
    assert any(shrinks > 0 for shrinks in controllers["e2e"].values())
    # Accounting scope steers batch sizes, never estimates.
    np.testing.assert_allclose(reports["e2e"].selectivities,
                               reports["dispatch"].selectivities,
                               rtol=0.0, atol=1e-12)


# --------------------------------------------------------------------------- #
# AsyncFleetClient: close/cancel semantics and the __aexit__ hang regression
# --------------------------------------------------------------------------- #
def test_close_cancels_outstanding_futures(fleet, workload):
    router = StreamingRouter(fleet, batch_size=64, num_samples=_SAMPLES,
                             seed=2)

    async def main():
        client = AsyncFleetClient(router)
        future = client.submit(workload[0])
        assert not future.done()
        client.close()
        assert future.cancelled()
        assert client.outstanding == 0
        # close() is idempotent and leaves the router usable: flushing
        # dispatches the still-pending query without resolving anything
        # through the closed client.
        client.close()
        router.flush()
        return router.report()

    report = asyncio.run(main())
    assert report.stats.num_queries == 1


def test_aexit_on_exception_cancels_futures_instead_of_hanging(fleet,
                                                               workload):
    """Regression for the __aexit__ deadlock: leaving the context manager via
    an exception used to skip drain() *and* leave every in-flight future
    pending forever, deadlocking concurrent awaiters.  close() must cancel
    them so awaiters observe CancelledError promptly."""
    router = StreamingRouter(fleet, batch_size=64, num_samples=_SAMPLES,
                             seed=2)

    async def main():
        observed = {}

        async def awaiter(future):
            try:
                await future
            except asyncio.CancelledError:
                observed["cancelled"] = True

        with pytest.raises(RuntimeError, match="boom"):
            async with AsyncFleetClient(router) as client:
                future = client.submit(workload[0])  # in-flight micro-batch
                task = asyncio.ensure_future(awaiter(future))
                await asyncio.sleep(0)
                raise RuntimeError("boom")
        # The awaiter must finish on its own — a hang here is the old bug
        # (wait_for bounds the test instead of stalling the suite forever).
        await asyncio.wait_for(task, timeout=5.0)
        return observed

    observed = asyncio.run(main())
    assert observed == {"cancelled": True}
    assert router.on_result is None  # detached despite the exception


# --------------------------------------------------------------------------- #
# Awaitable backpressure
# --------------------------------------------------------------------------- #
def test_submit_async_suspends_at_capacity_and_resumes_on_timeout_flush(
        fleet):
    """With the group at max_pending, submit_async suspends instead of
    raising AdmissionError; the wall-clock flush driver dispatches the
    partial batch within flush_after_ms, freeing capacity and resuming the
    producer — no shed, no forced early dispatch at submit time."""
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                             seed=2, max_pending=2, overflow="shed",
                             flush_after_ms=30.0)
    generator = WorkloadGenerator(fleet.relation("users"), min_filters=1,
                                  max_filters=2, seed=17)
    queries = [query.qualified("users") for query in generator.generate(3)]

    async def main():
        async with AsyncFleetClient(router) as client:
            await client.submit_async(queries[0])
            await client.submit_async(queries[1])
            suspended = asyncio.ensure_future(client.submit_async(queries[2]))
            await asyncio.sleep(0)
            assert not suspended.done()  # producer parked at max_pending
            await asyncio.wait_for(suspended, timeout=10.0)
            report = await client.drain()
        return report

    report = asyncio.run(main())
    assert report.stats.num_queries == 3
    assert report.stats.shed == 0  # backpressure replaced shedding
    assert report.stats.timeout_flushes >= 1


def test_submit_async_without_flush_timeout_falls_back_to_early_dispatch(
        fleet):
    """A route with no flush deadline cannot free capacity passively — a
    lone producer awaiting it would deadlock — so acquire() degrades to the
    block policy's early dispatch and the submission completes inline."""
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                             seed=2, max_pending=2, overflow="block")
    generator = WorkloadGenerator(fleet.relation("users"), min_filters=1,
                                  max_filters=2, seed=18)
    queries = [query.qualified("users") for query in generator.generate(3)]

    async def main():
        async with AsyncFleetClient(router) as client:
            futures = [await client.submit_async(query) for query in queries]
            report = await client.drain()
        return futures, report

    futures, report = asyncio.run(main())
    assert report.stats.num_queries == 3
    assert [future.result().index for future in futures] == [0, 1, 2]


def test_flush_driver_dispatches_lone_submission(fleet, workload):
    """A single query in a partially filled batch resolves within the flush
    bound even though no further submissions, flushes or drains happen —
    the wall-clock driver ticks the router on its own."""
    router = StreamingRouter(fleet, batch_size=64, num_samples=_SAMPLES,
                             seed=2, flush_after_ms=20.0)

    async def main():
        async with AsyncFleetClient(router) as client:
            future = client.submit(workload[0])
            assert not future.done()
            result = await asyncio.wait_for(future, timeout=10.0)
            await client.drain()
        return result

    result = asyncio.run(main())
    assert result.index == 0


# --------------------------------------------------------------------------- #
# Flush-deadline regressions
# --------------------------------------------------------------------------- #
class _SteppingClock:
    """Clock advancing a fixed step on every reading — time passes mid-run()."""

    def __init__(self, step: float) -> None:
        self.step = step
        self.now = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def test_run_ticks_flush_deadlines_even_when_submissions_shed(fleet):
    """Regression: run() used to skip tick() whenever a submission was shed,
    so once a group hit max_pending its overdue partial batch was never
    flushed and the entire remaining workload was shed — even though the
    flush deadline existed precisely to clear that state."""
    generator = WorkloadGenerator(fleet.relation("users"), min_filters=1,
                                  max_filters=2, seed=21)
    queries = [query.qualified("users") for query in generator.generate(6)]
    router = StreamingRouter(fleet, batch_size=8, num_samples=_SAMPLES,
                             seed=2, max_pending=1, overflow="shed",
                             flush_after_ms=5.0, clock=_SteppingClock(3e-3))
    report = router.run(queries)
    # The deadline fired mid-run and freed capacity: more than the first
    # query was served, and the flushes really were timeout-triggered.
    assert report.stats.timeout_flushes > 0
    assert report.stats.num_queries > 1
    assert report.stats.num_queries + report.stats.shed == len(queries)


def test_flush_driver_propagates_dispatch_errors_to_awaiters(fleet,
                                                             workload):
    """Regression: a dispatch error inside the background flush driver used
    to kill the task silently, leaving every outstanding future pending
    forever — the error must surface through the futures instead."""
    router = StreamingRouter(fleet, batch_size=64, num_samples=_SAMPLES,
                             seed=2, flush_after_ms=10.0)

    async def main():
        client = AsyncFleetClient(router)
        try:
            future = client.submit(workload[0])
            route = router.resolve_route(workload[0])
            engine = max(router.group(route).engines,
                         key=lambda engine: engine.pending)

            def boom(*args, **kwargs):
                raise RuntimeError("sampler exploded")

            engine._sampler.estimate_selectivity_batch = boom
            with pytest.raises(RuntimeError, match="sampler exploded"):
                await asyncio.wait_for(future, timeout=10.0)
        finally:
            client.close()

    asyncio.run(main())


def test_flush_driver_auto_mode_skips_frozen_virtual_clocks(fleet, workload):
    """A fully virtual clock can never make a deadline due by sleeping, so
    auto mode must not spin a wall-clock driver against it (forcing
    flush_driver=True remains the caller's explicit choice)."""
    frozen = StreamingRouter(fleet, batch_size=64, num_samples=_SAMPLES,
                             seed=2, flush_after_ms=5.0, clock=VirtualClock())

    async def main(client):
        async with client:
            client.submit(workload[0])
            started = client._driver_task is not None
            frozen.flush()  # settle the future so exit drains cleanly
        return started

    assert asyncio.run(main(AsyncFleetClient(frozen))) is False
    assert asyncio.run(main(AsyncFleetClient(frozen, flush_driver=True))) \
        is True


def test_flush_driver_restarts_after_dispatch_error(fleet, workload):
    """Regression: a dead driver used to stay registered, silently voiding
    the flush-timeout guarantee for every later submission on the same
    client — after an error the next submission must start a fresh driver."""
    router = StreamingRouter(fleet, batch_size=64, num_samples=_SAMPLES,
                             seed=2, flush_after_ms=10.0)

    async def main():
        client = AsyncFleetClient(router)
        try:
            poisoned = client.submit(workload[0])
            route = router.resolve_route(workload[0])
            engine = max(router.group(route).engines,
                         key=lambda engine: engine.pending)
            real_batch = engine._sampler.estimate_selectivity_batch

            def boom(*args, **kwargs):
                raise RuntimeError("sampler exploded")

            engine._sampler.estimate_selectivity_batch = boom
            with pytest.raises(RuntimeError, match="sampler exploded"):
                await asyncio.wait_for(poisoned, timeout=10.0)
            # Heal the engine and resubmit: the lone query must still be
            # dispatched by the flush timeout, i.e. a new driver is running.
            engine._sampler.estimate_selectivity_batch = real_batch
            retried = client.submit(workload[0], index=500)
            result = await asyncio.wait_for(retried, timeout=10.0)
            return result
        finally:
            client.close()

    assert asyncio.run(main()).index == 500


def test_submit_async_does_not_deadlock_without_running_driver(fleet):
    """Regression: acquire() used to park producers whenever flush_after_ms
    was configured — even with no driver to ever fire it (frozen virtual
    clock, or flush_driver=False) — deadlocking the stream.  With nothing
    to free capacity passively it must fall back to early dispatch."""
    router = StreamingRouter(fleet, batch_size=4, num_samples=_SAMPLES,
                             seed=2, max_pending=2, overflow="block",
                             flush_after_ms=5.0, clock=VirtualClock())
    generator = WorkloadGenerator(fleet.relation("users"), min_filters=1,
                                  max_filters=2, seed=23)
    queries = [query.qualified("users") for query in generator.generate(4)]

    async def main():
        async with AsyncFleetClient(router) as client:
            assert client._driver_task is None  # frozen clock: no auto driver
            for query in queries:
                await client.submit_async(query)
            return await client.drain()

    report = asyncio.run(asyncio.wait_for(main(), timeout=10.0))
    assert report.stats.num_queries == len(queries)
