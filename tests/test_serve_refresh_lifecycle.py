"""Live refresh: RefreshController and the epoch-invalidation grid.

Two halves.  ``TestRefreshController`` drives the ingest -> stale-serve ->
refresh loop directly: drift scoring against the serving model, the
staleness/drift triggers, fine-tune swaps and the cold-rebuild fallback.
``TestEpochInvalidationGrid`` is the satellite invariance grid: after an
epoch bump every cache layer (result cache, per-engine conditional caches,
the packed group cache) must report **zero** stale hits, and a long-lived
router that lived through ingest + refresh must answer bit-identically to a
cold router built over the refreshed registry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NaruConfig, NaruEstimator
from repro.data import make_users, partition_by_column
from repro.estimators import SamplingEstimator
from repro.query import WorkloadGenerator
from repro.serve import (
    FleetRouter,
    ModelRegistry,
    RefreshController,
    StreamingRouter,
)

_CONFIG = NaruConfig(epochs=1, hidden_sizes=(8, 8), batch_size=64,
                     progressive_samples=40, seed=0)
_SAMPLES = 40
_SEED = 3


def _registry(*, replicas: int = 1) -> ModelRegistry:
    registry = ModelRegistry(default_config=_CONFIG)
    registry.register_table(make_users(num_users=120, seed=4),
                            replicas=replicas)
    return registry


def _workload(registry, count: int = 8):
    base = registry.relation("users")
    return [query.qualified("users")
            for query in WorkloadGenerator(base, min_filters=1, max_filters=2,
                                           seed=21).generate(count)]


class TestRefreshController:
    def test_constructor_validation(self):
        registry = _registry()
        with pytest.raises(ValueError, match="max_staleness"):
            RefreshController(registry, max_staleness=-1)
        with pytest.raises(ValueError, match="drift_threshold_bits"):
            RefreshController(registry, drift_threshold_bits=0.0)
        with pytest.raises(ValueError, match="refresh_epochs"):
            RefreshController(registry, refresh_epochs=0)
        assert "max_staleness=1" in repr(RefreshController(registry))

    def test_drift_is_none_without_a_likelihood_model(self):
        registry = _registry()          # registered, never fitted
        controller = RefreshController(registry)
        rows = make_users(num_users=20, seed=7)
        assert controller.drift_bits("users", rows) is None
        record = controller.ingest("users", rows)
        assert record["drift_bits"] is None
        assert record["data_epoch"] == 1
        assert record["staleness"] == 1

    def test_drift_is_none_for_non_naru_estimators(self):
        base = make_users(num_users=120, seed=4)
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(base, estimator=SamplingEstimator(
            base, sample_size=50, seed=1))
        controller = RefreshController(registry)
        assert controller.drift_bits("users",
                                     make_users(num_users=20, seed=7)) is None

    def test_drift_ranks_shifted_rows_above_in_distribution_rows(self):
        registry = _registry()
        registry.fit_all()
        controller = RefreshController(registry)
        base = registry.relation("users")
        head, *_, tail = partition_by_column(base, "country", 4)
        low = controller.drift_bits("users", head)     # most common values
        high = controller.drift_bits("users", tail)    # rarest values
        assert np.isfinite(low) and np.isfinite(high)
        assert high > low

    def test_drift_is_infinite_for_out_of_vocabulary_rows(self):
        registry = _registry()
        registry.fit_all()
        controller = RefreshController(registry)
        # user_ids 120..199 never appeared in the 120-user training table.
        oov = make_users(num_users=200, seed=4)
        assert controller.drift_bits("users", oov) == float("inf")

    def test_staleness_bound_flags_and_refresh_clears(self):
        registry = _registry()
        registry.fit_all()
        estimator = registry.estimator("users")
        controller = RefreshController(registry, max_staleness=1)
        rows = make_users(num_users=30, seed=7)
        first = controller.ingest("users", rows)
        assert not first["refresh_due"]                # one stale epoch is OK
        second = controller.ingest("users", rows)
        assert second["refresh_due"] and second["staleness"] == 2
        assert controller.due() == ["users"]
        refreshed = controller.refresh("users")
        assert refreshed is estimator                  # fine-tuned in place
        assert refreshed.num_rows == registry.relation("users").num_rows
        assert registry.serving_epoch("users") == (2, 2)
        assert controller.refreshes["users"] == 1
        assert controller.due() == []

    def test_drift_threshold_triggers_before_staleness_bound(self):
        registry = _registry()
        registry.fit_all()
        *_, tail = partition_by_column(registry.relation("users"),
                                       "country", 4)
        drift = RefreshController(registry).drift_bits("users", tail)
        assert drift > 0                               # a genuinely shifted batch
        controller = RefreshController(registry, max_staleness=5,
                                       drift_threshold_bits=drift / 2)
        record = controller.ingest("users", tail)
        assert record["staleness"] == 1                # far under the bound
        assert record["refresh_due"]                   # but drift tripped

    def test_auto_refresh_swaps_within_the_ingest_call(self):
        registry = _registry()
        registry.fit_all()
        controller = RefreshController(registry, max_staleness=0)
        record = controller.ingest("users", make_users(num_users=30, seed=7),
                                   auto_refresh=True)
        assert record["refresh_due"] and record["refreshed"]
        assert registry.staleness("users") == 0
        assert controller.refreshes["users"] == 1

    def test_out_of_vocabulary_ingest_forces_cold_rebuild(self):
        registry = _registry()
        registry.fit_all()
        old = registry.estimator("users")
        controller = RefreshController(registry, max_staleness=0)
        record = controller.ingest("users", make_users(num_users=200, seed=4))
        assert record["drift_bits"] == float("inf")
        rebuilt = controller.refresh("users")
        assert rebuilt is not old                      # new model, new dicts
        assert isinstance(rebuilt, NaruEstimator) and rebuilt._fitted
        assert rebuilt.num_rows == registry.relation("users").num_rows
        assert registry.serving_epoch("users") == (1, 1)


class TestEpochInvalidationGrid:
    """Satellite grid: an epoch bump kills every cache layer, atomically."""

    @pytest.fixture()
    def served(self):
        """A replicated fleet that has served (and cached) one workload
        twice, so the result cache and every conditional cache are warm."""
        registry = _registry(replicas=2)
        registry.fit_all()
        queries = _workload(registry)
        router = FleetRouter(registry, batch_size=4, num_samples=_SAMPLES,
                             seed=_SEED, result_cache=True, cache_entries=400)
        first = router.run(queries)
        warm = router.run(queries)
        assert warm.result_cache_hits == len(queries)  # caches really warm
        return registry, router, queries, first

    def test_stale_serving_is_cacheless_but_bit_identical(self, served):
        registry, router, queries, first = served
        registry.ingest("users", make_users(num_users=30, seed=7))
        stale = router.run(queries)
        # Nothing cached before the ingest is served: the warm result-cache
        # entries are rejected (counted), and the group was rebuilt with
        # fresh conditional caches — so the stale run re-derives everything
        # and lands bit-identical to the pre-ingest run (same model).
        assert stale.result_cache_hits == 0
        assert router.result_cache.stats.as_dict()["lifetime"]["stale_rejects"] > 0
        np.testing.assert_array_equal(stale.selectivities, first.selectivities)
        assert stale.stats.epochs["users"] == {"data_epoch": 1,
                                               "model_epoch": 0,
                                               "staleness": 1}
        assert stale.stats.max_staleness == 1
        assert stale.stats.as_dict()["max_staleness"] == 1

    def test_refreshed_router_matches_cold_router_bit_for_bit(self, served):
        registry, router, queries, _ = served
        controller = RefreshController(registry, max_staleness=0)
        controller.ingest("users", make_users(num_users=30, seed=7),
                          auto_refresh=True)
        group_before = router.group("users")
        post = router.run(queries)
        # Zero stale hits across every layer: no old result-cache entry and
        # no old conditional-cache entry reached a single estimate.
        assert post.result_cache_hits == 0
        cold = FleetRouter(registry, batch_size=4, num_samples=_SAMPLES,
                           seed=_SEED, result_cache=True,
                           cache_entries=400).run(queries)
        np.testing.assert_array_equal(post.selectivities, cold.selectivities)
        # The replica group was swapped, and its pooled conditional cache is
        # stamped with the new data epoch.
        group_after = router.group("users")
        assert group_after is not group_before
        assert group_after.cache.epoch == registry.data_epoch("users")
        assert post.stats.epochs["users"] == {"data_epoch": 1,
                                              "model_epoch": 1,
                                              "staleness": 0}
        assert post.stats.max_staleness == 0
        # Once refreshed, the cache warms again at the new epoch.
        rewarmed = router.run(queries)
        assert rewarmed.result_cache_hits == len(queries)

    def test_streaming_controller_survives_group_rebuild(self):
        registry = _registry()
        registry.fit_all()
        queries = _workload(registry, count=6)
        router = StreamingRouter(registry, batch_size=8, slo_ms=50.0,
                                 adaptive=False,  # frozen: sizes hold still
                                 num_samples=_SAMPLES, seed=_SEED)
        router.run(queries)
        controller = router.controller("users")
        controller.batch_size = 2      # pretend the SLO converged us here
        registry.ingest("users", make_users(num_users=30, seed=7))
        router.run(queries)            # scope boundary rebuilds the group
        assert router.controller("users") is controller
        # The rebuilt engines start from the converged size, not from max.
        assert all(engine.batch_size == 2
                   for engine in router.group("users").engines)
