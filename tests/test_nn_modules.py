"""Tests for layers, losses, optimisers and serialisation of the nn substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestLinearAndMasked:
    def test_linear_shapes_and_bias(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        output = layer(nn.Tensor(np.ones((5, 4))))
        assert output.shape == (5, 3)

    def test_linear_no_bias(self):
        layer = nn.Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_masked_linear_blocks_connections(self):
        layer = nn.MaskedLinear(3, 2, rng=np.random.default_rng(0))
        mask = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 0.0]])
        layer.set_mask(mask)
        base = layer(nn.Tensor(np.zeros((1, 3)))).numpy()
        # Changing input 2 must not affect any output; input 0 only output 0.
        changed = layer(nn.Tensor(np.array([[0.0, 0.0, 5.0]]))).numpy()
        np.testing.assert_allclose(changed, base)
        changed = layer(nn.Tensor(np.array([[5.0, 0.0, 0.0]]))).numpy()
        assert changed[0, 0] != pytest.approx(base[0, 0])
        assert changed[0, 1] == pytest.approx(base[0, 1])

    def test_masked_linear_rejects_bad_mask_shape(self):
        layer = nn.MaskedLinear(3, 2)
        with pytest.raises(ValueError):
            layer.set_mask(np.ones((2, 3)))

    def test_embedding_lookup_and_gradient(self):
        embedding = nn.Embedding(10, 4, rng=np.random.default_rng(0))
        indices = np.array([1, 1, 3])
        output = embedding(indices)
        assert output.shape == (3, 4)
        output.sum().backward()
        # Row 1 was used twice, row 3 once, others never.
        assert embedding.weight.grad[1].sum() == pytest.approx(8.0)
        assert embedding.weight.grad[3].sum() == pytest.approx(4.0)
        assert embedding.weight.grad[0].sum() == pytest.approx(0.0)

    def test_sequential_and_relu(self):
        model = nn.Sequential(nn.Linear(3, 5), nn.ReLU(), nn.Linear(5, 2))
        assert len(model) == 3
        assert model(nn.Tensor(np.ones((4, 3)))).shape == (4, 2)

    def test_dropout_train_vs_eval(self):
        dropout = nn.Dropout(0.5, rng=np.random.default_rng(0))
        data = nn.Tensor(np.ones((100, 10)))
        dropout.train()
        trained = dropout(data).numpy()
        assert (trained == 0.0).any()
        dropout.eval()
        np.testing.assert_allclose(dropout(data).numpy(), data.numpy())

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestModuleMechanics:
    def test_named_parameters_cover_nested_modules(self):
        model = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 4  # two weights + two biases
        assert len(set(names)) == 4

    def test_num_parameters_and_size(self):
        layer = nn.Linear(10, 5)
        assert layer.num_parameters() == 10 * 5 + 5
        assert layer.size_bytes() == layer.num_parameters() * 4

    def test_state_dict_roundtrip(self):
        model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        clone = nn.Sequential(nn.Linear(3, 4, rng=np.random.default_rng(9)),
                              nn.ReLU(), nn.Linear(4, 2, rng=np.random.default_rng(8)))
        clone.load_state_dict(model.state_dict())
        data = nn.Tensor(np.random.default_rng(0).normal(size=(5, 3)))
        np.testing.assert_allclose(model(data).numpy(), clone(data).numpy())

    def test_load_state_dict_mismatch_raises(self):
        model = nn.Linear(3, 4)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((3, 4))})  # missing bias name

    def test_load_state_dict_shape_mismatch_raises(self):
        model = nn.Linear(3, 4)
        state = model.state_dict()
        state["weight"] = np.zeros((4, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_save_and_load_npz(self, tmp_path):
        model = nn.Linear(6, 2)
        path = tmp_path / "model.npz"
        nn.save_module(model, path)
        clone = nn.Linear(6, 2, rng=np.random.default_rng(7))
        nn.load_into_module(clone, path)
        np.testing.assert_allclose(model.weight.data, clone.weight.data)

    def test_zero_grad_clears_all(self):
        model = nn.Linear(3, 2)
        loss = model(nn.Tensor(np.ones((4, 3)))).sum()
        loss.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = nn.Tensor(np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]])))
        loss = nn.cross_entropy(logits, np.array([0, 1]))
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert loss.item() == pytest.approx(expected, rel=1e-6)

    def test_nll_loss(self):
        log_probs = nn.Tensor(np.log(np.full((3, 4), 0.25)))
        loss = nn.nll_loss(log_probs, np.array([0, 1, 2]))
        assert loss.item() == pytest.approx(-np.log(0.25))

    def test_mse_loss(self):
        prediction = nn.Tensor(np.array([1.0, 2.0, 3.0]))
        assert nn.mse_loss(prediction, np.array([1.0, 2.0, 5.0])).item() == pytest.approx(4.0 / 3)

    def test_binary_cross_entropy_bounds(self):
        prediction = nn.Tensor(np.array([0.9, 0.1]))
        loss = nn.binary_cross_entropy(prediction, np.array([1.0, 0.0]))
        assert loss.item() == pytest.approx(-np.log(0.9), rel=1e-6)

    def test_cross_entropy_decreases_with_training_signal(self):
        rng = np.random.default_rng(0)
        layer = nn.Linear(4, 3, rng=rng)
        data = rng.normal(size=(64, 4))
        targets = (data[:, 0] > 0).astype(int)
        optimizer = nn.Adam(layer.parameters(), lr=1e-2)
        losses = []
        for _ in range(60):
            optimizer.zero_grad()
            loss = nn.cross_entropy(layer(nn.Tensor(data)), targets)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5


class TestOptimizers:
    @staticmethod
    def _quadratic_parameter():
        return nn.Parameter(np.array([5.0, -3.0]))

    def test_sgd_converges_on_quadratic(self):
        param = self._quadratic_parameter()
        optimizer = nn.SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            (param * param).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, np.zeros(2), atol=1e-4)

    def test_sgd_momentum_converges(self):
        param = self._quadratic_parameter()
        optimizer = nn.SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            (param * param).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, np.zeros(2), atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        param = self._quadratic_parameter()
        optimizer = nn.Adam([param], lr=0.2)
        for _ in range(300):
            optimizer.zero_grad()
            (param * param).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, np.zeros(2), atol=1e-3)

    def test_weight_decay_shrinks_parameters(self):
        param = nn.Parameter(np.array([1.0]))
        optimizer = nn.SGD([param], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            optimizer.zero_grad()
            (param * 0.0).sum().backward()
            optimizer.step()
        assert abs(param.data[0]) < 0.1

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=1e-3)

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([nn.Parameter(np.zeros(1))], lr=0.0)

    def test_step_skips_parameters_without_grad(self):
        param = nn.Parameter(np.array([1.0]))
        optimizer = nn.Adam([param], lr=0.1)
        optimizer.step()  # no gradient accumulated; must not fail or move
        assert param.data[0] == pytest.approx(1.0)
