"""Tests for the baseline estimators of Table 2 (plus the Chow-Liu extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ColumnSpec, make_independent_table
from repro.estimators import (
    ChowLiuEstimator,
    DBMS1Estimator,
    IndependenceEstimator,
    KDEEstimator,
    KDESupervEstimator,
    MSCNEstimator,
    MultiDimHistogramEstimator,
    PostgresEstimator,
    SamplingEstimator,
    TruthEstimator,
)
from repro.query import Operator, Predicate, Query, WorkloadGenerator, q_error, true_selectivity


def _labeled_workload(table, count, seed=0, min_filters=2, max_filters=4):
    generator = WorkloadGenerator(table, min_filters=min_filters,
                                  max_filters=max_filters, seed=seed)
    return generator.generate_labeled(count)


def _median_q_error(estimator, labeled):
    errors = [q_error(estimator.estimate_cardinality(item.query), item.cardinality)
              for item in labeled]
    return float(np.median(errors))


class TestTruthEstimator:
    def test_always_exact(self, medium_table):
        estimator = TruthEstimator(medium_table)
        for item in _labeled_workload(medium_table, 10):
            assert estimator.estimate_cardinality(item.query) == pytest.approx(item.cardinality)

    def test_set_row_count_validation(self, medium_table):
        estimator = TruthEstimator(medium_table)
        with pytest.raises(ValueError):
            estimator.set_row_count(0)


class TestIndependenceEstimator:
    def test_exact_on_independent_data(self):
        specs = [ColumnSpec("a", 6), ColumnSpec("b", 8, "ordinal")]
        table = make_independent_table(specs, 20_000, seed=0)
        estimator = IndependenceEstimator(table)
        query = Query.from_tuples([("a", "=", str(table.column("a").domain[0])),
                                   ("b", "<=", int(table.column("b").domain[4]))])
        truth = true_selectivity(table, query)
        assert estimator.estimate_selectivity(query) == pytest.approx(truth, rel=0.15)

    def test_single_filter_is_exact(self, medium_table):
        estimator = IndependenceEstimator(medium_table)
        value = medium_table.column("a").domain[0]
        query = Query.from_tuples([("a", "=", str(value))])
        assert estimator.estimate_selectivity(query) == pytest.approx(
            true_selectivity(medium_table, query), abs=1e-12)

    def test_underestimates_on_correlated_data(self, medium_table):
        estimator = IndependenceEstimator(medium_table)
        labeled = _labeled_workload(medium_table, 30, seed=3, min_filters=3, max_filters=5)
        ratios = []
        for item in labeled:
            if item.cardinality > 5:
                ratios.append(estimator.estimate_cardinality(item.query) / item.cardinality)
        assert np.median(ratios) < 1.0

    def test_zero_for_absent_literal(self, medium_table):
        query = Query.from_tuples([("a", "=", "no_such_value")])
        assert IndependenceEstimator(medium_table).estimate_selectivity(query) == 0.0


class TestHistogramEstimator:
    def test_exact_with_one_bucket_per_value(self, tiny_table):
        estimator = MultiDimHistogramEstimator(tiny_table, buckets_per_column=1000)
        for item in _labeled_workload(tiny_table, 15, seed=1):
            assert estimator.estimate_cardinality(item.query) == pytest.approx(
                item.cardinality, abs=1e-6)

    def test_budget_limits_size(self, medium_table):
        small = MultiDimHistogramEstimator(medium_table, storage_budget_bytes=10_000)
        assert small.size_bytes() <= 10_000

    def test_wildcard_query(self, medium_table):
        estimator = MultiDimHistogramEstimator(medium_table, buckets_per_column=3)
        assert estimator.estimate_selectivity(Query([])) == pytest.approx(1.0, abs=1e-9)

    def test_coarse_buckets_lose_accuracy(self, tiny_table):
        labeled = [item for item in _labeled_workload(tiny_table, 25, seed=2)
                   if item.cardinality > 0]
        fine = MultiDimHistogramEstimator(tiny_table, buckets_per_column=1000)
        coarse = MultiDimHistogramEstimator(tiny_table, buckets_per_column=2)
        assert _median_q_error(fine, labeled) <= _median_q_error(coarse, labeled)


class TestPostgresEstimator:
    def test_single_equality_mcv_is_near_exact(self, medium_table):
        estimator = PostgresEstimator(medium_table, num_mcvs=200)
        common_code = int(np.argmax(medium_table.column("a").marginal()))
        value = medium_table.column("a").domain[common_code]
        query = Query.from_tuples([("a", "=", str(value))])
        assert estimator.estimate_selectivity(query) == pytest.approx(
            true_selectivity(medium_table, query), rel=0.05)

    def test_range_predicate_reasonable(self, medium_table):
        estimator = PostgresEstimator(medium_table)
        cutoff = int(medium_table.column("d").domain[25])
        query = Query.from_tuples([("d", "<=", cutoff)])
        truth = true_selectivity(medium_table, query)
        assert estimator.estimate_selectivity(query) == pytest.approx(truth, abs=0.2)

    def test_all_operator_kinds_supported(self, medium_table):
        estimator = PostgresEstimator(medium_table)
        column = medium_table.column("d")
        literal = int(column.domain[10])
        for operator in ("=", "!=", "<", "<=", ">", ">="):
            query = Query.from_tuples([("d", operator, literal)])
            assert 0.0 <= estimator.estimate_selectivity(query) <= 1.0
        in_query = Query([Predicate("d", Operator.IN, [literal, int(column.domain[11])])])
        between_query = Query([Predicate("d", Operator.BETWEEN,
                                         (literal, int(column.domain[20])))])
        assert 0.0 <= estimator.estimate_selectivity(in_query) <= 1.0
        assert 0.0 <= estimator.estimate_selectivity(between_query) <= 1.0

    def test_size_reported(self, medium_table):
        assert PostgresEstimator(medium_table).size_bytes() > 0


class TestDBMS1Estimator:
    def test_better_than_postgres_on_correlated_equalities(self, medium_table):
        labeled = [item for item in _labeled_workload(medium_table, 40, seed=7,
                                                      min_filters=3, max_filters=5)
                   if item.cardinality > 0]
        postgres = PostgresEstimator(medium_table)
        dbms1 = DBMS1Estimator(medium_table)
        assert _median_q_error(dbms1, labeled) <= _median_q_error(postgres, labeled) * 1.5

    def test_estimates_bounded(self, medium_table):
        estimator = DBMS1Estimator(medium_table)
        for item in _labeled_workload(medium_table, 20, seed=8):
            assert 0.0 <= estimator.estimate_selectivity(item.query) <= 1.0


class TestSamplingEstimator:
    def test_full_sample_is_exact(self, medium_table):
        estimator = SamplingEstimator(medium_table, fraction=1.0, seed=0)
        for item in _labeled_workload(medium_table, 15, seed=4):
            assert estimator.estimate_cardinality(item.query) == pytest.approx(item.cardinality)

    def test_sample_size_argument(self, medium_table):
        estimator = SamplingEstimator(medium_table, sample_size=100)
        assert estimator.sample_size == 100

    def test_invalid_fraction(self, medium_table):
        with pytest.raises(ValueError):
            SamplingEstimator(medium_table, fraction=0.0)

    def test_low_selectivity_failure_mode(self, medium_table):
        """With no qualifying sampled tuple the estimate collapses to zero."""
        estimator = SamplingEstimator(medium_table, sample_size=20, seed=0)
        rare = Query.from_tuples([
            ("a", "=", str(medium_table.column("a").domain[-1])),
            ("e", "=", str(medium_table.column("e").domain[-1])),
            ("g", "=", str(medium_table.column("g").domain[-1])),
        ])
        assert estimator.estimate_selectivity(rare) in (0.0, pytest.approx(0.0, abs=0.2))

    def test_good_accuracy_on_high_selectivity(self, medium_table):
        estimator = SamplingEstimator(medium_table, fraction=0.3, seed=1)
        labeled = [item for item in _labeled_workload(medium_table, 30, seed=5)
                   if item.selectivity > 0.05]
        assert _median_q_error(estimator, labeled) < 1.6


class TestKDEEstimators:
    def test_estimates_bounded(self, medium_table):
        estimator = KDEEstimator(medium_table, sample_size=300)
        for item in _labeled_workload(medium_table, 20, seed=6):
            assert 0.0 <= estimator.estimate_selectivity(item.query) <= 1.0

    def test_feedback_tuning_does_not_hurt(self, medium_table):
        labeled = [item for item in _labeled_workload(medium_table, 30, seed=11)
                   if item.cardinality > 0]
        train, test = labeled[:20], labeled[20:]
        untuned = KDEEstimator(medium_table, sample_size=300, seed=0)
        tuned = KDESupervEstimator(medium_table, sample_size=300, seed=0)
        tuned.fit_feedback([(item.query, item.cardinality) for item in train], passes=1)
        assert _median_q_error(tuned, test) <= _median_q_error(untuned, test) * 1.2

    def test_feedback_requires_training_queries(self, medium_table):
        with pytest.raises(ValueError):
            KDESupervEstimator(medium_table).fit_feedback([])

    def test_size_reported(self, medium_table):
        assert KDEEstimator(medium_table, sample_size=100).size_bytes() > 0


class TestMSCNEstimator:
    def test_requires_training(self, medium_table):
        estimator = MSCNEstimator(medium_table, sample_size=50)
        with pytest.raises(RuntimeError):
            estimator.estimate_selectivity(Query.from_tuples([("a", "=", "a_0")]))

    def test_requires_nonempty_training_set(self, medium_table):
        with pytest.raises(ValueError):
            MSCNEstimator(medium_table).fit([])

    def test_training_reduces_loss_and_learns_workload(self, medium_table):
        labeled = _labeled_workload(medium_table, 150, seed=12, min_filters=2, max_filters=5)
        estimator = MSCNEstimator(medium_table, sample_size=200, seed=0)
        losses = estimator.fit(labeled, epochs=15)
        assert losses[-1] < losses[0]
        test = [item for item in _labeled_workload(medium_table, 30, seed=13)
                if item.cardinality > 0]
        assert _median_q_error(estimator, test) < 20.0

    def test_variant_without_sample_bitmap(self, medium_table):
        labeled = _labeled_workload(medium_table, 80, seed=14)
        estimator = MSCNEstimator(medium_table, sample_size=0, seed=0)
        assert estimator.name == "MSCN-0"
        estimator.fit(labeled, epochs=5)
        query = labeled[0].query
        assert 0.0 <= estimator.estimate_selectivity(query) <= 1.0

    def test_names_reflect_sample_size(self, medium_table):
        assert MSCNEstimator(medium_table, sample_size=500).name == "MSCN-500"


class TestChowLiuEstimator:
    def test_single_filter_matches_marginal(self, medium_table):
        estimator = ChowLiuEstimator(medium_table)
        value = medium_table.column("c").domain[0]
        query = Query.from_tuples([("c", "=", str(value))])
        assert estimator.estimate_selectivity(query) == pytest.approx(
            true_selectivity(medium_table, query), rel=0.05)

    def test_better_than_independence_on_correlated_data(self, medium_table):
        labeled = [item for item in _labeled_workload(medium_table, 40, seed=15,
                                                      min_filters=2, max_filters=3)
                   if item.cardinality > 0]
        chow_liu = ChowLiuEstimator(medium_table)
        independence = IndependenceEstimator(medium_table)
        assert _median_q_error(chow_liu, labeled) <= _median_q_error(independence, labeled)

    def test_estimates_bounded(self, medium_table):
        estimator = ChowLiuEstimator(medium_table)
        for item in _labeled_workload(medium_table, 15, seed=16):
            assert 0.0 <= estimator.estimate_selectivity(item.query) <= 1.0

    def test_tree_structure_is_spanning(self, medium_table):
        estimator = ChowLiuEstimator(medium_table)
        roots = [child for child, parent in enumerate(estimator._parents) if parent is None]
        assert len(roots) == 1
        assert len(estimator._parents) == medium_table.num_columns
