"""Tests for the per-query estimator ensemble in the serving layer.

Capability-based routing (:meth:`FleetRouter.resolve_serving`), the
per-relation fallback estimators held by the :class:`ModelRegistry`, the
Naru inclusion–exclusion branch budget, and the per-estimator report columns.
The invariance contract extends to the ensemble: registering a fallback (or
wrapping a conjunction as a single-branch disjunction) must not move a single
bit of any estimate the pre-ensemble stack produced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NaruConfig, NaruEstimator
from repro.data import make_sessions, make_users
from repro.estimators import IndependenceEstimator, SamplingEstimator
from repro.query import Operator, Predicate, Query
from repro.query.predicates import DNFQuery
from repro.query.shapes import QueryShape
from repro.serve import (
    FleetRouter,
    ModelRegistry,
    RoutingError,
    generate_shape_workload,
    run_fleet_sequential,
)

_CONFIG = NaruConfig(epochs=2, hidden_sizes=(16, 16), batch_size=128,
                     progressive_samples=60, seed=0, max_dnf_branches=3)
_SAMPLES = 60


@pytest.fixture(scope="module")
def fleet():
    """Two fitted base tables, each with a sampling fallback estimator."""
    registry = ModelRegistry(default_config=_CONFIG)
    users = make_users(num_users=100, seed=4)
    sessions = make_sessions(num_rows=400, num_users=100, seed=5)
    registry.register_table(users, fallback=SamplingEstimator(
        users, fraction=1.0, seed=0))
    registry.register_table(sessions)
    registry.fit_all()
    return registry


_DNF_COLUMNS = {
    "users": ("plan", ["free", "basic", "pro", "enterprise"]),
    "sessions": ("device", [f"device_{index}" for index in range(8)]),
}


def _dnf(table: str, branches: int) -> DNFQuery:
    column, values = _DNF_COLUMNS[table]
    return DNFQuery.from_tuples(
        [[(column, "=", values[index % len(values)])]
         for index in range(branches)],
        table=table)


class TestCapabilities:
    def test_naru_serves_all_three_shapes(self, fleet):
        assert fleet.capabilities("users") == frozenset({
            QueryShape.CONJUNCTIVE, QueryShape.PREFIX,
            QueryShape.DISJUNCTIVE})

    def test_sampling_serves_all_three_shapes(self, fleet):
        assert fleet.fallback("users").capabilities() == frozenset({
            QueryShape.CONJUNCTIVE, QueryShape.PREFIX,
            QueryShape.DISJUNCTIVE})

    def test_mask_baseline_serves_prefix_but_not_disjunctive(self, fleet):
        baseline = IndependenceEstimator(fleet.relation("users"))
        assert baseline.capabilities() == frozenset({
            QueryShape.CONJUNCTIVE, QueryShape.PREFIX})

    def test_naru_bounds_dnf_at_config_branches(self, fleet):
        sessions = fleet.estimator("sessions")
        assert isinstance(sessions, NaruEstimator)
        assert sessions.can_serve(_dnf("sessions", _CONFIG.max_dnf_branches))
        assert not sessions.can_serve(
            _dnf("sessions", _CONFIG.max_dnf_branches + 1))


class TestRegistryFallbacks:
    def test_fallback_schema_mismatch_rejected(self, fleet):
        other = make_sessions(num_rows=50, num_users=20, seed=1)
        with pytest.raises(ValueError, match="schema does not match"):
            fleet.set_fallback("users", SamplingEstimator(other, fraction=1.0))

    def test_fallback_clearable(self):
        registry = ModelRegistry(default_config=_CONFIG)
        users = make_users(num_users=40, seed=4)
        registry.register_table(users, fallback=SamplingEstimator(
            users, fraction=1.0, seed=0))
        assert registry.fallback("users") is not None
        registry.set_fallback("users", None)
        assert registry.fallback("users") is None


class TestResolveServing:
    def test_conjunctive_always_primary(self, fleet):
        router = FleetRouter(fleet, num_samples=_SAMPLES, seed=2)
        query = Query([Predicate("plan", Operator.EQ, "pro")],
                      table="users")
        assert router.resolve_serving(query) == ("users", "primary")

    def test_small_dnf_primary_by_inclusion_exclusion(self, fleet):
        router = FleetRouter(fleet, num_samples=_SAMPLES, seed=2)
        assert router.resolve_serving(_dnf("users", 2)) == ("users", "primary")

    def test_overflow_dnf_routes_to_fallback(self, fleet):
        router = FleetRouter(fleet, num_samples=_SAMPLES, seed=2)
        overflow = _dnf("users", _CONFIG.max_dnf_branches + 1)
        assert router.resolve_serving(overflow) == ("users", "fallback")

    def test_overflow_without_fallback_raises_descriptive_error(self, fleet):
        router = FleetRouter(fleet, num_samples=_SAMPLES, seed=2)
        overflow = _dnf("sessions", _CONFIG.max_dnf_branches + 1)
        with pytest.raises(RoutingError) as excinfo:
            router.resolve_serving(overflow)
        message = str(excinfo.value)
        # The error names the shape, the failed capability bound, the
        # missing fallback, and every available route.
        assert "'disjunctive'" in message
        assert f"max_dnf_branches={_CONFIG.max_dnf_branches}" in message
        assert "no fallback estimator is registered" in message
        assert "users" in message and "sessions" in message

    def test_submit_surfaces_routing_error(self, fleet):
        router = FleetRouter(fleet, num_samples=_SAMPLES, seed=2)
        overflow = _dnf("sessions", _CONFIG.max_dnf_branches + 1)
        with pytest.raises(RoutingError):
            router.run([overflow])


class TestEnsembleInvariance:
    def test_fallback_registration_moves_no_conjunctive_bit(self):
        """The pre-ensemble contract survives: same estimates with and
        without a fallback registered, bit for bit."""
        users = make_users(num_users=100, seed=4)
        workload = generate_shape_workload(
            {"users": users}, 10, dnf_fraction=0.0, like_fraction=0.0,
            min_filters=1, max_filters=3, seed=7)

        def serve(with_fallback: bool) -> np.ndarray:
            registry = ModelRegistry(default_config=_CONFIG)
            fallback = (SamplingEstimator(users, fraction=1.0, seed=0)
                        if with_fallback else None)
            registry.register_table(users, fallback=fallback)
            registry.fit_all()
            router = FleetRouter(registry, num_samples=_SAMPLES, seed=2)
            report = router.run(workload)
            assert all(result.estimator.startswith("Naru-")
                       for result in report.results)
            return report.selectivities

        assert np.array_equal(serve(False), serve(True))

    def test_single_branch_dnf_is_bit_identical_to_its_branch(self, fleet):
        branch = Query([Predicate("plan", Operator.EQ, "pro"),
                        Predicate("country", Operator.LIKE, "country_1%")],
                       table="users")
        wrapped = DNFQuery([branch], table="users")
        plain = FleetRouter(fleet, num_samples=_SAMPLES, seed=2).run([branch])
        dnf = FleetRouter(fleet, num_samples=_SAMPLES, seed=2).run([wrapped])
        assert plain.results[0].selectivity == dnf.results[0].selectivity
        assert dnf.results[0].estimator.startswith("Naru-")

    def test_mixed_workload_matches_sequential_baseline(self, fleet):
        workload = generate_shape_workload(
            {name: fleet.relation(name) for name in fleet.names}, 16,
            dnf_fraction=0.25, like_fraction=0.25, dnf_branches=2,
            min_filters=1, max_filters=3, seed=7)
        router = FleetRouter(fleet, batch_size=4, num_samples=_SAMPLES, seed=2)
        routed = router.run(workload)
        baseline = run_fleet_sequential(fleet, workload,
                                        num_samples=_SAMPLES, seed=2)
        assert np.array_equal(routed.selectivities, baseline.selectivities)


class TestEnsembleReport:
    @pytest.fixture(scope="class")
    def report(self, fleet):
        queries = [
            Query([Predicate("plan", Operator.EQ, "pro")],
                  table="users"),
            _dnf("users", 2),
            _dnf("users", _CONFIG.max_dnf_branches + 1),
        ]
        router = FleetRouter(fleet, num_samples=_SAMPLES, seed=2)
        return queries, router.run(queries)

    def test_results_name_their_estimator(self, report):
        _, fleet_report = report
        estimators = [fleet_report.estimator_of(index) for index in range(3)]
        assert estimators[0].startswith("Naru-")
        assert estimators[1].startswith("Naru-")
        assert estimators[2].startswith("Sample(")

    def test_fallback_unit_reported_separately(self, report):
        _, fleet_report = report
        routes = fleet_report.stats.routes
        assert "users" in routes and "users@fallback" in routes
        assert routes["users@fallback"]["num_queries"] == 1
        assert routes["users@fallback"]["estimator"].startswith("Sample(")
        assert routes["users@fallback"]["relation"] == "users"

    def test_per_estimator_stats_cover_both_roles(self, report):
        _, fleet_report = report
        stats = fleet_report.stats.estimators
        assert stats is not None
        naru = next(entry for name, entry in stats.items()
                    if name.startswith("Naru-"))
        sample = next(entry for name, entry in stats.items()
                      if name.startswith("Sample("))
        assert naru["num_queries"] == 2
        assert sample["num_queries"] == 1
        assert sample["units"] == ["users@fallback"]

    def test_accuracy_by_estimator_buckets_by_server(self, report):
        queries, fleet_report = report
        truths = {index: max(1.0, index + 1.0)
                  for index in range(len(queries))}
        accuracy = fleet_report.accuracy_by_estimator(truths)
        assert sum(entry["num_queries"] for entry in accuracy.values()) == 3
        assert any(name.startswith("Sample(") for name in accuracy)
        for entry in accuracy.values():
            assert entry["median_qerror"] >= 1.0
            assert entry["max_qerror"] >= entry["median_qerror"]


class TestEnsembleCLI:
    def test_shaped_workload_with_fallback_end_to_end(self, tmp_path, capsys):
        import json
        import os

        from repro.serve.__main__ import main as serve_main

        report_path = os.path.join(tmp_path, "ensemble.json")
        exit_code = serve_main([
            "--tables", "users", "sessions",
            "--rows", "400", "--num-queries", "16", "--epochs", "1",
            "--samples", "40", "--batch-size", "4", "--seed", "5",
            "--fallback", "sampling", "--fallback-sample", "128",
            "--dnf-fraction", "0.25", "--like-fraction", "0.25",
            "--dnf-branches", "2", "6",
            "--compare-sequential", "--q-errors", "--json", report_path,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Registered fallback estimator" in output
        assert "disjunctive" in output and "prefix" in output
        assert "per-estimator breakdown" in output
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["fleet"]["num_queries"] == 16
        assert report["max_estimate_drift"] == 0.0
        assert any(unit.endswith("@fallback")
                   for unit in report["fleet"]["routes"])
        assert any(name.startswith("Sample(")
                   for name in report["q_errors_by_estimator"])

    def test_shape_flags_require_tables(self):
        from repro.serve.__main__ import main as serve_main

        with pytest.raises(SystemExit, match="--dnf-fraction.*--tables"):
            serve_main(["--dnf-fraction", "0.5"])
        with pytest.raises(SystemExit, match="--fallback.*--tables"):
            serve_main(["--fallback", "sampling"])

    def test_shape_flag_validation(self):
        from repro.serve.__main__ import main as serve_main

        base = ["--tables", "users", "--rows", "200"]
        with pytest.raises(SystemExit, match=r"must lie in \[0, 1\]"):
            serve_main([*base, "--dnf-fraction", "1.5"])
        with pytest.raises(SystemExit, match="sum to at most 1"):
            serve_main([*base, "--dnf-fraction", "0.7",
                        "--like-fraction", "0.7"])
        with pytest.raises(SystemExit, match="at least 2"):
            serve_main([*base, "--dnf-fraction", "0.5",
                        "--dnf-branches", "1"])
        with pytest.raises(SystemExit, match="does nothing without --dnf-fraction"):
            serve_main([*base, "--dnf-branches", "3"])
        with pytest.raises(SystemExit, match="does nothing without --fallback"):
            serve_main([*base, "--fallback-sample", "64"])
        with pytest.raises(SystemExit, match="incompatible with --workload"):
            serve_main([*base, "--dnf-fraction", "0.5",
                        "--workload", "w.json"])
        with pytest.raises(SystemExit, match="mutually"):
            serve_main([*base, "--workers", "2", "--fallback", "sampling"])
