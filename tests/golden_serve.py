"""The golden serving recipe: one frozen workload, one frozen set of answers.

This module pins every knob of a small end-to-end serving run — tables,
training config, workload, router shape — so the estimates it produces can be
frozen under ``tests/data/`` and compared against on every future change.  If
serving output drifts, the regression test fails loudly; if the drift is
*intentional* (a deliberate change to training, sampling or routing
semantics), regenerate the fixture and commit the diff::

    PYTHONPATH=src python tests/golden_serve.py

The recipe lives in one module (shared by the regeneration entry point, the
``golden_serve`` conftest fixture and the regression test) so the two sides
can never disagree about what "the golden run" is.
"""

from __future__ import annotations

import json
import os

from repro.core import NaruConfig
from repro.data import JoinSpec, make_sessions, make_users
from repro.serve import (
    FleetRouter,
    ModelRegistry,
    generate_mixed_workload,
    load_workload,
    save_workload,
)

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
WORKLOAD_PATH = os.path.join(DATA_DIR, "golden_serve_workload.json")
ESTIMATES_PATH = os.path.join(DATA_DIR, "golden_serve_estimates.json")

#: Every knob of the golden run.  Changing any of these is a semantic change
#: to the fixture — regenerate and commit both data files alongside it.
GOLDEN = {
    "users": 80,
    "sessions": 300,
    "users_seed": 4,
    "sessions_seed": 5,
    "epochs": 2,
    "hidden_sizes": (16, 16),
    "train_batch": 128,
    "num_queries": 10,
    "num_samples": 50,
    "batch_size": 3,
    "replicas": 2,
    "seed": 2,
}


def build_fleet() -> ModelRegistry:
    """Train the golden fleet: two base tables plus their join."""
    config = NaruConfig(epochs=GOLDEN["epochs"],
                        hidden_sizes=GOLDEN["hidden_sizes"],
                        batch_size=GOLDEN["train_batch"],
                        progressive_samples=GOLDEN["num_samples"], seed=0)
    registry = ModelRegistry(default_config=config)
    registry.register_table(make_users(num_users=GOLDEN["users"],
                                       seed=GOLDEN["users_seed"]))
    registry.register_table(
        make_sessions(num_rows=GOLDEN["sessions"], num_users=GOLDEN["users"],
                      seed=GOLDEN["sessions_seed"]),
        replicas=GOLDEN["replicas"])
    registry.register_join(JoinSpec("sessions", "users", "user_id", "user_id"))
    registry.fit_all()
    return registry


def build_workload(registry: ModelRegistry) -> list:
    """The golden mixed workload (deterministic given the registry)."""
    return generate_mixed_workload(
        {name: registry.relation(name) for name in registry.names},
        GOLDEN["num_queries"], min_filters=1, max_filters=3, seed=7)


def serve(registry: ModelRegistry, workload: list):
    """Serve the workload through the golden router shape."""
    router = FleetRouter(registry, batch_size=GOLDEN["batch_size"],
                         num_samples=GOLDEN["num_samples"],
                         seed=GOLDEN["seed"])
    return router.run(workload)


def regenerate() -> dict:
    """Rebuild both fixture files; returns the estimates document."""
    registry = build_fleet()
    workload = build_workload(registry)
    os.makedirs(DATA_DIR, exist_ok=True)
    save_workload(WORKLOAD_PATH, workload)
    report = serve(registry, load_workload(WORKLOAD_PATH))
    document = {
        "golden": {key: list(value) if isinstance(value, tuple) else value
                   for key, value in GOLDEN.items()},
        "routes": [result.route for result in report.results],
        "selectivities": [result.selectivity for result in report.results],
    }
    with open(ESTIMATES_PATH, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


if __name__ == "__main__":
    frozen = regenerate()
    print(f"Wrote {WORKLOAD_PATH}")
    print(f"Wrote {ESTIMATES_PATH} ({len(frozen['selectivities'])} estimates)")
