"""Tests for multi-model serving: ModelRegistry, JoinSpec and FleetRouter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NaruConfig
from repro.data import JoinSpec, hash_join, make_sessions, make_users
from repro.estimators import SamplingEstimator
from repro.query import Operator, Predicate, Query, WorkloadGenerator
from repro.serve import (
    FleetRouter,
    ModelRegistry,
    RoutingError,
    run_fleet_sequential,
)

_CONFIG = NaruConfig(epochs=2, hidden_sizes=(16, 16), batch_size=128,
                     progressive_samples=80, seed=0)


@pytest.fixture(scope="module")
def users():
    return make_users(num_users=120, seed=4)


@pytest.fixture(scope="module")
def sessions():
    return make_sessions(num_rows=600, num_users=120, seed=5)


@pytest.fixture(scope="module")
def fleet(users, sessions):
    """A fitted three-model registry: two base tables plus their join."""
    registry = ModelRegistry(default_config=_CONFIG)
    registry.register_table(users)
    registry.register_table(sessions)
    registry.register_join(JoinSpec("sessions", "users", "user_id", "user_id"))
    registry.fit_all()
    return registry


@pytest.fixture(scope="module")
def mixed_workload(fleet):
    """An interleaved table-qualified workload across all three relations."""
    per_relation = [
        [query.qualified(name)
         for query in WorkloadGenerator(fleet.relation(name), min_filters=1,
                                        max_filters=3, seed=20 + offset).generate(5)]
        for offset, name in enumerate(fleet.names)
    ]
    return [query for bundle in zip(*per_relation) for query in bundle]


class TestJoinSpec:
    def test_relation_name_defaults_to_inputs(self):
        spec = JoinSpec("sessions", "users", "user_id", "user_id")
        assert spec.relation_name == "sessions_join_users"
        assert JoinSpec("a", "b", "k", "k", name="ab").relation_name == "ab"

    def test_materialise_matches_hash_join(self, users, sessions):
        spec = JoinSpec("sessions", "users", "user_id", "user_id")
        built = spec.build({"users": users, "sessions": sessions})
        direct = hash_join(sessions, users, "user_id", "user_id")
        assert built.num_rows == direct.num_rows
        assert built.column_names == direct.column_names

    def test_sample_route_uses_join_sampler(self, users, sessions):
        spec = JoinSpec("sessions", "users", "user_id", "user_id",
                        how="sample", sample_rows=200, seed=7)
        built = spec.build({"users": users, "sessions": sessions})
        assert built.num_rows == 200
        # Sampled tuples are real join tuples: every user_id exists in users.
        assert set(built.column("user_id").values) <= set(users.column("user_id").values)

    def test_unknown_inputs_and_methods_rejected(self):
        with pytest.raises(ValueError, match="unknown join method"):
            JoinSpec("a", "b", "k", "k", how="cross")
        with pytest.raises(ValueError):
            JoinSpec("a", "b", "k", "k", sample_rows=0)
        spec = JoinSpec("a", "b", "k", "k")
        with pytest.raises(KeyError, match="not registered"):
            spec.build({})


class TestModelRegistry:
    def test_registration_and_introspection(self, fleet, users, sessions):
        assert len(fleet) == 3
        assert fleet.names == ["users", "sessions", "sessions_join_users"]
        assert "users" in fleet and "nope" not in fleet
        assert fleet.relation("users") is users
        assert fleet.relation("sessions") is sessions
        assert fleet.join_spec("users") is None
        assert fleet.join_spec("sessions_join_users").left == "sessions"
        with pytest.raises(KeyError, match="registered"):
            fleet.relation("nope")

    def test_duplicate_names_rejected(self, users):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users)
        with pytest.raises(ValueError, match="already registered"):
            registry.register_table(users)

    def test_lazy_fit_on_first_estimator_access(self, users):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users)
        assert not registry.is_fitted("users")
        estimator = registry.estimator("users")
        assert registry.is_fitted("users")
        assert estimator._fitted
        assert registry.estimator("users") is estimator  # cached, not rebuilt

    def test_per_relation_config_override(self, users):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users, config=_CONFIG.with_overrides(
            progressive_samples=123))
        estimator = registry.estimator("users", fit=False)
        assert estimator.config.progressive_samples == 123

    def test_prebuilt_estimator_served_as_is(self, users):
        registry = ModelRegistry(default_config=_CONFIG)
        sampler = SamplingEstimator(users, sample_size=100, seed=1)
        registry.register_table(users, estimator=sampler)
        assert registry.estimator("users") is sampler

    def test_prebuilt_estimator_must_match_relation(self, users, sessions):
        registry = ModelRegistry(default_config=_CONFIG)
        other = SamplingEstimator(sessions, sample_size=100, seed=1)
        with pytest.raises(ValueError, match="built against table"):
            registry.register_table(users, estimator=other)

    def test_prebuilt_estimator_must_be_fitted(self, users):
        from repro.core import NaruEstimator
        registry = ModelRegistry(default_config=_CONFIG)
        untrained = NaruEstimator(users, _CONFIG)
        with pytest.raises(ValueError, match="not fitted"):
            registry.register_table(users, estimator=untrained)
        assert "users" not in registry  # the failed registration left no trace

    def test_size_rollup_covers_every_model(self, fleet):
        report = fleet.size_report()
        assert set(report) == set(fleet.names)
        assert all(entry["model_bytes"] > 0 for entry in report.values())
        assert all(entry["fitted"] for entry in report.values())
        assert report["sessions_join_users"]["is_join"]
        assert not report["users"]["is_join"]
        assert fleet.size_bytes() == sum(entry["model_bytes"]
                                         for entry in report.values())

    def test_unbuilt_models_contribute_zero_bytes(self, users):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users)
        assert registry.size_bytes() == 0
        registry.estimator("users")
        assert registry.size_bytes() > 0


class TestRegistryEpochs:
    """Data/model epoch stamping: ingest, staleness, and replace semantics."""

    def test_fresh_relation_starts_at_epoch_zero(self, users):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users)
        assert registry.data_epoch("users") == 0
        assert registry.model_epoch("users") == 0
        assert registry.staleness("users") == 0
        assert registry.serving_epoch("users") == (0, 0)
        with pytest.raises(KeyError, match="registered"):
            registry.data_epoch("nope")

    def test_ingest_bumps_data_epoch_and_grows_relation(self, users):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users)
        more = make_users(num_users=30, seed=99)
        assert registry.ingest("users", more) == 1
        assert registry.ingest("users", more) == 2
        grown = registry.relation("users")
        assert grown.num_rows == users.num_rows + 2 * more.num_rows
        assert grown.name == users.name
        assert registry.serving_epoch("users") == (2, 0)
        assert registry.staleness("users") == 2

    def test_lazy_fit_stamps_model_epoch_to_data_epoch(self, users):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users)
        registry.ingest("users", make_users(num_users=20, seed=98))
        registry.estimator("users")          # lazy fit sees epoch-1 data
        assert registry.model_epoch("users") == 1
        assert registry.staleness("users") == 0

    def test_replace_accepts_structurally_equal_table(self, users):
        # Regression: the old identity check (`estimator.table is not table`)
        # rejected a refreshed table even when its schema matched exactly.
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users, replicas=2)
        registry.ingest("users", make_users(num_users=20, seed=97))
        grown = registry.relation("users")
        estimator = SamplingEstimator(grown, sample_size=50, seed=1)
        registry.register_table(grown, name="users", estimator=estimator,
                                replace=True)
        assert registry.estimator("users") is estimator
        assert registry.model_epoch("users") == 1
        assert registry.staleness("users") == 0
        # Replace keeps the serving knobs that were tuned on the old version.
        assert registry.replicas("users") == 2

    def test_replace_requires_opt_in(self, users):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users)
        with pytest.raises(ValueError, match="already registered"):
            registry.register_table(users, name="users")

    def test_replace_rejects_schema_mismatch(self, users, sessions):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users)
        wrong = SamplingEstimator(sessions, sample_size=50, seed=1)
        with pytest.raises(ValueError, match="built against table"):
            registry.register_table(users, name="users", estimator=wrong,
                                    replace=True)

    def test_replace_without_estimator_forces_cold_rebuild(self, users):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users)
        first = registry.estimator("users")
        registry.ingest("users", make_users(num_users=20, seed=96))
        grown = registry.relation("users")
        registry.register_table(grown, name="users", replace=True)
        assert not registry.is_fitted("users")
        rebuilt = registry.estimator("users")
        assert rebuilt is not first
        assert registry.serving_epoch("users") == (1, 1)


class TestFleetRouter:
    def test_mixed_workload_routes_every_query(self, fleet, mixed_workload):
        router = FleetRouter(fleet, batch_size=4, num_samples=80, seed=1)
        report = router.run(mixed_workload)
        assert [result.index for result in report.results] == \
            list(range(len(mixed_workload)))
        assert all(result.route == query.table
                   for result, query in zip(report.results, mixed_workload))
        assert np.all((report.selectivities >= 0.0) & (report.selectivities <= 1.0))
        # Cardinalities scale by the routed relation's row count.
        for result in report.results:
            expected = result.selectivity * fleet.relation(result.route).num_rows
            assert result.cardinality == pytest.approx(expected)

    def test_per_route_stats_and_shared_cache_budget(self, fleet, mixed_workload):
        router = FleetRouter(fleet, batch_size=4, num_samples=80, seed=1,
                             cache_entries=300)
        report = router.run(mixed_workload)
        stats = report.stats
        assert stats.num_queries == len(mixed_workload)
        assert stats.num_models == 3
        assert stats.cache_entries_total == 300
        assert stats.cache_entries_per_model == 100
        assert set(stats.routes) == set(fleet.names)
        for route_stats in stats.routes.values():
            assert route_stats["num_queries"] == 5
            assert route_stats["queries_per_second"] > 0
            assert route_stats["cache"]["hits"] + route_stats["cache"]["misses"] > 0
        assert stats.queries_per_second > 0

    def test_estimates_independent_of_batch_size_and_routing(self, fleet,
                                                             mixed_workload):
        """The acceptance gate: batch_size=1 vs 64 is stable per model."""
        small = FleetRouter(fleet, batch_size=1, num_samples=80,
                            seed=3).run(mixed_workload)
        large = FleetRouter(fleet, batch_size=64, num_samples=80,
                            seed=3).run(mixed_workload)
        np.testing.assert_allclose(small.selectivities, large.selectivities,
                                   rtol=1e-9, atol=1e-12)

    def test_matches_independent_sequential_engines(self, fleet, mixed_workload):
        routed = FleetRouter(fleet, batch_size=4, num_samples=80,
                             seed=2).run(mixed_workload)
        baseline = run_fleet_sequential(fleet, mixed_workload, num_samples=80,
                                        seed=2)
        assert [result.route for result in baseline.results] == \
            [result.route for result in routed.results]
        np.testing.assert_allclose(routed.selectivities, baseline.selectivities,
                                   rtol=1e-9, atol=1e-12)

    def test_unroutable_queries_raise(self, fleet):
        router = FleetRouter(fleet, batch_size=2, num_samples=40)
        unknown = Query([Predicate("plan", Operator.EQ, "pro")], table="nope")
        with pytest.raises(RoutingError, match="unregistered"):
            router.submit(unknown)
        unqualified = Query([Predicate("plan", Operator.EQ, "pro")])
        with pytest.raises(RoutingError, match="no table qualifier"):
            router.submit(unqualified)
        # Failed submissions consume no indices: the next run starts at zero.
        report = router.run([unqualified.qualified("users")])
        assert report.results[0].index == 0

    def test_default_route_serves_unqualified_queries(self, fleet):
        router = FleetRouter(fleet, batch_size=2, num_samples=40,
                             default_route="users")
        report = router.run([Query([Predicate("plan", Operator.EQ, "pro")])])
        assert report.results[0].route == "users"
        with pytest.raises(ValueError, match="not a registered relation"):
            FleetRouter(fleet, default_route="nope")

    def test_single_model_registry_routes_implicitly(self, users):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users)
        router = FleetRouter(registry, batch_size=2, num_samples=40)
        report = router.run([Query([Predicate("plan", Operator.EQ, "pro")])])
        assert report.results[0].route == "users"

    def test_relations_registered_after_router_construction_serve(self, users,
                                                                  sessions):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users)
        router = FleetRouter(registry, batch_size=2, num_samples=40, seed=0,
                             default_route="users")
        registry.register_table(sessions, replicas=2)
        query = Query([Predicate("user_id", Operator.GE, 0)], table="sessions")
        report = router.run([query])
        assert report.results[0].route == "sessions"
        assert report.stats.routes["sessions"]["num_replicas"] == 2

    def test_streaming_submit_flush_report(self, fleet, mixed_workload):
        router = FleetRouter(fleet, batch_size=4, num_samples=80, seed=1)
        expected = router.run(mixed_workload).selectivities

        streaming = FleetRouter(fleet, batch_size=4, num_samples=80, seed=1)
        for query in mixed_workload:
            assert streaming.submit(query) == query.table
        streaming.flush()
        report = streaming.report()
        np.testing.assert_allclose(report.selectivities, expected,
                                   rtol=1e-9, atol=1e-12)

    def test_empty_registry_rejected(self):
        with pytest.raises(ValueError, match="no relations"):
            FleetRouter(ModelRegistry(default_config=_CONFIG))

    def test_empty_workload_returns_well_formed_report(self, fleet,
                                                       mixed_workload):
        router = FleetRouter(fleet, batch_size=4, num_samples=40, seed=1)
        report = router.run([])
        assert report.results == []
        assert report.stats.num_queries == 0
        assert report.stats.num_models == 3
        assert report.stats.queries_per_second == 0.0
        assert report.stats.elapsed_s == 0.0
        assert report.stats.shed == 0
        assert report.selectivities.shape == (0,)
        # Also after the router has served traffic (groups materialised):
        # the per-route stats stay well formed at zero queries.
        router.run(mixed_workload[:3])
        empty = router.run([])
        assert empty.stats.num_queries == 0
        assert empty.stats.queries_per_second == 0.0
        for route_stats in empty.stats.routes.values():
            assert route_stats["num_queries"] == 0
            assert route_stats["queries_per_second"] == 0.0
        # And an empty run leaves the router serviceable.
        assert router.run(mixed_workload[:3]).stats.num_queries == 3

    def test_join_relation_served_like_base_table(self, fleet):
        """Queries spanning both join sides route to the join's model."""
        query = Query.from_tuples([("plan", "=", "pro"), ("errors", "=", "errors_0")],
                                  table="sessions_join_users")
        router = FleetRouter(fleet, batch_size=2, num_samples=80, seed=0)
        report = router.run([query])
        assert report.results[0].route == "sessions_join_users"
        assert 0.0 <= report.results[0].selectivity <= 1.0

    def test_sampled_join_relation_served(self, users, sessions):
        registry = ModelRegistry(default_config=_CONFIG)
        registry.register_table(users)
        registry.register_table(sessions)
        name = registry.register_join(JoinSpec(
            "sessions", "users", "user_id", "user_id", name="sampled",
            how="sample", sample_rows=250, seed=9))
        assert name == "sampled"
        query = Query.from_tuples([("plan", "=", "free")], table="sampled")
        report = FleetRouter(registry, batch_size=2, num_samples=80).run([query])
        assert report.results[0].route == "sampled"
        assert 0.0 <= report.results[0].selectivity <= 1.0


class TestQueryQualifier:
    def test_query_table_defaults_to_none(self):
        query = Query.from_tuples([("a", "=", 1)])
        assert query.table is None

    def test_qualified_copies_without_mutating(self):
        query = Query.from_tuples([("a", "=", 1)])
        qualified = query.qualified("users")
        assert qualified.table == "users"
        assert query.table is None
        assert qualified.predicates == query.predicates

    def test_str_shows_qualifier(self):
        query = Query.from_tuples([("a", "=", 1)], table="users")
        assert str(query).startswith("[users] ")
        assert "users" not in str(Query.from_tuples([("a", "=", 1)]))
