"""Tests for the widened query language: LIKE prefixes, DNF, shapes, files.

The paper's language is purely conjunctive; this module guards the widening
(``LIKE 'x%'`` string prefixes, disjunctions of conjunctive branches), the
shape classifier driving the serving ensemble, the inclusion–exclusion
expansion, and the version-3 workload file format — including the degenerate
corners (empty IN lists, absent literals, single-branch disjunctions,
zero-match prefixes) where off-by-one mask logic would hide.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Table
from repro.query import (
    Operator,
    Predicate,
    Query,
    qualifying_rows,
    true_cardinality,
    true_selectivity,
)
from repro.query.predicates import DNFQuery, canonical_in_values, dnf_expansion
from repro.query.shapes import QueryShape, query_shape
from repro.serve import load_workload, save_workload


@pytest.fixture()
def shape_table() -> Table:
    return Table.from_dict({
        "city": ["SF", "SF", "San Jose", "Portland", "Austin", "Austin",
                 "Sacramento", "Seattle"],
        "year": [2015, 2016, 2016, 2017, 2018, 2018, 2019, 2020],
        "stars": [3, 4, 5, 4, 2, 5, 1, 3],
    }, name="checkins")


class TestLikePrefix:
    def test_prefix_matches_startswith(self, shape_table):
        query = Query([Predicate("city", Operator.LIKE, "S%")])
        expected = sum(value.startswith("S")
                       for value in shape_table.column("city").values)
        assert true_cardinality(shape_table, query) == expected

    def test_longer_prefix(self, shape_table):
        query = Query([Predicate("city", Operator.LIKE, "San%")])
        assert true_cardinality(shape_table, query) == 1

    def test_zero_match_prefix(self, shape_table):
        query = Query([Predicate("city", Operator.LIKE, "Tokyo%")])
        assert true_cardinality(shape_table, query) == 0
        assert true_selectivity(shape_table, query) == 0.0

    def test_underscore_is_literal(self, shape_table):
        # The repo's label domains are 'name_index' strings; '_' must match
        # itself, not "any one character" as in SQL.
        mask = Predicate("city", Operator.LIKE, "S_%").valid_codes(
            shape_table.column("city"))
        assert mask.sum() == 0

    def test_non_prefix_pattern_rejected(self):
        with pytest.raises(ValueError, match="prefix"):
            Predicate("city", Operator.LIKE, "%SF")
        with pytest.raises(ValueError, match="trailing"):
            Predicate("city", Operator.LIKE, "S%F%")

    def test_numeric_column_rejected(self, shape_table):
        predicate = Predicate("year", Operator.LIKE, "20%")
        with pytest.raises(ValueError, match="string columns"):
            predicate.valid_codes(shape_table.column("year"))


class TestDegeneratePredicates:
    def test_empty_in_list_selects_nothing(self, shape_table):
        query = Query([Predicate("city", Operator.IN, [])])
        assert true_cardinality(shape_table, query) == 0

    def test_neq_absent_literal_selects_everything(self, shape_table):
        query = Query([Predicate("city", Operator.NEQ, "Tokyo")])
        assert true_cardinality(shape_table, query) == shape_table.num_rows

    def test_canonical_in_values_sorts_deterministically(self):
        assert canonical_in_values({"b", "a", "c"}) == ["a", "b", "c"]
        assert canonical_in_values([3, 1, 2]) == [1, 2, 3]
        # Iteration order of the input must not leak into the output.
        assert (canonical_in_values(iter(["z", "a"]))
                == canonical_in_values(iter(["a", "z"])))


class TestQueryShape:
    def test_conjunctive(self, shape_table):
        query = Query([Predicate("year", Operator.GE, 2017)])
        assert query_shape(query) is QueryShape.CONJUNCTIVE

    def test_prefix(self):
        query = Query([Predicate("city", Operator.LIKE, "S%"),
                       Predicate("year", Operator.GE, 2017)])
        assert query_shape(query) is QueryShape.PREFIX

    def test_disjunctive(self):
        query = DNFQuery.from_tuples([[("year", ">=", 2018)],
                                      [("city", "=", "SF")]])
        assert query_shape(query) is QueryShape.DISJUNCTIVE

    def test_single_branch_dnf_classifies_as_its_branch(self):
        # A single-branch disjunction is semantically a plain conjunction,
        # so it routes (and estimates) exactly like one — including when the
        # lone branch is itself a prefix query.
        plain = DNFQuery([Query([Predicate("year", Operator.GE, 2018)])])
        assert query_shape(plain) is QueryShape.CONJUNCTIVE
        prefix = DNFQuery([Query([Predicate("city", Operator.LIKE, "S%")])])
        assert query_shape(prefix) is QueryShape.PREFIX


class TestDNFQuery:
    def test_union_semantics(self, shape_table):
        branches = [Query([Predicate("year", Operator.GE, 2018)]),
                    Query([Predicate("city", Operator.EQ, "SF")])]
        union = DNFQuery(branches)
        expected = (qualifying_rows(shape_table, branches[0])
                    | qualifying_rows(shape_table, branches[1]))
        assert np.array_equal(qualifying_rows(shape_table, union), expected)

    def test_single_branch_equals_plain_query(self, shape_table):
        branch = Query([Predicate("stars", Operator.BETWEEN, (3, 5))])
        single = DNFQuery([branch])
        assert true_cardinality(shape_table, single) == \
            true_cardinality(shape_table, branch)

    def test_empty_branches_rejected(self):
        with pytest.raises(ValueError, match="at least one branch"):
            DNFQuery([])

    def test_mismatched_branch_tables_rejected(self):
        with pytest.raises(ValueError, match="different relations"):
            DNFQuery([Query([Predicate("a", Operator.EQ, 1)], table="x"),
                      Query([Predicate("a", Operator.EQ, 1)], table="y")])

    def test_expansion_term_count_and_signs(self):
        branches = [Query([Predicate("a", Operator.EQ, index)])
                    for index in range(3)]
        terms = dnf_expansion(DNFQuery(branches))
        assert len(terms) == 2 ** 3 - 1
        # Subsets ordered by size: 3 singletons (+), 3 pairs (−), 1 triple (+).
        assert [sign for sign, _ in terms] == [1, 1, 1, -1, -1, -1, 1]
        pair_term = terms[3][1]
        assert pair_term.num_filters == 2

    def test_expansion_is_exact_on_a_table(self, shape_table):
        union = DNFQuery.from_tuples([[("year", ">=", 2018)],
                                      [("city", "=", "SF")],
                                      [("stars", "=", 5)]])
        exact = true_selectivity(shape_table, union)
        expanded = sum(sign * true_selectivity(shape_table, term)
                       for sign, term in dnf_expansion(union))
        assert expanded == pytest.approx(exact, abs=1e-12)


class TestShapedWorkloadFiles:
    def _roundtrip(self, tmp_path, queries):
        path = tmp_path / "workload.json"
        save_workload(path, queries)
        return path, load_workload(path)

    def test_conjunctive_workload_stays_version_1(self, tmp_path):
        queries = [Query([Predicate("year", Operator.GE, 2017)])]
        path, loaded = self._roundtrip(tmp_path, queries)
        assert '"version": 1' in path.read_text()
        assert str(loaded[0]) == str(queries[0])

    def test_like_forces_version_3(self, tmp_path):
        queries = [Query([Predicate("city", Operator.LIKE, "S%")])]
        path, loaded = self._roundtrip(tmp_path, queries)
        assert '"version": 3' in path.read_text()
        assert loaded[0].predicates[0].operator is Operator.LIKE
        assert loaded[0].predicates[0].value == "S%"

    def test_dnf_roundtrip(self, tmp_path):
        queries = [DNFQuery.from_tuples([[("year", ">=", 2018)],
                                         [("city", "=", "SF")]],
                                        table="checkins")]
        path, loaded = self._roundtrip(tmp_path, queries)
        assert '"version": 3' in path.read_text()
        assert isinstance(loaded[0], DNFQuery)
        assert loaded[0].table == "checkins"
        assert len(loaded[0].branches) == 2
        assert str(loaded[0]) == str(queries[0])

    def test_single_branch_dnf_stays_dnf(self, tmp_path):
        queries = [DNFQuery.from_tuples([[("year", ">=", 2018)]])]
        _, loaded = self._roundtrip(tmp_path, queries)
        assert isinstance(loaded[0], DNFQuery)
        assert len(loaded[0].branches) == 1

    def test_in_serialization_is_iteration_order_independent(self, tmp_path):
        first = [Query([Predicate("city", Operator.IN, ["SF", "Austin"])])]
        second = [Query([Predicate("city", Operator.IN, ["Austin", "SF"])])]
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        save_workload(path_a, first)
        save_workload(path_b, second)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_save_load_save_is_byte_stable(self, tmp_path):
        queries = [
            Query([Predicate("city", Operator.IN, {"SF", "Austin"}),
                   Predicate("year", Operator.BETWEEN, (2016, 2018))]),
            Query([Predicate("city", Operator.LIKE, "S%")]),
            DNFQuery.from_tuples([[("year", ">=", 2018)],
                                  [("stars", "=", 5)]]),
        ]
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        save_workload(path_a, queries)
        save_workload(path_b, load_workload(path_a))
        assert path_a.read_bytes() == path_b.read_bytes()
