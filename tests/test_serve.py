"""Tests for the serving layer: cache, engine, workload files and CLI."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core import NaruConfig, NaruEstimator, OracleModel, ProgressiveSampler
from repro.data import ColumnSpec, make_correlated_table
from repro.estimators import SamplingEstimator
from repro.query import Operator, Predicate, Query, WorkloadGenerator
from repro.serve import (
    CachedConditionalModel,
    ConditionalProbCache,
    EstimationEngine,
    load_workload,
    run_sequential,
    save_workload,
)
from repro.serve.__main__ import main as serve_main


@pytest.fixture(scope="module")
def serve_table():
    specs = [
        ColumnSpec("a", 10, "ordinal", skew=1.4),
        ColumnSpec("b", 6, "categorical", skew=1.3),
        ColumnSpec("c", 12, "ordinal", skew=1.5),
        ColumnSpec("d", 4, "categorical", skew=1.2),
    ]
    return make_correlated_table(specs, num_rows=900, seed=3, name="serve")


@pytest.fixture(scope="module")
def oracle(serve_table):
    return OracleModel(serve_table)


@pytest.fixture(scope="module")
def workload(serve_table):
    generator = WorkloadGenerator(serve_table, min_filters=1, max_filters=4, seed=9)
    return generator.generate(12)


@pytest.fixture(scope="module")
def naru(serve_table):
    estimator = NaruEstimator(serve_table, NaruConfig(
        epochs=3, hidden_sizes=(32, 32), batch_size=128,
        progressive_samples=150, seed=0))
    estimator.fit()
    return estimator


class TestConditionalProbCache:
    def test_lru_eviction_order(self):
        cache = ConditionalProbCache(max_entries=2)
        cache.put((0, 1), np.array([1.0]))
        cache.put((0, 2), np.array([2.0]))
        assert cache.get((0, 1)) is not None   # refresh key 1
        cache.put((0, 3), np.array([3.0]))     # evicts key 2, the LRU entry
        assert cache.get((0, 2)) is None
        assert cache.get((0, 1)) is not None
        assert cache.get((0, 3)) is not None
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_zero_capacity_disables_storage(self):
        cache = ConditionalProbCache(max_entries=0)
        cache.put((0, 1), np.array([1.0]))
        assert cache.get((0, 1)) is None
        assert len(cache) == 0

    def test_counters(self):
        cache = ConditionalProbCache()
        cache.get((1, 7))
        cache.put((1, 7), np.array([1.0]))
        cache.get((1, 7))
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ConditionalProbCache(max_entries=-1)


class TestCachedConditionalModel:
    def test_matches_uncached_model(self, serve_table, oracle, rng):
        cached = CachedConditionalModel(oracle)
        codes = serve_table.encoded()[rng.integers(0, serve_table.num_rows, size=64)]
        for column in range(serve_table.num_columns):
            np.testing.assert_allclose(cached.conditional_probs(column, codes),
                                       oracle.conditional_probs(column, codes))

    def test_repeat_batches_hit_memory(self, serve_table, oracle):
        cached = CachedConditionalModel(oracle, bypass_fraction=1.0)
        codes = serve_table.encoded()[:32]
        cached.conditional_probs(2, codes)
        misses_before = cached.stats.misses
        cached.conditional_probs(2, codes)
        assert cached.stats.misses == misses_before  # all prefixes known
        assert cached.stats.hits > 0

    def test_empty_batch(self, serve_table, oracle):
        cached = CachedConditionalModel(oracle)
        probs = cached.conditional_probs(1, np.empty((0, serve_table.num_columns),
                                                     dtype=np.int64))
        assert probs.shape == (0, serve_table.domain_sizes[1])

    def test_bypass_still_deduplicates(self, serve_table, oracle):
        cached = CachedConditionalModel(oracle, bypass_fraction=0.0)
        codes = np.repeat(serve_table.encoded()[:4], 8, axis=0)
        distinct = np.unique(codes[:, oracle.order[:3]], axis=0).shape[0]
        cached.conditional_probs(3, codes)
        assert cached.stats.rows_evaluated == distinct
        assert cached.stats.rows_served_from_cache == codes.shape[0] - distinct


class TestEstimationEngine:
    def test_batched_equals_sequential(self, naru, workload):
        engine = EstimationEngine(naru, batch_size=5, num_samples=120, seed=11)
        report = engine.run(workload)
        baseline = run_sequential(naru, workload, num_samples=120, seed=11)
        np.testing.assert_allclose(report.selectivities, baseline.selectivities,
                                   rtol=1e-9, atol=1e-12)

    def test_estimates_independent_of_batch_size(self, naru, workload):
        runs = [EstimationEngine(naru, batch_size=size, num_samples=100,
                                 seed=4).run(workload).selectivities
                for size in (1, 5, 32)]
        np.testing.assert_allclose(runs[0], runs[1], rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(runs[0], runs[2], rtol=1e-9, atol=1e-12)

    def test_empty_member_does_not_poison_neighbours(self, naru, workload):
        empty = Query([Predicate("b", Operator.EQ, "no_such_value")])
        mixed = [workload[0], empty, workload[1]]
        engine = EstimationEngine(naru, batch_size=3, num_samples=100, seed=2)
        report = engine.run(mixed)
        assert report.selectivities[1] == 0.0
        # Neighbours keep their per-query streams, so their estimates are the
        # same numbers the engine returns for a batch without the empty query.
        alone = EstimationEngine(naru, batch_size=3, num_samples=100,
                                 seed=2).run([workload[0], workload[1], workload[1]])
        np.testing.assert_allclose(report.selectivities[0], alone.selectivities[0],
                                   rtol=1e-9, atol=1e-12)

    def test_cache_accounting_surfaces_in_stats(self, naru, workload):
        engine = EstimationEngine(naru, batch_size=4, num_samples=100, seed=0)
        stats = engine.run(workload).stats
        cache = stats.cache
        assert cache is not None
        assert cache["hits"] + cache["misses"] > 0
        assert 0.0 <= cache["hit_rate"] <= 1.0
        assert cache["rows_evaluated"] > 0
        assert cache["rows_served_from_cache"] > 0
        assert stats.queries_per_second > 0
        # A repeated run through the warm engine hits the shared cache harder
        # and, being a fresh workload scope, reproduces the same estimates.
        first = engine.run(workload)
        hits_before = engine.cache_stats["hits"]
        second = engine.run(workload)
        assert engine.cache_stats["hits"] > hits_before
        assert second.stats.num_queries == len(workload)
        np.testing.assert_array_equal(first.selectivities, second.selectivities)

    def test_cache_can_be_disabled(self, naru, workload):
        engine = EstimationEngine(naru, batch_size=4, num_samples=80,
                                  use_cache=False, seed=0)
        report = engine.run(workload[:4])
        assert report.stats.cache is None
        assert len(report.results) == 4

    def test_submit_flush_matches_run(self, naru, workload):
        whole = EstimationEngine(naru, batch_size=4, num_samples=90, seed=6)
        expected = whole.run(workload).selectivities

        incremental = EstimationEngine(naru, batch_size=4, num_samples=90, seed=6)
        for query in workload:
            incremental.submit(query)
        incremental.flush()
        report = incremental.report()
        assert [result.index for result in report.results] == list(range(len(workload)))
        np.testing.assert_allclose(report.selectivities, expected,
                                   rtol=1e-9, atol=1e-12)

    def test_non_batchable_estimator_falls_back(self, serve_table, workload):
        sampler = SamplingEstimator(serve_table, sample_size=200, seed=1)
        engine = EstimationEngine(sampler, batch_size=4)
        report = engine.run(workload[:6])
        assert report.stats.cache is None
        expected = [sampler.estimate_selectivity(query) for query in workload[:6]]
        np.testing.assert_allclose(report.selectivities, expected)

    def test_unfitted_estimator_rejected(self, serve_table, workload):
        unfitted = NaruEstimator(serve_table, NaruConfig(epochs=1,
                                                         hidden_sizes=(16,)))
        engine = EstimationEngine(unfitted, batch_size=2, num_samples=20)
        with pytest.raises(RuntimeError):
            engine.run(workload[:2])

    def test_invalid_batch_size_rejected(self, naru):
        with pytest.raises(ValueError):
            EstimationEngine(naru, batch_size=0)

    def test_run_refuses_pending_streaming_queries(self, naru, workload):
        engine = EstimationEngine(naru, batch_size=8, num_samples=50)
        engine.submit(workload[0])
        with pytest.raises(RuntimeError, match="pending"):
            engine.run(workload[:2])
        engine.flush()                      # finish the streaming scope...
        report = engine.run(workload[:2])   # ...then run() works again
        assert report.stats.num_queries == 2

    def test_naru_batch_api_matches_engine_paths(self, naru, workload):
        """NaruEstimator.estimate_selectivity_batch is the same machinery."""
        batch = naru.estimate_selectivity_batch(workload[:4], num_samples=80)
        assert batch.shape == (4,)
        assert np.all((batch >= 0.0) & (batch <= 1.0))
        # A batch of one equals the sequential estimate under the same stream.
        alone = ProgressiveSampler(naru.model, seed=31).estimate_selectivity(
            workload[0].column_masks(naru.table), num_samples=80)
        again = ProgressiveSampler(naru.model, seed=31).estimate_selectivity_batch(
            [workload[0].column_masks(naru.table)], num_samples=80)[0]
        assert alone == pytest.approx(again, rel=1e-12, abs=1e-15)


class TestWorkloadFiles:
    def test_roundtrip(self, serve_table, workload, tmp_path):
        path = os.path.join(tmp_path, "workload.json")
        rich = workload[:3] + [Query([
            Predicate("a", Operator.BETWEEN, (2, 9)),
            Predicate("b", Operator.IN, ["b_0", "b_2"]),
            Predicate("c", Operator.NEQ, 5),
        ])]
        save_workload(path, rich, table_name=serve_table.name)
        loaded = load_workload(path)
        assert len(loaded) == len(rich)
        for original, restored in zip(rich, loaded):
            for left, right in zip(original, restored):
                assert left.column == right.column
                assert left.operator == right.operator
            original_masks = original.column_masks(serve_table)
            restored_masks = restored.column_masks(serve_table)
            for left, right in zip(original_masks, restored_masks):
                if left is None:
                    assert right is None
                else:
                    np.testing.assert_array_equal(left, right)

    def test_table_mismatch_rejected(self, serve_table, workload, tmp_path):
        path = os.path.join(tmp_path, "workload.json")
        save_workload(path, workload[:2], table_name=serve_table.name)
        with pytest.raises(ValueError, match="generated against table"):
            load_workload(path, expected_table="another_table")
        # Matching (or unspecified) table names load fine.
        assert len(load_workload(path, expected_table=serve_table.name)) == 2
        assert len(load_workload(path)) == 2

    def test_unknown_version_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "bad.json")
        with open(path, "w") as handle:
            json.dump({"version": 99, "queries": []}, handle)
        with pytest.raises(ValueError):
            load_workload(path)

    def test_unqualified_workloads_keep_version_1(self, workload, tmp_path):
        """Files without table qualifiers stay bit-compatible with PR 1."""
        path = os.path.join(tmp_path, "workload.json")
        save_workload(path, workload[:3], table_name="serve")
        with open(path) as handle:
            document = json.load(handle)
        assert document["version"] == 1
        assert all(isinstance(spec, list) for spec in document["queries"])
        # The recorded table becomes each query's qualifier on load, so a
        # fleet router can replay single-model files against the right route.
        assert all(query.table == "serve" for query in load_workload(path))
        with open(path, "w") as handle:
            json.dump({"version": 1, "table": None,
                       "queries": document["queries"]}, handle)
        assert all(query.table is None for query in load_workload(path))

    def test_qualified_roundtrip_preserves_tables(self, workload, tmp_path):
        path = os.path.join(tmp_path, "mixed.json")
        mixed = [workload[0].qualified("serve"),
                 workload[1],                       # unqualified in a v2 file
                 Query([Predicate("a", Operator.BETWEEN, (2, 9)),
                        Predicate("b", Operator.IN, ["b_0", "b_2"])],
                       table="other_relation")]
        save_workload(path, mixed, table_name="serve")
        with open(path) as handle:
            document = json.load(handle)
        assert document["version"] == 2
        loaded = load_workload(path)
        assert loaded[0].table == "serve"
        # The unqualified query inherits the document-level default table.
        assert loaded[1].table == "serve"
        assert loaded[2].table == "other_relation"
        for original, restored in zip(mixed, loaded):
            assert [(p.column, p.operator) for p in original] == \
                [(p.column, p.operator) for p in restored]

    def test_qualified_roundtrip_without_default_table(self, workload, tmp_path):
        path = os.path.join(tmp_path, "mixed.json")
        mixed = [workload[0].qualified("serve"), workload[1]]
        save_workload(path, mixed)
        loaded = load_workload(path)
        assert loaded[0].table == "serve"
        assert loaded[1].table is None

    def test_expected_table_checks_v2_default(self, workload, tmp_path):
        path = os.path.join(tmp_path, "mixed.json")
        save_workload(path, [workload[0].qualified("serve")], table_name="serve")
        with pytest.raises(ValueError, match="generated against table"):
            load_workload(path, expected_table="another_table")
        assert len(load_workload(path, expected_table="serve")) == 1


class TestServeCLI:
    def test_end_to_end_with_replay(self, tmp_path):
        workload_path = os.path.join(tmp_path, "workload.json")
        report_path = os.path.join(tmp_path, "report.json")
        exit_code = serve_main([
            "--rows", "400", "--num-queries", "6", "--epochs", "1",
            "--samples", "40", "--batch-size", "4", "--seed", "5",
            "--save-workload", workload_path, "--json", report_path,
            "--q-errors",
        ])
        assert exit_code == 0
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["engine"]["num_queries"] == 6
        assert len(report["estimates"]) == 6
        assert len(report["q_errors"]) == 6

        replay_code = serve_main([
            "--rows", "400", "--workload", workload_path, "--epochs", "1",
            "--samples", "40", "--no-cache", "--compare-sequential",
            "--json", report_path, "--seed", "5",
        ])
        assert replay_code == 0
        with open(report_path) as handle:
            replay = json.load(handle)
        assert replay["engine"]["cache"] is None
        assert replay["max_estimate_drift"] <= 1e-9

    def test_multi_model_end_to_end_with_replay(self, tmp_path):
        workload_path = os.path.join(tmp_path, "mixed.json")
        report_path = os.path.join(tmp_path, "fleet.json")
        exit_code = serve_main([
            "--tables", "users", "sessions",
            "--join", "sessions:users:user_id:user_id",
            "--rows", "400", "--num-queries", "9", "--epochs", "1",
            "--samples", "40", "--batch-size", "3", "--seed", "5",
            "--save-workload", workload_path, "--json", report_path,
            "--compare-sequential", "--q-errors",
        ])
        assert exit_code == 0
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["fleet"]["num_queries"] == 9
        assert report["fleet"]["num_models"] == 3
        assert set(report["routes"]) == {"users", "sessions",
                                         "sessions_join_users"}
        assert len(report["estimates"]) == 9
        assert len(report["q_errors"]) == 9
        assert report["max_estimate_drift"] <= 1e-9

        replay_code = serve_main([
            "--tables", "users", "sessions",
            "--join", "sessions:users:user_id:user_id",
            "--rows", "400", "--workload", workload_path, "--epochs", "1",
            "--samples", "40", "--seed", "5", "--json", report_path,
        ])
        assert replay_code == 0
        with open(report_path) as handle:
            replay = json.load(handle)
        assert replay["estimates"] == report["estimates"]
        assert replay["routes"] == report["routes"]

    def test_join_without_tables_rejected(self):
        with pytest.raises(SystemExit, match="--join requires --tables"):
            serve_main(["--join", "a:b:k:k"])

    def test_replicated_end_to_end(self, tmp_path):
        report_path = os.path.join(tmp_path, "replicated.json")
        exit_code = serve_main([
            "--tables", "users", "sessions",
            "--rows", "400", "--num-queries", "8", "--epochs", "1",
            "--samples", "40", "--batch-size", "3", "--seed", "5",
            "--replicas", "2", "--max-pending", "8", "--result-cache",
            "--json", report_path,
        ])
        assert exit_code == 0
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["fleet"]["num_queries"] == 8
        assert report["fleet"]["shed"] == 0
        assert report["fleet"]["result_cache"]["misses"] == 8
        for route_stats in report["fleet"]["routes"].values():
            assert route_stats["num_replicas"] == 2
            assert len(route_stats["replicas"]) == 2

    def test_shed_overflow_reported(self, tmp_path, capsys):
        report_path = os.path.join(tmp_path, "shed.json")
        exit_code = serve_main([
            "--tables", "users", "sessions",
            "--rows", "400", "--num-queries", "8", "--epochs", "1",
            "--samples", "40", "--batch-size", "6", "--seed", "5",
            "--max-pending", "1", "--overflow", "shed",
            "--compare-sequential", "--json", report_path,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "shed" in output
        assert "Skipping --compare-sequential" in output
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["fleet"]["shed"] > 0
        assert "speedup" not in report

    def test_fleet_flags_require_tables(self):
        with pytest.raises(SystemExit, match="--replicas.*--tables"):
            serve_main(["--replicas", "2"])
        with pytest.raises(SystemExit, match="--max-pending.*--tables"):
            serve_main(["--max-pending", "4"])
        with pytest.raises(SystemExit, match="--result-cache.*--tables"):
            serve_main(["--result-cache"])
        with pytest.raises(SystemExit, match="--overflow.*--tables"):
            serve_main(["--overflow", "shed"])
        with pytest.raises(SystemExit, match="at least 1"):
            serve_main(["--tables", "users", "--replicas", "0"])
        with pytest.raises(SystemExit, match="non-negative"):
            serve_main(["--tables", "users", "--max-pending", "-1"])
        with pytest.raises(SystemExit, match="shed requires --max-pending"):
            serve_main(["--tables", "users", "--overflow", "shed"])

    def test_streaming_flags_require_tables_and_slo(self):
        with pytest.raises(SystemExit, match="--stream.*--tables"):
            serve_main(["--stream"])
        with pytest.raises(SystemExit, match="--adaptive.*--tables"):
            serve_main(["--adaptive"])
        with pytest.raises(SystemExit, match="--slo-ms.*--tables"):
            serve_main(["--slo-ms", "50"])
        with pytest.raises(SystemExit, match="--slo-scope.*--tables"):
            serve_main(["--slo-scope", "dispatch"])
        with pytest.raises(SystemExit, match="--flush-after-ms.*--tables"):
            serve_main(["--flush-after-ms", "20"])
        with pytest.raises(SystemExit, match="--min-batch.*--tables"):
            serve_main(["--min-batch", "2"])
        with pytest.raises(SystemExit, match="--adaptive requires --slo-ms"):
            serve_main(["--tables", "users", "--adaptive"])
        with pytest.raises(SystemExit, match="without --adaptive"):
            serve_main(["--tables", "users", "--slo-ms", "50"])
        # --slo-scope / --min-batch steer the adaptive controller only:
        # silently ignoring them would let the user believe they applied.
        with pytest.raises(SystemExit, match="--slo-scope does nothing"):
            serve_main(["--tables", "users", "--slo-scope", "dispatch"])
        with pytest.raises(SystemExit, match="--min-batch does nothing"):
            serve_main(["--tables", "users", "--min-batch", "2"])

    def test_latency_knobs_validated(self):
        """--slo-ms, --flush-after-ms and --min-batch fail fast with a clear
        one-line error instead of being accepted and misbehaving downstream."""
        with pytest.raises(SystemExit, match="--slo-ms must be positive"):
            serve_main(["--tables", "users", "--slo-ms", "-5"])
        with pytest.raises(SystemExit, match="--slo-ms must be positive"):
            serve_main(["--tables", "users", "--slo-ms", "0"])
        with pytest.raises(SystemExit,
                           match="--flush-after-ms must be positive"):
            serve_main(["--tables", "users", "--flush-after-ms", "0"])
        with pytest.raises(SystemExit,
                           match="--flush-after-ms must be positive"):
            serve_main(["--tables", "users", "--flush-after-ms", "-2"])
        with pytest.raises(SystemExit, match="--min-batch must be at least 1"):
            serve_main(["--tables", "users", "--min-batch", "0"])
        with pytest.raises(SystemExit,
                           match=r"--min-batch \(9\) must not exceed "
                                 r"--batch-size \(4\)"):
            serve_main(["--tables", "users", "--min-batch", "9",
                        "--batch-size", "4"])

    def test_stream_adaptive_end_to_end(self, tmp_path, capsys):
        """--stream --adaptive serves the workload through the asyncio client
        with SLO-steered batch sizes and reports latency percentiles plus the
        per-route batch trace."""
        report_path = os.path.join(tmp_path, "stream.json")
        exit_code = serve_main([
            "--tables", "users", "sessions",
            "--rows", "400", "--num-queries", "8", "--epochs", "1",
            "--samples", "40", "--batch-size", "4", "--seed", "5",
            "--stream", "--adaptive", "--slo-ms", "0.01",
            "--json", report_path,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Adaptive batching on" in output
        assert "dispatch latency p50/p95/p99" in output
        assert "batch size" in output
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["fleet"]["num_queries"] == 8
        assert set(report["fleet"]["latency_ms"]) == {"p50", "p95", "p99"}
        for route_stats in report["fleet"]["routes"].values():
            trace = route_stats["batch_trace"]
            assert trace[0] == 4
            # The impossibly tight SLO forces every controller to shrink.
            assert min(trace) < 4

    def test_flush_timeout_and_e2e_scope_end_to_end(self, tmp_path, capsys):
        """--flush-after-ms / --slo-scope / --min-batch flow through to the
        streaming router, and the report carries the queueing-delay and
        end-to-end percentiles alongside the dispatch ones."""
        report_path = os.path.join(tmp_path, "e2e.json")
        exit_code = serve_main([
            "--tables", "users", "sessions",
            "--rows", "400", "--num-queries", "8", "--epochs", "1",
            "--samples", "40", "--batch-size", "4", "--seed", "5",
            "--stream", "--adaptive", "--slo-ms", "500",
            "--slo-scope", "e2e", "--flush-after-ms", "30", "--min-batch", "2",
            "--json", report_path,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "p95 e2e SLO" in output
        assert "Flush timeout on" in output
        assert "queue wait p50/p95/p99" in output
        assert "end-to-end p50/p95/p99" in output
        with open(report_path) as handle:
            report = json.load(handle)
        fleet = report["fleet"]
        assert {"p50", "p95", "p99"} == set(fleet["queue_wait_ms"])
        assert {"p50", "p95", "p99"} == set(fleet["e2e_ms"])
        assert fleet["timeout_flushes"] >= 0
        for route_stats in fleet["routes"].values():
            assert {"p50", "p95", "p99"} == set(route_stats["queue_wait_ms"])
            assert {"p50", "p95", "p99"} == set(route_stats["e2e_ms"])
            assert route_stats["e2e_ms"]["p95"] >= \
                route_stats["latency_ms"]["p95"] - 1e-9

    def test_stream_without_adaptive_matches_batched_run(self, tmp_path):
        """--stream alone changes the submission path, never the estimates."""
        batch_path = os.path.join(tmp_path, "batch.json")
        stream_path = os.path.join(tmp_path, "stream.json")
        base = ["--tables", "users", "sessions", "--rows", "400",
                "--num-queries", "8", "--epochs", "1", "--samples", "40",
                "--batch-size", "3", "--seed", "5"]
        assert serve_main(base + ["--json", batch_path]) == 0
        assert serve_main(base + ["--stream", "--json", stream_path]) == 0
        with open(batch_path) as handle:
            batch = json.load(handle)
        with open(stream_path) as handle:
            stream = json.load(handle)
        assert stream["estimates"] == batch["estimates"]
        assert stream["routes"] == batch["routes"]


class TestOpenLoopCLI:
    """CLI surface of the open-loop load generator: the full fail-fast
    validation matrix plus the generate -> save-trace -> replay-with-chaos
    round trip and the kill_worker drill."""

    def test_open_loop_flags_require_tables(self):
        for flags in (["--arrivals", "poisson"], ["--offered-qps", "10"],
                      ["--duration-s", "1"], ["--trace-file", "t.json"],
                      ["--save-trace", "t.json"],
                      ["--scenario", "cache_wipe"]):
            with pytest.raises(SystemExit, match=r"require\(s\) --tables"):
                serve_main(flags)

    def test_open_loop_flag_combinations_validated(self):
        base = ["--tables", "users"]
        with pytest.raises(SystemExit, match="mutually exclusive"):
            serve_main(base + ["--workers", "2", "--arrivals", "poisson",
                               "--offered-qps", "10"])
        with pytest.raises(SystemExit,
                           match="--arrivals and --stream are mutually"):
            serve_main(base + ["--stream", "--arrivals", "poisson",
                               "--offered-qps", "10"])
        with pytest.raises(SystemExit,
                           match="--offered-qps must be positive, got 0"):
            serve_main(base + ["--arrivals", "poisson",
                               "--offered-qps", "0"])
        with pytest.raises(SystemExit,
                           match="--offered-qps must be positive, got -5"):
            serve_main(base + ["--arrivals", "poisson",
                               "--offered-qps", "-5"])
        with pytest.raises(SystemExit,
                           match="--duration-s must be positive, got -1"):
            serve_main(base + ["--arrivals", "poisson",
                               "--offered-qps", "10", "--duration-s", "-1"])
        with pytest.raises(SystemExit,
                           match="--arrivals poisson requires --offered-qps"):
            serve_main(base + ["--arrivals", "poisson"])
        with pytest.raises(SystemExit,
                           match="--arrivals trace requires --trace-file"):
            serve_main(base + ["--arrivals", "trace"])
        # A replayed trace fixes the arrival sequence: the generator's
        # knobs must be refused, not silently ignored.
        with pytest.raises(SystemExit, match="replayed trace fixes"):
            serve_main(base + ["--arrivals", "trace", "--trace-file",
                               "t.json", "--offered-qps", "10"])
        with pytest.raises(SystemExit, match="replayed trace fixes"):
            serve_main(base + ["--arrivals", "trace", "--trace-file",
                               "t.json", "--save-trace", "out.json"])
        with pytest.raises(SystemExit,
                           match="--offered-qps requires --arrivals"):
            serve_main(base + ["--offered-qps", "10"])
        with pytest.raises(SystemExit,
                           match="--duration-s requires --arrivals"):
            serve_main(base + ["--duration-s", "1"])
        with pytest.raises(SystemExit,
                           match="--save-trace requires --arrivals"):
            serve_main(base + ["--save-trace", "t.json"])
        with pytest.raises(SystemExit,
                           match="--trace-file requires --arrivals trace"):
            serve_main(base + ["--trace-file", "t.json"])
        with pytest.raises(SystemExit,
                           match="kill_worker requires --workers"):
            serve_main(base + ["--scenario", "kill_worker"])
        with pytest.raises(SystemExit,
                           match="--scenario slow_replica requires "
                                 "--arrivals"):
            serve_main(base + ["--scenario", "slow_replica"])

    def test_malformed_trace_file_fails_fast(self, tmp_path):
        """A broken trace is a one-line SystemExit naming the file — after
        the models are built (the load sits on the serving path), but
        before any query is offered."""
        bad = os.path.join(tmp_path, "bad.json")
        with open(bad, "w") as handle:
            handle.write("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            serve_main(["--tables", "users", "--rows", "300",
                        "--num-queries", "4", "--epochs", "1",
                        "--samples", "40", "--seed", "5",
                        "--arrivals", "trace", "--trace-file", bad])
        missing = os.path.join(tmp_path, "nowhere.json")
        with pytest.raises(SystemExit, match="nowhere.json"):
            serve_main(["--tables", "users", "--rows", "300",
                        "--num-queries", "4", "--epochs", "1",
                        "--samples", "40", "--seed", "5",
                        "--arrivals", "trace", "--trace-file", missing])

    def test_generate_save_trace_then_replay_with_chaos(self, tmp_path,
                                                        capsys):
        """Generate Poisson arrivals, save the trace, then replay it with a
        slow_replica scenario: same estimates both runs, drift 0 versus the
        sequential baseline, chaos event reported."""
        trace_path = os.path.join(tmp_path, "arrivals.json")
        generate_path = os.path.join(tmp_path, "generate.json")
        replay_path = os.path.join(tmp_path, "replay.json")
        base = ["--tables", "users", "--rows", "300", "--num-queries", "6",
                "--epochs", "1", "--samples", "40", "--batch-size", "4",
                "--seed", "5"]
        exit_code = serve_main(base + [
            "--arrivals", "poisson", "--offered-qps", "200",
            "--duration-s", "0.2", "--save-trace", trace_path,
            "--json", generate_path,
        ])
        assert exit_code == 0
        assert "Arrival trace written" in capsys.readouterr().out
        with open(generate_path) as handle:
            generated = json.load(handle)
        open_loop = generated["open_loop"]
        assert open_loop["submitted"] + open_loop["shed"] >= 1
        assert open_loop["completed"] == open_loop["submitted"]
        assert open_loop["shed"] == 0
        assert open_loop["events"] == []

        replay_code = serve_main(base + [
            "--arrivals", "trace", "--trace-file", trace_path,
            "--scenario", "slow_replica", "--compare-sequential",
            "--json", replay_path,
        ])
        assert replay_code == 0
        output = capsys.readouterr().out
        assert "Chaos scenario armed: slow_replica" in output
        with open(replay_path) as handle:
            replay = json.load(handle)
        # Chaos and pacing never move a completed estimate: the replay
        # matches both the paced generate run and the sequential baseline.
        assert replay["estimates"] == generated["estimates"]
        assert replay["max_estimate_drift"] <= 1e-9
        assert replay["open_loop"]["submitted"] == open_loop["submitted"]
        assert any("slow_replica" in event
                   for event in replay["open_loop"]["events"])

    def test_kill_worker_drill_end_to_end(self, tmp_path, capsys):
        report_path = os.path.join(tmp_path, "drill.json")
        exit_code = serve_main([
            "--tables", "users", "--rows", "300", "--num-queries", "12",
            "--epochs", "1", "--samples", "40", "--batch-size", "4",
            "--seed", "5", "--workers", "2", "--scenario", "kill_worker",
            "--json", report_path,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "kill_worker drill" in output
        assert "degraded, not collapsed" in output
        with open(report_path) as handle:
            drill = json.load(handle)["kill_worker_drill"]
        assert drill["typed_error"]
        assert drill["error_type"] == "WorkerError"
        assert drill["error_exit_code"] == -9
        # Submission keeps going after the kill (open loop), but a filled
        # micro-batch may surface the typed error mid-submit — anywhere
        # from the kill point to the full workload is a pass.
        assert drill["kill_after"] == 6
        assert 6 <= drill["submitted"] <= 12
