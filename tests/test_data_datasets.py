"""Tests for the synthetic dataset generators, joins, CSV IO and data shifts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    ColumnSpec,
    JoinSampler,
    PartitionedIngest,
    Table,
    hash_join,
    make_census,
    make_conviva_a,
    make_conviva_b,
    make_correlated_table,
    make_dmv,
    make_independent_table,
    partition_by_column,
    read_csv,
    write_csv,
)


class TestColumnSpec:
    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            ColumnSpec("x", 1)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ColumnSpec("x", 5, kind="weird")

    def test_invalid_correlation(self):
        with pytest.raises(ValueError):
            ColumnSpec("x", 5, correlation=1.5)


class TestGenerators:
    def test_dmv_shape_and_schema(self):
        table = make_dmv(num_rows=2000)
        assert table.num_rows == 2000
        assert table.num_columns == 11
        assert "valid_date" in table.column_names
        assert table.column("record_type").domain_size <= 4

    def test_conviva_a_shape(self):
        table = make_conviva_a(num_rows=1500)
        assert table.num_columns == 15
        assert table.num_rows == 1500

    def test_conviva_b_shape(self):
        table = make_conviva_b(num_rows=300, num_columns=40)
        assert table.num_columns == 40
        assert table.num_rows == 300

    def test_census_shape(self):
        table = make_census(num_rows=500)
        assert table.num_columns == 11

    def test_determinism(self):
        first = make_dmv(num_rows=500, seed=7)
        second = make_dmv(num_rows=500, seed=7)
        np.testing.assert_array_equal(first.encoded(), second.encoded())

    def test_different_seeds_differ(self):
        first = make_dmv(num_rows=500, seed=1)
        second = make_dmv(num_rows=500, seed=2)
        assert not np.array_equal(first.encoded(), second.encoded())

    def test_generated_values_are_skewed(self):
        table = make_dmv(num_rows=5000)
        marginal = table.column("fuel_type").marginal()
        # Zipf-like skew: the most common value dominates the least common.
        assert marginal.max() > 10 * marginal.min()

    def test_correlated_table_has_dependent_columns(self):
        specs = [ColumnSpec("a", 10, correlation=0.95),
                 ColumnSpec("b", 10, correlation=0.95)]
        correlated = make_correlated_table(specs, 4000, seed=0)
        independent = make_independent_table(specs, 4000, seed=0)

        def mutual_information(table: Table) -> float:
            codes = table.encoded()
            joint = np.zeros((10, 10))
            np.add.at(joint, (codes[:, 0], codes[:, 1]), 1.0)
            joint /= joint.sum()
            pa = joint.sum(axis=1, keepdims=True)
            pb = joint.sum(axis=0, keepdims=True)
            nonzero = joint > 0
            return float((joint[nonzero] * np.log(joint[nonzero]
                                                  / (pa @ pb)[nonzero])).sum())

        assert mutual_information(correlated) > 5 * max(mutual_information(independent), 1e-6)

    def test_invalid_row_count(self):
        with pytest.raises(ValueError):
            make_correlated_table([ColumnSpec("a", 4)], 0)


class TestCsvIO:
    def test_roundtrip(self, tmp_path, tiny_table):
        path = tmp_path / "tiny.csv"
        write_csv(tiny_table, path)
        loaded = read_csv(path, name="tiny")
        assert loaded.num_rows == tiny_table.num_rows
        assert loaded.column_names == tiny_table.column_names
        np.testing.assert_array_equal(loaded.encoded(), tiny_table.encoded())

    def test_column_subset_and_max_rows(self, tmp_path, tiny_table):
        path = tmp_path / "tiny.csv"
        write_csv(tiny_table, path)
        loaded = read_csv(path, columns=["stars", "city"], max_rows=100)
        assert loaded.column_names == ["stars", "city"]
        assert loaded.num_rows == 100

    def test_missing_column_raises(self, tmp_path, tiny_table):
        path = tmp_path / "tiny.csv"
        write_csv(tiny_table, path)
        with pytest.raises(KeyError):
            read_csv(path, columns=["nope"])

    def test_numeric_coercion(self, tmp_path):
        path = tmp_path / "numbers.csv"
        path.write_text("a,b\n1,x\n2,y\n")
        loaded = read_csv(path)
        assert loaded.column("a").is_numeric
        assert not loaded.column("b").is_numeric


class TestJoins:
    @pytest.fixture()
    def orders_and_customers(self):
        customers = Table.from_dict({
            "customer_id": [1, 2, 3],
            "segment": ["gold", "silver", "gold"],
        }, name="customers")
        orders = Table.from_dict({
            "order_id": [10, 11, 12, 13],
            "customer_id": [1, 1, 2, 9],
            "amount": [100, 150, 80, 10],
        }, name="orders")
        return orders, customers

    def test_hash_join_row_count_and_schema(self, orders_and_customers):
        orders, customers = orders_and_customers
        joined = hash_join(orders, customers, "customer_id", "customer_id")
        assert joined.num_rows == 3  # order 13 has no matching customer
        assert "segment" in joined.column_names

    def test_hash_join_empty_result_raises(self):
        left = Table.from_dict({"k": [1], "v": [2]})
        right = Table.from_dict({"k": [9], "w": [3]})
        with pytest.raises(ValueError):
            hash_join(left, right, "k", "k")

    def test_join_sampler_produces_valid_tuples(self, orders_and_customers):
        orders, customers = orders_and_customers
        sampler = JoinSampler(orders, customers, "customer_id", "customer_id", seed=3)
        sample = sampler.sample_table(30)
        assert sample.num_rows == 30
        assert set(sample.column("customer_id").domain) <= {1, 2}

    def test_join_sampler_no_matches_raises(self):
        left = Table.from_dict({"k": [1], "v": [2]})
        right = Table.from_dict({"k": [9], "w": [3]})
        with pytest.raises(ValueError):
            JoinSampler(left, right, "k", "k")


class TestPartitionedIngest:
    def test_partition_sizes_cover_all_rows(self, tiny_table):
        partitions = partition_by_column(tiny_table, "year", 5)
        assert sum(part.num_rows for part in partitions) == tiny_table.num_rows

    def test_partitions_ordered_by_column(self, tiny_table):
        partitions = partition_by_column(tiny_table, "year", 4)
        maxima = [part.column("year").values.max() for part in partitions[:-1]]
        minima = [part.column("year").values.min() for part in partitions[1:]]
        assert all(low <= high for low, high in zip(maxima, minima))

    def test_ingest_protocol(self, tiny_table):
        ingest = PartitionedIngest(tiny_table, "year", 3)
        with pytest.raises(RuntimeError):
            _ = ingest.visible
        sizes = []
        while ingest.remaining():
            visible = ingest.ingest_next()
            sizes.append(visible.num_rows)
        assert sizes[-1] == tiny_table.num_rows
        assert sizes == sorted(sizes)
        with pytest.raises(RuntimeError):
            ingest.ingest_next()

    def test_invalid_partition_count(self, tiny_table):
        with pytest.raises(ValueError):
            partition_by_column(tiny_table, "year", 0)
