"""Admission control: bounded replica-group queues, block vs shed overflow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NaruConfig
from repro.data import make_users
from repro.query import WorkloadGenerator
from repro.serve import (
    AdmissionError,
    EstimationEngine,
    FleetRouter,
    ModelRegistry,
    ReplicaGroup,
)

_CONFIG = NaruConfig(epochs=2, hidden_sizes=(16, 16), batch_size=128,
                     progressive_samples=50, seed=0)


@pytest.fixture(scope="module")
def users():
    return make_users(num_users=100, seed=4)


@pytest.fixture(scope="module")
def registry(users):
    fleet = ModelRegistry(default_config=_CONFIG)
    fleet.register_table(users, replicas=2)
    fleet.fit_all()
    return fleet


@pytest.fixture(scope="module")
def workload(users):
    generator = WorkloadGenerator(users, min_filters=1, max_filters=3, seed=9)
    return [query.qualified("users") for query in generator.generate(10)]


class TestReplicaGroup:
    def test_validation(self, registry):
        estimator = registry.estimator("users")
        engine = EstimationEngine(estimator, batch_size=4, num_samples=50)
        with pytest.raises(ValueError, match="at least one engine"):
            ReplicaGroup("users", [])
        with pytest.raises(ValueError, match="max_pending"):
            ReplicaGroup("users", [engine], max_pending=0)
        with pytest.raises(ValueError, match="overflow"):
            ReplicaGroup("users", [engine], overflow="drop")

    def test_hash_assignment_is_stable_and_spread(self, registry):
        estimator = registry.estimator("users")
        engines = [EstimationEngine(estimator, batch_size=4, num_samples=50)
                   for _ in range(3)]
        group = ReplicaGroup("users", engines)
        assignments = [group.replica_of(index) for index in range(64)]
        assert assignments == [group.replica_of(index) for index in range(64)]
        assert set(assignments) == {0, 1, 2}  # every replica takes traffic
        # The salt matters: another route spreads the same indices differently.
        other = ReplicaGroup("sessions", engines)
        assert assignments != [other.replica_of(index) for index in range(64)]


class TestShedPolicy:
    def test_submit_raises_typed_error_without_consuming_index(self, registry,
                                                               workload):
        router = FleetRouter(registry, batch_size=16, num_samples=50, seed=1,
                             max_pending=2, overflow="shed")
        assert router.submit(workload[0]) == "users"
        assert router.submit(workload[1]) == "users"
        with pytest.raises(AdmissionError) as excinfo:
            router.submit(workload[2])
        assert excinfo.value.route == "users"
        assert excinfo.value.max_pending == 2
        assert excinfo.value.query is workload[2]
        # The shed submission consumed no global index: the next admitted
        # query lands at index 2.
        router.flush()
        report = router.report()
        assert [result.index for result in report.results] == [0, 1]
        assert report.stats.shed == 1
        assert report.stats.routes["users"]["shed"] == 1

    def test_run_counts_sheds_and_serves_the_rest(self, registry, workload):
        router = FleetRouter(registry, batch_size=16, num_samples=50, seed=1,
                             max_pending=3, overflow="shed")
        report = router.run(workload)
        assert report.stats.shed == len(workload) - 3
        assert report.stats.num_queries == 3
        # Shed queries leave no gaps: the served ones keep indices 0..2.
        assert [result.index for result in report.results] == [0, 1, 2]
        # A new run scope resets the shed tally.
        assert router.run(workload[:2]).stats.shed == 0

    def test_dispatch_reopens_admission(self, registry, workload):
        # max_pending == batch_size x replicas: every fill triggers a
        # dispatch before the bound is ever exceeded, so nothing sheds.
        router = FleetRouter(registry, batch_size=2, num_samples=50, seed=1,
                             max_pending=4, overflow="shed")
        report = router.run(workload)
        assert report.stats.shed == 0
        assert report.stats.num_queries == len(workload)


class TestBlockPolicy:
    def test_bounds_pending_without_refusing_or_drifting(self, registry,
                                                         workload):
        unbounded = FleetRouter(registry, batch_size=16, num_samples=50,
                                seed=1).run(workload)
        router = FleetRouter(registry, batch_size=16, num_samples=50, seed=1,
                             max_pending=3, overflow="block")
        peak = 0
        for query in workload:
            router.submit(query)
            peak = max(peak, sum(group.pending
                                 for group in router._groups.values()))
        router.flush()
        report = router.report()
        assert peak <= 3
        assert report.stats.shed == 0
        assert report.stats.num_queries == len(workload)
        # Backpressure only moves micro-batch boundaries; estimates hold.
        np.testing.assert_allclose(report.selectivities,
                                   unbounded.selectivities,
                                   rtol=0.0, atol=1e-12)

    def test_block_is_the_default_policy(self, registry):
        router = FleetRouter(registry, batch_size=4, max_pending=2)
        assert router.overflow == "block"


class TestRouterValidation:
    def test_bad_knobs_rejected(self, registry):
        with pytest.raises(ValueError, match="max_pending"):
            FleetRouter(registry, max_pending=0)
        with pytest.raises(ValueError, match="overflow"):
            FleetRouter(registry, overflow="spill")

    def test_inert_shed_configuration_rejected(self, registry):
        # shed without a bound could never shed anything — refuse it rather
        # than hand out a router that silently provides no overload
        # protection (the CLI refuses the same combination).
        with pytest.raises(ValueError, match="requires max_pending"):
            FleetRouter(registry, overflow="shed")
        estimator = registry.estimator("users")
        engine = EstimationEngine(estimator, batch_size=4, num_samples=50)
        with pytest.raises(ValueError, match="requires max_pending"):
            ReplicaGroup("users", [engine], overflow="shed")

    def test_registry_rejects_bad_replicas(self, users):
        fleet = ModelRegistry(default_config=_CONFIG)
        with pytest.raises(ValueError, match="replicas"):
            fleet.register_table(users, replicas=0)
        fleet.register_table(users, replicas=2)
        assert fleet.replicas("users") == 2
        assert fleet.total_replicas == 2
        with pytest.raises(ValueError, match="replicas"):
            fleet.set_replicas("users", -1)
        with pytest.raises(KeyError):
            fleet.set_replicas("nope", 2)
        fleet.set_replicas("users", 3)
        assert fleet.replicas("users") == 3
        assert fleet.size_report()["users"]["replicas"] == 3
