"""Tests for the oracle models and the querying schemes of §5.

The key statistical properties verified:

* enumeration over the oracle model reproduces exact selectivities,
* progressive sampling is (empirically) unbiased and converges to the truth
  as the number of sample paths grows,
* progressive sampling beats uniform region sampling on skewed data — the
  motivation for Algorithm 1.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NoisyOracleModel,
    OracleModel,
    ProgressiveSampler,
    UniformRegionSampler,
    enumerate_region,
)
from repro.data import ColumnSpec, make_correlated_table
from repro.query import (OODWorkloadGenerator, Query, WorkloadGenerator,
                         true_selectivity)


@pytest.fixture(scope="module")
def skewed_table():
    specs = [
        ColumnSpec("a", 12, "ordinal", skew=1.6),
        ColumnSpec("b", 8, "categorical", skew=1.4),
        ColumnSpec("c", 15, "ordinal", skew=1.5),
        ColumnSpec("d", 6, "categorical", skew=1.3),
    ]
    return make_correlated_table(specs, num_rows=1200, seed=21, name="skewed")


@pytest.fixture(scope="module")
def oracle(skewed_table):
    return OracleModel(skewed_table)


@pytest.fixture(scope="module")
def workload(skewed_table):
    generator = WorkloadGenerator(skewed_table, min_filters=2, max_filters=4, seed=5)
    return generator.generate(25)


class TestOracleModel:
    def test_conditionals_are_distributions(self, skewed_table, oracle):
        codes = skewed_table.encoded()[:10]
        for column in range(skewed_table.num_columns):
            probs = oracle.conditional_probs(column, codes)
            np.testing.assert_allclose(probs.sum(axis=1), np.ones(10), atol=1e-9)

    def test_first_column_conditional_is_marginal(self, skewed_table, oracle):
        probs = oracle.conditional_probs(0, skewed_table.encoded()[:3])
        np.testing.assert_allclose(probs[0], skewed_table.columns[0].marginal())

    def test_chain_rule_recovers_joint(self, skewed_table, oracle):
        """Product of oracle conditionals equals the empirical joint probability."""
        codes, counts = np.unique(skewed_table.encoded(), axis=0, return_counts=True)
        subset = codes[:20]
        product = np.ones(20)
        for column in range(skewed_table.num_columns):
            probs = oracle.conditional_probs(column, subset)
            product *= probs[np.arange(20), subset[:, column]]
        expected = counts[:20] / skewed_table.num_rows
        np.testing.assert_allclose(product, expected, rtol=1e-9)

    def test_log_prob_of_present_and_absent_tuples(self, skewed_table, oracle):
        present = skewed_table.encoded()[:1]
        assert np.isfinite(oracle.log_prob(present))[0]
        absent = present.copy()
        # Construct a tuple guaranteed absent by using an impossible combination
        # only if it does not occur; otherwise fall back to checking finiteness.
        absent[0, 0] = (absent[0, 0] + 1) % skewed_table.domain_sizes[0]
        log_prob = oracle.log_prob(absent)[0]
        assert log_prob <= 0.0

    def test_entropy_bits_positive(self, oracle):
        assert oracle.entropy_bits() > 0

    def test_invalid_order_rejected(self, skewed_table):
        with pytest.raises(ValueError):
            OracleModel(skewed_table, order=[0, 0, 1, 2])


class TestNoisyOracle:
    def test_noise_bounds_validated(self, skewed_table):
        with pytest.raises(ValueError):
            NoisyOracleModel(skewed_table, noise=1.5)

    def test_zero_noise_matches_oracle(self, skewed_table, oracle):
        noisy = NoisyOracleModel(skewed_table, noise=0.0)
        codes = skewed_table.encoded()[:5]
        for column in range(skewed_table.num_columns):
            np.testing.assert_allclose(noisy.conditional_probs(column, codes),
                                       oracle.conditional_probs(column, codes))

    def test_entropy_gap_grows_with_noise(self, skewed_table):
        gaps = [NoisyOracleModel(skewed_table, noise).entropy_gap_bits(sample_rows=None)
                for noise in (0.0, 0.3, 0.8)]
        assert gaps[0] == pytest.approx(0.0, abs=1e-6)
        assert gaps[0] < gaps[1] < gaps[2]


class TestEnumeration:
    def test_enumeration_is_exact_on_oracle(self, skewed_table, oracle, workload):
        for query in workload[:10]:
            estimate = enumerate_region(oracle, query.column_masks(skewed_table))
            truth = true_selectivity(skewed_table, query)
            assert estimate == pytest.approx(truth, abs=1e-9)

    def test_enumeration_respects_point_cap(self, skewed_table, oracle):
        with pytest.raises(ValueError):
            enumerate_region(oracle, [None] * skewed_table.num_columns, max_points=10)

    def test_enumeration_of_empty_region(self, skewed_table, oracle):
        masks = [None] * skewed_table.num_columns
        masks[0] = np.zeros(skewed_table.domain_sizes[0], dtype=bool)
        assert enumerate_region(oracle, masks) == 0.0


class TestProgressiveSampling:
    def test_accuracy_against_truth(self, skewed_table, oracle, workload):
        sampler = ProgressiveSampler(oracle, seed=0)
        for query in workload:
            truth = true_selectivity(skewed_table, query)
            estimate = sampler.estimate_selectivity(query.column_masks(skewed_table),
                                                    num_samples=2000)
            assert estimate == pytest.approx(truth, abs=max(0.02, truth * 0.35))

    def test_empty_region_returns_zero(self, skewed_table, oracle):
        masks = [None] * skewed_table.num_columns
        masks[1] = np.zeros(skewed_table.domain_sizes[1], dtype=bool)
        sampler = ProgressiveSampler(oracle, seed=0)
        assert sampler.estimate_selectivity(masks, num_samples=100) == 0.0

    def test_full_wildcard_query_estimates_one(self, skewed_table, oracle):
        sampler = ProgressiveSampler(oracle, seed=0)
        estimate = sampler.estimate_selectivity([None] * skewed_table.num_columns,
                                                num_samples=200)
        assert estimate == pytest.approx(1.0, abs=1e-6)

    def test_variance_decreases_with_more_samples(self, skewed_table, oracle, workload):
        query = workload[0]
        masks = query.column_masks(skewed_table)
        truth = true_selectivity(skewed_table, query)

        def spread(num_samples: int) -> float:
            estimates = [ProgressiveSampler(oracle, seed=seed).estimate_selectivity(
                masks, num_samples=num_samples) for seed in range(8)]
            return float(np.std(estimates))

        assert spread(1000) <= spread(20) + 1e-9

    def test_unbiasedness_empirical(self, skewed_table, oracle, workload):
        """Mean of many low-sample estimates approaches the exact selectivity."""
        query = workload[1]
        masks = query.column_masks(skewed_table)
        truth = true_selectivity(skewed_table, query)
        estimates = [ProgressiveSampler(oracle, seed=seed).estimate_selectivity(
            masks, num_samples=50) for seed in range(40)]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.3, abs=0.01)

    def test_mask_count_validation(self, skewed_table, oracle):
        sampler = ProgressiveSampler(oracle, seed=0)
        with pytest.raises(ValueError):
            sampler.estimate_selectivity([None], num_samples=10)

    def test_progressive_beats_uniform_on_skewed_data(self, skewed_table, oracle):
        """The motivating comparison of §5.1 (Figure 3)."""
        generator = WorkloadGenerator(skewed_table, min_filters=3, max_filters=4, seed=77)
        queries = generator.generate_labeled(15)
        progressive = ProgressiveSampler(oracle, seed=1)
        uniform = UniformRegionSampler(oracle, seed=1)

        def total_error(sampler) -> float:
            total = 0.0
            for item in queries:
                estimate = sampler.estimate_selectivity(
                    item.query.column_masks(skewed_table), num_samples=200)
                total += abs(estimate - item.selectivity)
            return total

        assert total_error(progressive) <= total_error(uniform)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_estimates_always_in_unit_interval(self, skewed_table, oracle, seed):
        generator = WorkloadGenerator(skewed_table, min_filters=1, max_filters=4, seed=seed)
        query = generator.generate_query()
        sampler = ProgressiveSampler(oracle, seed=seed)
        estimate = sampler.estimate_selectivity(query.column_masks(skewed_table),
                                                num_samples=64)
        assert 0.0 <= estimate <= 1.0 + 1e-9


class TestUniformRegionSampler:
    def test_empty_region(self, skewed_table, oracle):
        masks = [None] * skewed_table.num_columns
        masks[2] = np.zeros(skewed_table.domain_sizes[2], dtype=bool)
        sampler = UniformRegionSampler(oracle, seed=0)
        assert sampler.estimate_selectivity(masks, num_samples=50) == 0.0

    def test_reasonable_on_tiny_region(self, skewed_table, oracle):
        # Single-point region: uniform sampling must be exact.
        row = skewed_table.encoded()[0]
        masks = []
        for column, code in enumerate(row):
            mask = np.zeros(skewed_table.domain_sizes[column], dtype=bool)
            mask[code] = True
            masks.append(mask)
        sampler = UniformRegionSampler(oracle, seed=0)
        query = Query([])
        truth = np.exp(oracle.log_prob(row[None, :]))[0]
        assert sampler.estimate_selectivity(masks, num_samples=10) == pytest.approx(truth)


def _reference_estimate(model, masks, num_samples, seed):
    """The pre-optimisation Algorithm 1 loop, kept verbatim as an oracle.

    Processes every column (no wildcard skipping) and keeps zero-weight rows
    sampling from a uniform fallback (no dead-row skipping); the optimised
    sampler must reproduce its estimates.
    """
    rng = np.random.default_rng(seed)
    domain_sizes = model.domain_sizes()
    codes = np.zeros((num_samples, len(domain_sizes)), dtype=np.int64)
    weights = np.ones(num_samples)
    alive = np.ones(num_samples, dtype=bool)
    for column in model.order:
        mask = masks[column]
        if not alive.any():
            break
        probs = model.conditional_probs(column, codes)
        if mask is not None:
            probs = probs * mask[None, :]
        mass = probs.sum(axis=1)
        weights *= np.where(alive, mass, 0.0)
        alive &= ~(mass <= 0.0)
        safe_mass = np.where(mass > 0.0, mass, 1.0)
        normalised = probs / safe_mass[:, None]
        fallback = np.full(probs.shape, 1.0 / probs.shape[1])
        cumulative = np.cumsum(np.where(alive[:, None], normalised, fallback), axis=1)
        cumulative[:, -1] = 1.0
        draws = rng.random((probs.shape[0], 1))
        codes[:, column] = np.argmax(cumulative >= draws, axis=1)
    return float(weights.mean())


class TestBatchedProgressiveSampling:
    def test_matches_reference_implementation(self, skewed_table, oracle, workload):
        """Dead-row and wildcard skipping leave the estimates unchanged."""
        for seed, query in enumerate(workload[:12]):
            masks = query.column_masks(skewed_table)
            reference = _reference_estimate(oracle, masks, 400, seed=seed)
            optimised = ProgressiveSampler(oracle, seed=seed).estimate_selectivity(
                masks, num_samples=400)
            assert optimised == pytest.approx(reference, rel=1e-9, abs=1e-12)

    def test_dead_rows_skipped_without_changing_estimates(self, skewed_table, oracle):
        """Regression for the dead-row waste fix: zero-mass paths used to keep
        drawing uniform-fallback samples every remaining column."""
        generator = OODWorkloadGenerator(skewed_table, min_filters=3,
                                         max_filters=4, seed=13)
        for seed, query in enumerate(generator.generate(10)):
            masks = query.column_masks(skewed_table)
            reference = _reference_estimate(oracle, masks, 300, seed=seed)
            optimised = ProgressiveSampler(oracle, seed=seed).estimate_selectivity(
                masks, num_samples=300)
            assert optimised == pytest.approx(reference, rel=1e-9, abs=1e-12)

    def test_wildcard_skipping_equivalence(self, skewed_table, oracle):
        """Queries constraining only early columns skip the trailing wildcards
        yet estimate the same mass as the full per-column walk."""
        row = skewed_table.encoded()[0]
        masks = [None] * skewed_table.num_columns
        masks[0] = np.zeros(skewed_table.domain_sizes[0], dtype=bool)
        masks[0][row[0]] = True
        reference = _reference_estimate(oracle, masks, 500, seed=5)
        optimised = ProgressiveSampler(oracle, seed=5).estimate_selectivity(
            masks, num_samples=500)
        assert optimised == pytest.approx(reference, rel=1e-9, abs=1e-12)

    def test_batch_matches_individual_queries(self, skewed_table, oracle, workload):
        masks_batch = [query.column_masks(skewed_table) for query in workload[:6]]
        rngs = [np.random.default_rng(1000 + index) for index in range(6)]
        batched = ProgressiveSampler(oracle, seed=0).estimate_selectivity_batch(
            masks_batch, num_samples=200, rngs=rngs)
        for index, masks in enumerate(masks_batch):
            alone = ProgressiveSampler(oracle, seed=0).estimate_selectivity_batch(
                [masks], num_samples=200,
                rngs=[np.random.default_rng(1000 + index)])[0]
            assert batched[index] == pytest.approx(alone, rel=1e-9, abs=1e-12)

    def test_empty_batch(self, oracle):
        estimates = ProgressiveSampler(oracle, seed=0).estimate_selectivity_batch(
            [], num_samples=50)
        assert estimates.shape == (0,)

    def test_rng_count_validation(self, skewed_table, oracle):
        masks = [None] * skewed_table.num_columns
        with pytest.raises(ValueError):
            ProgressiveSampler(oracle, seed=0).estimate_selectivity_batch(
                [masks, masks], num_samples=10,
                rngs=[np.random.default_rng(0)])

    def test_mask_count_validation_in_batch(self, skewed_table, oracle):
        with pytest.raises(ValueError):
            ProgressiveSampler(oracle, seed=0).estimate_selectivity_batch(
                [[None]], num_samples=10)


class TestPrefixDeduplication:
    """Prefix-deduplicated sampling must be *bit-identical* to the unfused
    per-row walk: the model is row-exact, the random draws are consumed
    before liveness checks, and the representative-space truncate/weigh/
    sample arithmetic is row-pure — so turning dedup on changes performance
    counters, never a single output bit."""

    def _estimates(self, model, skewed_table, workload, dedup):
        masks_batch = [query.column_masks(skewed_table) for query in workload[:8]]
        rngs = [np.random.default_rng(500 + index) for index in range(8)]
        sampler = ProgressiveSampler(model, seed=0, dedup=dedup)
        estimates = sampler.estimate_selectivity_batch(
            masks_batch, num_samples=250, rngs=rngs)
        return sampler, estimates

    def test_dedup_is_bit_identical_on_oracle(self, skewed_table, oracle,
                                              workload):
        _, fused = self._estimates(oracle, skewed_table, workload, dedup=True)
        _, plain = self._estimates(oracle, skewed_table, workload, dedup=False)
        assert np.array_equal(fused, plain)

    def test_dedup_is_bit_identical_on_made(self, skewed_table, workload):
        from repro.core import MADEModel
        model = MADEModel(skewed_table, hidden_sizes=(16, 16), seed=7)
        _, fused = self._estimates(model, skewed_table, workload, dedup=True)
        _, plain = self._estimates(model, skewed_table, workload, dedup=False)
        assert np.array_equal(fused, plain)

    def test_dedup_counters(self, skewed_table, oracle, workload):
        fused_sampler, _ = self._estimates(oracle, skewed_table, workload,
                                           dedup=True)
        plain_sampler, _ = self._estimates(oracle, skewed_table, workload,
                                           dedup=False)
        fused, plain = fused_sampler.stats, plain_sampler.stats
        # Same rows walk through the sampler either way; dedup only shrinks
        # what reaches the model.
        assert fused.rows_submitted == plain.rows_submitted
        assert plain.unique_rows == plain.rows_submitted
        assert 0 < fused.unique_rows < fused.rows_submitted
        assert fused.forward_calls == plain.forward_calls > 0
