"""Tests for predicates, queries, exact execution, workloads and metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Table
from repro.query import (
    ErrorSummary,
    OODWorkloadGenerator,
    Operator,
    Predicate,
    Query,
    WorkloadGenerator,
    bucketize,
    q_error,
    qualifying_rows,
    selectivity_bucket,
    summarize_errors,
    true_cardinality,
    true_selectivity,
)


@pytest.fixture()
def small_table() -> Table:
    return Table.from_dict({
        "city": ["SF", "SF", "Portland", "Austin", "Austin", "Austin"],
        "year": [2015, 2016, 2016, 2017, 2018, 2018],
        "stars": [3, 4, 5, 4, 2, 5],
    }, name="checkins")


class TestPredicateMasks:
    def test_equality(self, small_table):
        mask = Predicate("city", Operator.EQ, "SF").valid_codes(small_table.column("city"))
        assert mask.sum() == 1

    def test_equality_absent_value(self, small_table):
        mask = Predicate("city", Operator.EQ, "Tokyo").valid_codes(small_table.column("city"))
        assert mask.sum() == 0

    def test_not_equal(self, small_table):
        mask = Predicate("city", Operator.NEQ, "SF").valid_codes(small_table.column("city"))
        assert mask.sum() == small_table.column("city").domain_size - 1

    def test_range_operators(self, small_table):
        year = small_table.column("year")
        assert Predicate("year", Operator.LE, 2016).valid_codes(year).sum() == 2
        assert Predicate("year", Operator.LT, 2016).valid_codes(year).sum() == 1
        assert Predicate("year", Operator.GE, 2017).valid_codes(year).sum() == 2
        assert Predicate("year", Operator.GT, 2017).valid_codes(year).sum() == 1

    def test_range_with_absent_literal(self, small_table):
        year = small_table.column("year")
        # 2016.5 is not in the domain; <= must still select {2015, 2016}.
        assert Predicate("year", Operator.LE, 2016.5).valid_codes(year).sum() == 2

    def test_in_operator(self, small_table):
        mask = Predicate("city", Operator.IN, ["SF", "Austin", "Tokyo"]).valid_codes(
            small_table.column("city"))
        assert mask.sum() == 2

    def test_in_requires_iterable(self):
        with pytest.raises(ValueError):
            Predicate("city", Operator.IN, "SF")

    def test_between(self, small_table):
        mask = Predicate("year", Operator.BETWEEN, (2016, 2017)).valid_codes(
            small_table.column("year"))
        assert mask.sum() == 2

    def test_between_out_of_order_rejected(self):
        with pytest.raises(ValueError):
            Predicate("year", Operator.BETWEEN, (2018, 2016))

    def test_operator_accepts_string_form(self):
        predicate = Predicate("year", "<=", 2016)
        assert predicate.operator is Operator.LE


class TestQuery:
    def test_from_tuples_and_str(self, small_table):
        query = Query.from_tuples([("city", "=", "SF"), ("year", ">=", 2016)])
        assert query.num_filters == 2
        assert "city" in str(query)

    def test_column_masks_wildcards(self, small_table):
        query = Query.from_tuples([("year", ">=", 2017)])
        masks = query.column_masks(small_table)
        assert masks[small_table.column_index("city")] is None
        assert masks[small_table.column_index("year")] is not None

    def test_conjunction_on_same_column_intersects(self, small_table):
        query = Query.from_tuples([("year", ">=", 2016), ("year", "<=", 2017)])
        mask = query.column_masks(small_table)[small_table.column_index("year")]
        assert mask.sum() == 2

    def test_region_size(self, small_table):
        query = Query.from_tuples([("city", "=", "SF")])
        # 1 city value × 4 years × 4 star levels.
        assert query.region_size(small_table) == pytest.approx(16.0)

    def test_empty_query_region_is_full_joint(self, small_table):
        assert Query([]).region_size(small_table) == pytest.approx(
            np.prod(small_table.domain_sizes))


class TestExecutor:
    def test_true_cardinality(self, small_table):
        query = Query.from_tuples([("city", "=", "Austin"), ("stars", ">=", 4)])
        assert true_cardinality(small_table, query) == 2
        assert true_selectivity(small_table, query) == pytest.approx(2 / 6)

    def test_empty_query_selects_everything(self, small_table):
        assert true_selectivity(small_table, Query([])) == pytest.approx(1.0)

    def test_contradictory_query_selects_nothing(self, small_table):
        query = Query.from_tuples([("city", "=", "SF"), ("city", "=", "Austin")])
        assert true_cardinality(small_table, query) == 0

    def test_qualifying_rows_mask(self, small_table):
        rows = qualifying_rows(small_table, Query.from_tuples([("year", ">", 2017)]))
        assert rows.sum() == 2


class TestWorkloadGenerator:
    def test_filter_count_bounds(self, medium_table):
        generator = WorkloadGenerator(medium_table, min_filters=2, max_filters=5, seed=0)
        for query in generator.generate(50):
            assert 2 <= query.num_filters <= 5

    def test_small_domains_get_equality_only(self, medium_table):
        generator = WorkloadGenerator(medium_table, min_filters=3, max_filters=7, seed=1)
        for query in generator.generate(100):
            for predicate in query:
                if medium_table.column(predicate.column).domain_size < 10:
                    assert predicate.operator is Operator.EQ

    def test_literals_come_from_data(self, medium_table):
        generator = WorkloadGenerator(medium_table, min_filters=2, max_filters=4, seed=2)
        for query in generator.generate(50):
            for predicate in query:
                domain = medium_table.column(predicate.column).domain
                assert predicate.value in domain

    def test_in_distribution_queries_are_often_nonempty(self, medium_table):
        generator = WorkloadGenerator(medium_table, min_filters=2, max_filters=4, seed=3)
        labeled = generator.generate_labeled(40)
        nonempty = sum(1 for item in labeled if item.cardinality > 0)
        assert nonempty > len(labeled) * 0.5

    def test_ood_queries_are_mostly_empty(self, medium_table):
        generator = OODWorkloadGenerator(medium_table, min_filters=4, max_filters=7, seed=4)
        labeled = generator.generate_labeled(40)
        empty = sum(1 for item in labeled if item.cardinality == 0)
        assert empty > len(labeled) * 0.6

    def test_determinism(self, medium_table):
        first = WorkloadGenerator(medium_table, seed=9).generate(10)
        second = WorkloadGenerator(medium_table, seed=9).generate(10)
        assert [str(q) for q in first] == [str(q) for q in second]

    def test_invalid_bounds(self, medium_table):
        with pytest.raises(ValueError):
            WorkloadGenerator(medium_table, min_filters=0)

    def test_iterator_protocol(self, medium_table):
        generator = WorkloadGenerator(medium_table, seed=1)
        iterator = iter(generator)
        assert next(iterator).num_filters >= 1


class TestMetrics:
    def test_q_error_symmetric_and_floored(self):
        assert q_error(10, 100) == pytest.approx(10.0)
        assert q_error(100, 10) == pytest.approx(10.0)
        assert q_error(0, 0) == pytest.approx(1.0)
        assert q_error(0, 50) == pytest.approx(50.0)

    def test_q_error_never_below_one(self):
        assert q_error(5, 5) == pytest.approx(1.0)

    @given(st.floats(0, 1e6), st.floats(0, 1e6))
    @settings(max_examples=100, deadline=None)
    def test_q_error_property(self, estimate, actual):
        error = q_error(estimate, actual)
        assert error >= 1.0
        assert error == pytest.approx(q_error(actual, estimate))

    def test_selectivity_buckets(self):
        assert selectivity_bucket(0.5) == "high"
        assert selectivity_bucket(0.01) == "medium"
        assert selectivity_bucket(0.001) == "low"

    def test_summarize_errors_quantiles(self):
        summary = summarize_errors([1.0] * 99 + [100.0])
        assert summary.median == pytest.approx(1.0)
        assert summary.maximum == pytest.approx(100.0)
        assert summary.count == 100

    def test_summarize_empty(self):
        summary = summarize_errors([])
        assert summary.count == 0
        assert np.isnan(summary.median)

    def test_bucketize_groups_by_selectivity(self):
        errors = [2.0, 3.0, 4.0]
        selectivities = [0.5, 0.01, 0.0001]
        grouped = bucketize(errors, selectivities)
        assert grouped["high"].median == pytest.approx(2.0)
        assert grouped["medium"].median == pytest.approx(3.0)
        assert grouped["low"].median == pytest.approx(4.0)

    def test_bucketize_length_mismatch(self):
        with pytest.raises(ValueError):
            bucketize([1.0], [0.1, 0.2])

    def test_error_summary_as_dict(self):
        summary = ErrorSummary(count=1, median=1, p95=1, p99=1, maximum=1)
        assert set(summary.as_dict()) == {"count", "median", "p95", "p99", "max"}
