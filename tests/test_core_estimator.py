"""Integration tests for the public NaruEstimator API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NaruConfig, NaruEstimator
from repro.data import ColumnSpec, make_correlated_table
from repro.query import Query, WorkloadGenerator, q_error


class TestNaruEstimatorLifecycle:
    def test_estimating_before_fit_raises(self, tiny_table):
        estimator = NaruEstimator(tiny_table, NaruConfig(epochs=1, hidden_sizes=(8,)))
        with pytest.raises(RuntimeError):
            estimator.estimate_selectivity(Query.from_tuples([("city", "=", "city_0")]))

    def test_fit_returns_history(self, tiny_table):
        estimator = NaruEstimator(tiny_table, NaruConfig(epochs=2, hidden_sizes=(16,)))
        history = estimator.fit()
        assert history.num_epochs == 2

    def test_name_includes_sample_count(self, tiny_table):
        estimator = NaruEstimator(tiny_table,
                                  NaruConfig(epochs=0, progressive_samples=123))
        assert estimator.name == "Naru-123"

    def test_size_bytes_counts_parameters(self, tiny_table):
        estimator = NaruEstimator(tiny_table, NaruConfig(epochs=0, hidden_sizes=(32,)))
        assert estimator.size_bytes() == estimator.model.num_parameters() * 4

    def test_column_architecture_variant(self, tiny_table):
        config = NaruConfig(architecture="column", epochs=1, hidden_sizes=(16,),
                            progressive_samples=100)
        estimator = NaruEstimator(tiny_table, config)
        estimator.fit()
        query = Query.from_tuples([("year", ">=", int(tiny_table.column("year").domain[3]))])
        assert 0.0 <= estimator.estimate_selectivity(query) <= 1.0


class TestNaruEstimatorAccuracy:
    def test_selectivity_in_unit_interval(self, trained_naru, tiny_table):
        generator = WorkloadGenerator(tiny_table, min_filters=1, max_filters=4, seed=0)
        for query in generator.generate(20):
            assert 0.0 <= trained_naru.estimate_selectivity(query) <= 1.0

    def test_cardinality_scales_selectivity(self, trained_naru, tiny_table):
        query = Query.from_tuples([("city", "=", str(tiny_table.column("city").domain[0]))])
        selectivity = trained_naru.estimate_selectivity(query)
        assert trained_naru.estimate_cardinality(query) == pytest.approx(
            selectivity * tiny_table.num_rows)

    def test_accuracy_beats_random_guessing(self, trained_naru, tiny_table):
        generator = WorkloadGenerator(tiny_table, min_filters=2, max_filters=4, seed=9)
        errors = []
        for item in generator.generate_labeled(25):
            estimate = trained_naru.estimate_cardinality(item.query)
            errors.append(q_error(estimate, item.cardinality))
        assert np.median(errors) < 6.0

    def test_wildcard_query_estimates_full_table(self, trained_naru):
        assert trained_naru.estimate_selectivity(Query([])) == pytest.approx(1.0, abs=0.05)

    def test_methods_agree_on_small_regions(self, trained_naru, tiny_table):
        query = Query.from_tuples([
            ("city", "=", str(tiny_table.column("city").domain[0])),
            ("stars", "=", str(tiny_table.column("stars").domain[0])),
        ])
        enumerated = trained_naru.estimate_selectivity(query, method="enumerate")
        sampled = trained_naru.estimate_selectivity(query, method="progressive",
                                                    num_samples=4000)
        assert sampled == pytest.approx(enumerated, rel=0.3, abs=0.01)

    def test_unknown_method_rejected(self, trained_naru, tiny_table):
        query = Query.from_tuples([("city", "=", "city_0")])
        with pytest.raises(ValueError):
            trained_naru.estimate_selectivity(query, method="magic")

    def test_uniform_method_available_for_ablation(self, trained_naru, tiny_table):
        query = Query.from_tuples([("year", ">=", int(tiny_table.column("year").domain[2]))])
        estimate = trained_naru.estimate_selectivity(query, method="uniform",
                                                     num_samples=500)
        assert 0.0 <= estimate <= 1.0

    def test_point_likelihood(self, trained_naru, tiny_table):
        values = dict(zip(tiny_table.column_names, tiny_table.raw_row(0)))
        likelihood = trained_naru.point_likelihood(values)
        assert 0.0 < likelihood <= 1.0

    def test_point_likelihood_requires_all_columns(self, trained_naru, tiny_table):
        with pytest.raises(ValueError, match="missing"):
            trained_naru.point_likelihood({"city": tiny_table.raw_row(0)[0]})

    def test_point_likelihood_rejects_unknown_columns(self, trained_naru, tiny_table):
        # Unknown names must raise a clear ValueError *before* the encoding
        # loop can surface an opaque KeyError — even when every real column
        # is present alongside the bogus one.
        values = dict(zip(tiny_table.column_names, tiny_table.raw_row(0)))
        values["no_such_column"] = 1
        with pytest.raises(ValueError, match="no_such_column"):
            trained_naru.point_likelihood(values)
        # And the unknown-name diagnosis wins over the missing-name one.
        with pytest.raises(ValueError, match="not in table"):
            trained_naru.point_likelihood({"bogus": 1})

    def test_entropy_gap_reported(self, trained_naru):
        gap = trained_naru.entropy_gap_bits(sample_rows=500)
        assert gap >= 0.0


class TestNaruRefresh:
    def test_refresh_improves_fit_on_shifted_data(self):
        specs = [ColumnSpec("a", 10, skew=1.4), ColumnSpec("b", 15, "ordinal", skew=1.2),
                 ColumnSpec("c", 6, skew=1.3)]
        full = make_correlated_table(specs, num_rows=1500, seed=33)
        estimator = NaruEstimator(full, NaruConfig(epochs=0, hidden_sizes=(32, 32),
                                                   progressive_samples=200))
        # Train only on the first half of the rows, then refresh on the rest.
        codes = full.encoded()
        estimator.refresh(codes[:750], epochs=6)
        stale_gap = estimator.entropy_gap_bits(sample_rows=None)
        estimator.refresh(codes, epochs=4)
        refreshed_gap = estimator.entropy_gap_bits(sample_rows=None)
        assert refreshed_gap <= stale_gap + 0.5
