"""Unit and property tests for the autodiff engine (repro.nn.autograd).

Every differentiable operation is checked against numerical (finite
difference) gradients, plus broadcasting and graph-mechanics corner cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concatenate, no_grad


def numerical_gradient(function, value: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function."""
    gradient = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    flat_grad = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function(value)
        flat[index] = original - epsilon
        lower = function(value)
        flat[index] = original
        flat_grad[index] = (upper - lower) / (2 * epsilon)
    return gradient


def check_gradient(build_loss, shape, seed=0, atol=1e-5):
    """Compare autodiff and numerical gradients of a scalar loss."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    tensor = Tensor(data.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()

    def scalar(value: np.ndarray) -> float:
        return build_loss(Tensor(value)).item()

    expected = numerical_gradient(scalar, data.copy())
    np.testing.assert_allclose(tensor.grad, expected, atol=atol)


class TestElementwiseGradients:
    def test_add_mul(self):
        check_gradient(lambda t: ((t * 3.0 + 1.5) * t).sum(), (4, 3))

    def test_sub_div(self):
        check_gradient(lambda t: ((t - 2.0) / 4.0).sum(), (5,))

    def test_pow(self):
        check_gradient(lambda t: (t ** 3.0).sum(), (3, 2), seed=2)

    def test_relu(self):
        check_gradient(lambda t: (t.relu() * 2.0).sum(), (6, 4))

    def test_exp_log(self):
        check_gradient(lambda t: ((t.exp() + 1.0).log()).sum(), (4, 4))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum(), (7,))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum(), (3, 5))

    def test_neg(self):
        check_gradient(lambda t: (-t).sum(), (2, 2))


class TestMatrixAndShapeGradients:
    def test_matmul(self):
        rng = np.random.default_rng(0)
        other = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t @ Tensor(other)).sum(), (5, 3))

    def test_matmul_right_operand(self):
        rng = np.random.default_rng(1)
        left = rng.normal(size=(4, 3))
        check_gradient(lambda t: (Tensor(left) @ t).sum(), (3, 6))

    def test_transpose(self):
        check_gradient(lambda t: (t.T @ t).sum(), (4, 2))

    def test_reshape(self):
        check_gradient(lambda t: (t.reshape(6, 2) * 2.0).sum(), (3, 4))

    def test_getitem(self):
        check_gradient(lambda t: (t[1:3] * 3.0).sum(), (5, 2))

    def test_take_rows(self):
        indices = np.array([0, 2, 2, 1])
        check_gradient(lambda t: t.take_rows(indices).sum(), (3, 4))

    def test_gather(self):
        indices = np.array([1, 0, 2, 1])
        check_gradient(lambda t: t.gather(indices).sum(), (4, 3))

    def test_concatenate(self):
        rng = np.random.default_rng(3)
        other = rng.normal(size=(4, 2))
        check_gradient(
            lambda t: concatenate([t, Tensor(other)], axis=1).sum(), (4, 3))

    def test_masked_fill(self):
        mask = np.array([[True, False, False], [False, True, False]])
        check_gradient(lambda t: t.masked_fill(mask, 0.0).sum(), (2, 3))


class TestReductionsAndSoftmax:
    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2.0).sum(), (5, 3))

    def test_sum_keepdims(self):
        check_gradient(lambda t: (t - t.sum(axis=1, keepdims=True)).sum(), (4, 3))

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2.0).sum(), (3, 4))

    def test_log_softmax_gradient(self):
        check_gradient(lambda t: t.log_softmax(axis=-1).gather(np.array([0, 1, 2])).sum(),
                       (3, 4))

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        tensor = Tensor(rng.normal(size=(6, 9)) * 10)
        np.testing.assert_allclose(tensor.softmax(axis=-1).numpy().sum(axis=1),
                                   np.ones(6), atol=1e-12)

    def test_log_softmax_stability_with_large_logits(self):
        tensor = Tensor(np.array([[1e6, 1e6 - 1.0]]))
        result = tensor.log_softmax(axis=-1).numpy()
        assert np.all(np.isfinite(result))


class TestBroadcasting:
    def test_bias_broadcast(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(5, 3))
        check_gradient(lambda t: (Tensor(matrix) + t).sum(), (3,))

    def test_scalar_broadcast(self):
        check_gradient(lambda t: (t * 2.5 + 7.0).sum(), (1,))

    def test_column_broadcast(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(4, 3))
        check_gradient(lambda t: (Tensor(matrix) * t).sum(), (4, 1))


class TestGraphMechanics:
    def test_backward_requires_scalar_or_grad(self):
        tensor = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (tensor * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        tensor = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            tensor.backward()

    def test_grad_accumulates_across_backward_calls(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        (tensor * 2.0).sum().backward()
        (tensor * 2.0).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.full(3, 4.0))

    def test_zero_grad(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        (tensor * 2.0).sum().backward()
        tensor.zero_grad()
        assert tensor.grad is None

    def test_no_grad_context(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            result = (tensor * 2.0).sum()
        assert not result.requires_grad

    def test_detach(self):
        tensor = Tensor(np.ones(3), requires_grad=True)
        assert not tensor.detach().requires_grad

    def test_reused_node_gets_correct_gradient(self):
        tensor = Tensor(np.array([2.0]), requires_grad=True)
        result = tensor * tensor + tensor
        result.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.array([5.0]))

    def test_item_and_shape(self):
        tensor = Tensor(np.array([[3.5]]))
        assert tensor.item() == pytest.approx(3.5)
        assert tensor.shape == (1, 1)
        assert tensor.ndim == 2
        assert len(tensor) == 1


class TestPropertyBased:
    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_softmax_is_distribution(self, values):
        tensor = Tensor(np.array([values]))
        probs = tensor.softmax(axis=-1).numpy()
        assert probs.min() >= 0
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_matmul_shape(self, rows, cols):
        left = Tensor(np.ones((rows, 3)))
        right = Tensor(np.ones((3, cols)))
        assert (left @ right).shape == (rows, cols)

    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_sum_matches_numpy(self, values):
        array = np.array(values)
        assert Tensor(array).sum().item() == pytest.approx(array.sum(), rel=1e-9)
