"""Smoke tests keeping the runnable examples in sync with the API.

Examples are documentation that executes; these tests run the cheap ones at a
shrunken scale so an API change that breaks them fails tier-1 instead of
rotting silently.  The heavyweight examples are exercised end-to-end by the
``slow``-marked benchmarks and the docs-examples job instead.
"""

from __future__ import annotations

import importlib.util
import os
import re

import pytest

_EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _load_example(name: str):
    """Import one example file as a throwaway module."""
    path = os.path.join(_EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_streaming_slo_example_smoke(capsys):
    """The streaming/SLO example runs end to end at smoke scale and reports
    an honest zero-drift line (streaming ≡ batch)."""
    example = _load_example("streaming_slo")
    example.main(num_users=60, num_rows=240, epochs=1, num_queries=16,
                 samples=60, max_batch=6, burst_size=4)
    output = capsys.readouterr().out
    assert "p95 SLO" in output
    assert "Adaptive stream" in output
    assert "Steady-state stream" in output
    # The multi-producer backpressure demo served everything without shedding.
    assert re.search(r"Backpressure: 16 queries from 4 producers, 0 shed",
                     output)
    # Same tolerance as the invariance suite: differently shaped micro-batch
    # GEMMs may round the last bit differently, so demand "tiny", not "0".
    drift = float(re.search(r"drift: ([0-9.]+e[+-]\d+)", output).group(1))
    assert drift <= 1e-12


def test_multi_model_serving_example_importable():
    """The multi-model example must at least import against the current API
    (its full run is minutes-scale; the CLI and benches cover the behaviour)."""
    example = _load_example("multi_model_serving")
    assert callable(example.main)


@pytest.mark.slow
def test_multi_model_serving_example_runs():
    """Full end-to-end run of the multi-model example (slow-marked)."""
    _load_example("multi_model_serving").main()
