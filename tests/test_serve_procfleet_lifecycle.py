"""Lifecycle, failure and protocol tests for the cross-process fleet.

The invariance suite (``tests/test_serve_invariance.py``) proves the
ProcessFleet changes no *numbers*; this file proves it manages no-longer-
trivial *state* correctly: workers spawn and stop idempotently, a graceful
close drains pending micro-batches, a crashed worker surfaces as a typed
:class:`repro.serve.WorkerError` instead of a hang, and a constructor that
fails halfway — a broken registry, a spawn that dies — leaves no orphan
child processes behind.  The worker loop itself is additionally driven
in-process through a scripted fake pipe so its protocol branches (batch,
reset, report, stop, error, EOF) are exercised under coverage.
"""

from __future__ import annotations

import asyncio
import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.core import NaruConfig
from repro.data import make_users
from repro.query import Query
from repro.serve import (
    AsyncFleetClient,
    EstimationEngine,
    FleetRouter,
    ModelRegistry,
    ProcessFleet,
    RoutingError,
    StaleEpochError,
    WorkerError,
    export_relation,
    generate_mixed_workload,
    restore_estimator,
    run_fleet_sequential,
)
from repro.serve.procfleet import worker_main

_CONFIG = NaruConfig(epochs=1, hidden_sizes=(8, 8), batch_size=64,
                     progressive_samples=40, seed=0)
_SAMPLES = 40
_SEED = 3


def _no_fleet_children() -> bool:
    """True when no procfleet worker processes are alive under this parent."""
    return not [process for process in mp.active_children()
                if process.name.startswith("procfleet-worker")]


@pytest.fixture(scope="module")
def registry():
    """One small fitted relation — lifecycle tests don't need a big fleet."""
    fitted = ModelRegistry(default_config=_CONFIG)
    fitted.register_table(make_users(num_users=80, seed=11))
    fitted.fit_all()
    return fitted


@pytest.fixture(scope="module")
def workload(registry):
    return generate_mixed_workload(
        {name: registry.relation(name) for name in registry.names}, 10,
        min_filters=1, max_filters=2, seed=9)


def _fleet(registry, **overrides):
    options = dict(workers=2, replicas=2, batch_size=4,
                   num_samples=_SAMPLES, seed=_SEED)
    options.update(overrides)
    return ProcessFleet(registry, **options)


# --------------------------------------------------------------------- #
# Lifecycle
# --------------------------------------------------------------------- #
def test_close_is_idempotent_and_final(registry, workload):
    fleet = _fleet(registry)
    report = fleet.run(workload)
    assert report.stats.num_queries == len(workload)
    fleet.close()
    assert fleet.closed
    fleet.close()  # second close is a no-op, not an error
    with pytest.raises(RuntimeError, match="closed"):
        fleet.submit(workload[0])
    # The merged report survives close (accumulated parent-side).
    assert fleet.report().stats.num_queries == len(workload)
    assert _no_fleet_children()


def test_context_exit_drains_pending_batches(registry, workload):
    """Queries still sitting in partially filled micro-batches at __exit__
    are flushed, collected and reportable — nothing is dropped."""
    with _fleet(registry, batch_size=64) as fleet:   # never fills a batch
        for query in workload:
            fleet.submit(query)
        assert fleet.pending == len(workload)
    report = fleet.report()
    assert fleet.closed
    assert report.stats.num_queries == len(workload)
    assert [result.index for result in report.results] == \
        list(range(len(workload)))
    assert _no_fleet_children()


def test_flush_and_collect_drain_explicitly(registry, workload):
    with _fleet(registry, batch_size=64) as fleet:
        for query in workload:
            fleet.submit(query)
        fleet.flush()
        assert fleet.pending == 0
        fleet.collect()
        assert fleet.in_flight == 0
        report = fleet.report()
        assert report.stats.num_queries == len(workload)
        # Parent-side stamps: results queued before their batch shipped.
        assert all(result.e2e_ms >= result.queue_wait_ms >= 0.0
                   for result in report.results)
        workers = report.stats.workers
        assert set(workers) == {"0", "1"}
        assert sum(stats["num_queries"] for stats in workers.values()) \
            == len(workload)


def test_run_matches_sequential_and_reuses_scope(registry, workload):
    baseline = run_fleet_sequential(registry, workload, num_samples=_SAMPLES,
                                    seed=_SEED)
    with _fleet(registry) as fleet:
        first = fleet.run(workload)
        second = fleet.run(workload)  # fresh scope, same numbers
    np.testing.assert_allclose(first.selectivities, baseline.selectivities,
                               rtol=0.0, atol=1e-12)
    np.testing.assert_array_equal(second.selectivities, first.selectivities)


def test_spawn_start_method_serves_identically(registry, workload):
    """The fleet works under the 'spawn' start method too (fresh
    interpreters, everything crossing via pickle) and answers bit-identically
    to the default start method."""
    with _fleet(registry, workers=1) as forked:
        expected = forked.run(workload)
    with _fleet(registry, workers=1, start_method="spawn") as spawned:
        report = spawned.run(workload)
    np.testing.assert_array_equal(report.selectivities,
                                  expected.selectivities)
    assert _no_fleet_children()


def test_worker_logs_record_lifecycle(registry, workload, tmp_path):
    log_dir = str(tmp_path / "procfleet-logs")
    with _fleet(registry, log_dir=log_dir) as fleet:
        infos = fleet.workers
        fleet.run(workload)
    assert [info.worker_id for info in infos] == [0, 1]
    for info in infos:
        assert info.log_path == os.path.join(log_dir,
                                             f"worker-{info.worker_id}.log")
        with open(info.log_path, encoding="utf-8") as handle:
            content = handle.read()
        assert f"ready pid={info.pid}" in content
        assert "batch" in content
        assert "stopping (graceful drain complete)" in content


def test_tick_ships_overdue_partial_batches(registry, workload):
    """The parent enforces flush deadlines: an overdue partial batch ships
    flagged timeout_flush, a fresh one reports its remaining deadline."""
    fake_now = [100.0]
    with _fleet(registry, batch_size=64, flush_after_ms=50.0,
                clock=lambda: fake_now[0]) as fleet:
        fleet.submit(workload[0])
        deadline = fleet.tick()
        assert deadline == pytest.approx(100.0 + 0.05)  # not due yet
        assert fleet.pending == 1
        fake_now[0] += 0.2
        assert fleet.tick() is None                      # shipped, queue empty
        assert fleet.pending == 0
        fleet.collect()
        report = fleet.report()
        assert report.stats.timeout_flushes == 1
        assert "live" in repr(fleet)
    assert "closed" in repr(fleet)


# --------------------------------------------------------------------- #
# Failure semantics
# --------------------------------------------------------------------- #
@pytest.mark.timeout(60)
def test_killed_worker_raises_typed_error_not_hang(registry, workload):
    """SIGKILL mid-workload surfaces as WorkerError naming the worker —
    within recv_timeout_s, never as an indefinite hang — and close() still
    reaps every process."""
    fleet = _fleet(registry, recv_timeout_s=5.0)
    try:
        fleet.kill_worker(0)
        with pytest.raises(WorkerError) as caught:
            fleet.run(workload)
        assert caught.value.worker_id == 0
    finally:
        fleet.close()
    assert fleet.closed
    assert _no_fleet_children()


@pytest.mark.timeout(60)
def test_moved_epoch_refused_with_typed_error():
    """Workers hold npz-copied models no parent-side ingest can reach, so a
    fleet built at one epoch refuses to serve once the registry moves on —
    with a typed StaleEpochError naming both epochs, never by silently
    answering from the frozen models.  A freshly built fleet (which
    re-exports the current models) serves again."""
    own = ModelRegistry(default_config=_CONFIG)
    own.register_table(make_users(num_users=60, seed=12))
    own.fit_all()
    workload = generate_mixed_workload(
        {name: own.relation(name) for name in own.names}, 6,
        min_filters=1, max_filters=2, seed=9)
    with ProcessFleet(own, workers=1, batch_size=4, num_samples=_SAMPLES,
                      seed=_SEED) as fleet:
        assert fleet.run(workload).stats.num_queries == len(workload)
        own.ingest("users", make_users(num_users=10, seed=13))
        with pytest.raises(StaleEpochError) as caught:
            fleet.submit(workload[0])        # per-submission guard
        assert caught.value.route == "users"
        assert caught.value.fleet_epoch == (0, 0)
        assert caught.value.registry_epoch == (1, 0)
        assert "stale" in str(caught.value)
        with pytest.raises(StaleEpochError):
            fleet.run(workload)              # scope-boundary guard
    assert fleet.closed
    # The prescribed remedy works: a new fleet snapshots the current epoch
    # and current models, and serves the same workload again.
    with ProcessFleet(own, workers=1, batch_size=4, num_samples=_SAMPLES,
                      seed=_SEED) as rebuilt:
        report = rebuilt.run(workload)
        assert report.stats.num_queries == len(workload)
        # The merged report carries the epoch accounting: the rebuilt fleet
        # serves the old (still-registered) model one data epoch behind.
        assert report.stats.epochs["users"] == {"data_epoch": 1,
                                                "model_epoch": 0,
                                                "staleness": 1}
        assert report.stats.max_staleness == 1
    assert _no_fleet_children()


def test_failing_registry_leaves_no_children(workload):
    """Training/snapshot failures happen before any process exists."""

    class ExplodingRegistry(ModelRegistry):
        def estimator(self, name):
            raise RuntimeError("model store is on fire")

    broken = ExplodingRegistry(default_config=_CONFIG)
    broken.register_table(make_users(num_users=30, seed=1))
    with pytest.raises(RuntimeError, match="on fire"):
        ProcessFleet(broken, workers=2)
    assert _no_fleet_children()


def test_partial_spawn_failure_terminates_started_workers(registry):
    """If spawning worker k fails, workers 0..k-1 are torn down, not leaked."""

    class TrippingFleet(ProcessFleet):
        def _start_worker(self, worker_id, context, spec):
            if worker_id == 1:
                raise RuntimeError("fork bomb disarmed")
            return super()._start_worker(worker_id, context, spec)

    with pytest.raises(RuntimeError, match="disarmed"):
        TrippingFleet(registry, workers=2, num_samples=_SAMPLES, seed=_SEED)
    assert _no_fleet_children()


def test_constructor_validation(registry):
    with pytest.raises(ValueError, match="workers"):
        ProcessFleet(registry, workers=0)
    with pytest.raises(ValueError, match="batch_size"):
        ProcessFleet(registry, workers=1, batch_size=0)
    with pytest.raises(ValueError, match="replicas"):
        ProcessFleet(registry, workers=1, replicas=0)
    with pytest.raises(ValueError, match="default route"):
        ProcessFleet(registry, workers=1, default_route="nope")
    with pytest.raises(ValueError, match="no relations"):
        ProcessFleet(ModelRegistry(default_config=_CONFIG), workers=1)
    assert _no_fleet_children()


# --------------------------------------------------------------------- #
# Model shipping
# --------------------------------------------------------------------- #
def test_export_restore_roundtrip_is_bit_exact(registry, workload):
    name = registry.names[0]
    payload = export_relation(registry, name)
    assert isinstance(payload["weights"], bytes)
    restored = restore_estimator(payload)
    original = registry.estimator(name)
    for query in workload[:4]:
        stripped = Query(query.predicates)
        want = EstimationEngine(original, batch_size=1,
                                num_samples=_SAMPLES, use_cache=False,
                                seed=_SEED).run([stripped])
        got = EstimationEngine(restored, batch_size=1,
                               num_samples=_SAMPLES, use_cache=False,
                               seed=_SEED).run([stripped])
        np.testing.assert_array_equal(got.selectivities, want.selectivities)


def test_export_refuses_unshippable_estimators():
    class OpaqueStore:
        def estimator(self, name):
            return object()  # no config, no state-dict model

    with pytest.raises(TypeError, match="ship"):
        export_relation(OpaqueStore(), "users")


def test_worker_assignments_round_robin(registry):
    assignment = registry.worker_assignments(3, replicas={"users": 5})
    assert assignment == {("users", replica): replica % 3
                          for replica in range(5)}
    assert registry.worker_assignments(3, replicas={"users": 5}) == assignment
    with pytest.raises(ValueError, match="workers"):
        registry.worker_assignments(0)
    with pytest.raises(ValueError, match="replica"):
        registry.worker_assignments(2, replicas={"users": 0})


# --------------------------------------------------------------------- #
# The worker loop, driven in-process through a scripted pipe
# --------------------------------------------------------------------- #
class _ScriptedConn:
    """A fake duplex pipe end: recv() replays a script, send() records."""

    def __init__(self, script):
        self.script = list(script)
        self.sent = []

    def recv(self):
        if not self.script:
            raise EOFError
        return self.script.pop(0)

    def send(self, message):
        self.sent.append(message)


def _worker_spec(registry, **engine_overrides):
    name = registry.names[0]
    engine = dict(num_samples=_SAMPLES, use_cache=True, cache_entries=64,
                  seed=_SEED)
    engine.update(engine_overrides)
    return {"keys": [(name, 0)],
            "payloads": {name: export_relation(registry, name)},
            "engine": engine,
            "log_path": None}


def test_worker_main_protocol_roundtrip(registry, workload):
    name = registry.names[0]
    items = [(index, Query(query.predicates))
             for index, query in enumerate(workload[:3])]
    conn = _ScriptedConn([
        ("batch", 7, name, 0, items),
        ("reset",),
        ("report",),
        ("stop",),
    ])
    worker_main(5, conn, _worker_spec(registry))
    kinds = [message[0] for message in conn.sent]
    assert kinds == ["ready", "result", "report", "stopped"]
    ready, result, report, stopped = conn.sent
    assert ready[1:] == (5, os.getpid())
    _, worker_id, batch_id, pairs, latency_ms, busy_cpu_ms = result
    assert (worker_id, batch_id) == (5, 7)
    assert [index for index, _ in pairs] == [0, 1, 2]
    assert latency_ms >= 0.0 and busy_cpu_ms >= 0.0
    assert set(report[2]) == {(name, 0)}
    assert stopped == ("stopped", 5)
    # The in-process pass answers exactly like the parent's own engine.
    engine = EstimationEngine(registry.estimator(name), batch_size=3,
                              num_samples=_SAMPLES, use_cache=True,
                              cache_entries=64, seed=_SEED)
    expected = engine.run([query for _, query in items])
    assert [sel for _, sel in pairs] == list(expected.selectivities)


def test_worker_main_reports_errors_and_exits(registry):
    conn = _ScriptedConn([("bogus-kind",)])
    worker_main(2, conn, _worker_spec(registry))
    assert conn.sent[0][0] == "ready"
    kind, worker_id, formatted = conn.sent[1]
    assert (kind, worker_id) == ("error", 2)
    assert "bogus-kind" in formatted


def test_worker_main_exits_quietly_on_eof(registry):
    conn = _ScriptedConn([])  # parent vanished right after spawn
    worker_main(1, conn, _worker_spec(registry))
    assert [message[0] for message in conn.sent] == ["ready"]


# --------------------------------------------------------------------- #
# Async client teardown (regression: driver task leaked on failed submit)
# --------------------------------------------------------------------- #
def test_async_client_failed_submit_leaves_no_driver(registry, workload):
    """A submit that dies in the router must not leave a flush-driver task
    running with nothing to drive (it used to start before the submission
    was accepted, leaking a task when the router refused the query)."""
    router = FleetRouter(registry, batch_size=4, num_samples=_SAMPLES,
                         seed=_SEED, flush_after_ms=5.0)

    async def scenario():
        client = AsyncFleetClient(router)
        with pytest.raises(RoutingError):
            client.submit(Query(workload[0].predicates).qualified("nope"))
        assert client._driver_task is None
        stray_tasks = len(asyncio.all_tasks()) - 1  # minus this coroutine
        # A successful submission after the failure still works end-to-end.
        future = client.submit(workload[0])
        await client.drain()
        return future.result(), stray_tasks

    result, stray_tasks = asyncio.run(scenario())
    assert result.selectivity >= 0.0
    assert stray_tasks == 0
