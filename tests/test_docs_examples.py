"""Execute every fenced Python example in ``docs/*.md``.

The docs promise that their snippets run against the current API; this test
makes the promise enforceable.  For each markdown file, every ` ```python `
fenced block is extracted and executed top-to-bottom in one shared namespace
(so later blocks may build on earlier ones, like a narrative), inside a
temporary working directory (so snippets that write files cannot dirty the
repo).  Shell/text blocks are documentation only and are not executed.

A failing block reports the file, the block's ordinal and the offending
source, so a doc rotting against an API change fails loudly and points at
itself.
"""

from __future__ import annotations

import os
import re

import pytest

DOCS_DIR = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", "docs"))

#: ```python ... ``` fences (tilde fences are not used in this repo's docs).
_PYTHON_FENCE = re.compile(r"^```python[ \t]*\n(.*?)^```[ \t]*$",
                           re.MULTILINE | re.DOTALL)


def _doc_files() -> list[str]:
    if not os.path.isdir(DOCS_DIR):
        return []
    return sorted(name for name in os.listdir(DOCS_DIR)
                  if name.endswith(".md"))


def extract_python_blocks(markdown: str) -> list[str]:
    """The source of every ` ```python ` fenced block, in document order."""
    return [match.group(1) for match in _PYTHON_FENCE.finditer(markdown)]


def test_docs_directory_has_examples():
    """The docs tree exists and at least one page carries executable code."""
    files = _doc_files()
    assert files, f"no markdown files under {DOCS_DIR}"
    total = 0
    for name in files:
        with open(os.path.join(DOCS_DIR, name)) as handle:
            total += len(extract_python_blocks(handle.read()))
    assert total > 0, "docs/ contains no executable ```python examples"


@pytest.mark.parametrize("name", _doc_files())
def test_docs_examples_execute(name, tmp_path, monkeypatch):
    """Every Python block of one docs page executes without raising."""
    with open(os.path.join(DOCS_DIR, name)) as handle:
        blocks = extract_python_blocks(handle.read())
    if not blocks:
        pytest.skip(f"{name} has no Python examples")
    monkeypatch.chdir(tmp_path)  # snippets writing files stay in the sandbox
    namespace: dict = {"__name__": f"docs_example_{name.removesuffix('.md')}"}
    for ordinal, source in enumerate(blocks, start=1):
        try:
            exec(compile(source, f"docs/{name}[block {ordinal}]", "exec"),
                 namespace)
        except Exception as error:  # pragma: no cover - the message is the point
            pytest.fail(
                f"docs/{name}, Python block {ordinal} failed with "
                f"{type(error).__name__}: {error}\n--- block source ---\n"
                f"{source}")
