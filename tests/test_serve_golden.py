"""Golden-workload regression: frozen serving output must not drift.

The fixture files under ``tests/data/`` pin the exact estimates one small
end-to-end serving run produced when they were last regenerated.  Any change
that shifts them — training, sampling, routing, random-stream keying — fails
here loudly, with a regeneration hint for the cases where the shift is
intentional.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

import golden_serve
from repro.serve import (
    FleetRouter,
    StreamingRouter,
    VirtualClock,
    load_workload,
    stream_workload,
)

_REGEN_HINT = (
    "Serving output drifted from the golden fixture under tests/data/. "
    "If this change is intentional (training, sampling or routing semantics "
    "deliberately changed), regenerate the fixture and commit the new files:"
    "\n\n    PYTHONPATH=src python tests/golden_serve.py\n")


def test_golden_workload_estimates_have_not_drifted(golden_serve_fixture):
    expected = golden_serve_fixture
    # The frozen knobs must match the recipe: a silent edit to one side
    # invalidates the comparison, so check it explicitly first.
    frozen_knobs = {key: tuple(value) if isinstance(value, list) else value
                    for key, value in expected["golden"].items()}
    assert frozen_knobs == golden_serve.GOLDEN, (
        "tests/data/golden_serve_estimates.json was generated with different "
        "knobs than tests/golden_serve.py declares. " + _REGEN_HINT)

    registry = golden_serve.build_fleet()
    workload = load_workload(golden_serve.WORKLOAD_PATH)
    assert len(workload) == len(expected["selectivities"])
    report = golden_serve.serve(registry, workload)

    assert [result.route for result in report.results] == expected["routes"], (
        "Routing of the golden workload changed. " + _REGEN_HINT)
    np.testing.assert_allclose(
        report.selectivities, np.asarray(expected["selectivities"]),
        rtol=1e-6, atol=1e-9,
        err_msg="Estimates for the golden workload drifted. " + _REGEN_HINT)


@pytest.mark.parametrize("batch_size", (1, 64))
def test_golden_workload_streaming_equals_batch(batch_size):
    """Streaming determinism, pinned on the golden workload: submitting the
    queries one at a time through the asyncio client, in a *shuffled* arrival
    order with pre-assigned indices, produces estimates identical to
    ``FleetRouter.run`` on the in-order list — at batch_size 1 and 64."""
    registry = golden_serve.build_fleet()
    workload = load_workload(golden_serve.WORKLOAD_PATH)
    batch = FleetRouter(registry, batch_size=batch_size,
                        num_samples=golden_serve.GOLDEN["num_samples"],
                        seed=golden_serve.GOLDEN["seed"]).run(workload)
    order = list(range(len(workload)))
    random.Random(batch_size).shuffle(order)
    router = StreamingRouter(registry, batch_size=batch_size,
                             num_samples=golden_serve.GOLDEN["num_samples"],
                             seed=golden_serve.GOLDEN["seed"])
    streamed = stream_workload(router, workload, arrival_order=order)
    assert [result.index for result in streamed.results] == \
        list(range(len(workload)))
    np.testing.assert_allclose(streamed.selectivities, batch.selectivities,
                               rtol=0.0, atol=1e-12)


@pytest.mark.parametrize("batch_size", (1, 64))
def test_golden_workload_flush_timeout_preserves_estimates(batch_size):
    """The flush-timeout determinism contract, pinned on the golden
    workload: with the virtual-clock timer enabled (2 ms per arrival against
    a 5 ms deadline) timeout-triggered flushes rebatch the stream — yet the
    estimates equal ``FleetRouter.run`` on the in-order list exactly, at
    batch_size 1 and 64."""
    registry = golden_serve.build_fleet()
    workload = load_workload(golden_serve.WORKLOAD_PATH)
    batch = FleetRouter(registry, batch_size=batch_size,
                        num_samples=golden_serve.GOLDEN["num_samples"],
                        seed=golden_serve.GOLDEN["seed"]).run(workload)
    router = StreamingRouter(registry, batch_size=batch_size,
                             num_samples=golden_serve.GOLDEN["num_samples"],
                             seed=golden_serve.GOLDEN["seed"],
                             flush_after_ms=5.0, clock=VirtualClock())
    timed = stream_workload(router, workload, advance_ms=2.0)
    if batch_size == 64:
        assert timed.stats.timeout_flushes > 0  # the deadline really fired
    np.testing.assert_allclose(timed.selectivities, batch.selectivities,
                               rtol=0.0, atol=1e-12)


def test_golden_workload_matches_generator(golden_serve_fixture):
    """The frozen workload file is the one the recipe generates today."""
    registry = golden_serve.build_fleet()
    regenerated = golden_serve.build_workload(registry)
    frozen = load_workload(golden_serve.WORKLOAD_PATH)
    assert len(frozen) == len(regenerated), _REGEN_HINT
    for left, right in zip(frozen, regenerated):
        assert left.table == right.table, _REGEN_HINT
        assert [(p.column, p.operator, p.value) for p in left] == \
            [(p.column, p.operator, p.value) for p in right], _REGEN_HINT
