"""Golden-workload regression: frozen serving output must not drift.

The fixture files under ``tests/data/`` pin the exact estimates one small
end-to-end serving run produced when they were last regenerated.  Any change
that shifts them — training, sampling, routing, random-stream keying — fails
here loudly, with a regeneration hint for the cases where the shift is
intentional.
"""

from __future__ import annotations

import numpy as np

import golden_serve
from repro.serve import load_workload

_REGEN_HINT = (
    "Serving output drifted from the golden fixture under tests/data/. "
    "If this change is intentional (training, sampling or routing semantics "
    "deliberately changed), regenerate the fixture and commit the new files:"
    "\n\n    PYTHONPATH=src python tests/golden_serve.py\n")


def test_golden_workload_estimates_have_not_drifted(golden_serve_fixture):
    expected = golden_serve_fixture
    # The frozen knobs must match the recipe: a silent edit to one side
    # invalidates the comparison, so check it explicitly first.
    frozen_knobs = {key: tuple(value) if isinstance(value, list) else value
                    for key, value in expected["golden"].items()}
    assert frozen_knobs == golden_serve.GOLDEN, (
        "tests/data/golden_serve_estimates.json was generated with different "
        "knobs than tests/golden_serve.py declares. " + _REGEN_HINT)

    registry = golden_serve.build_fleet()
    workload = load_workload(golden_serve.WORKLOAD_PATH)
    assert len(workload) == len(expected["selectivities"])
    report = golden_serve.serve(registry, workload)

    assert [result.route for result in report.results] == expected["routes"], (
        "Routing of the golden workload changed. " + _REGEN_HINT)
    np.testing.assert_allclose(
        report.selectivities, np.asarray(expected["selectivities"]),
        rtol=1e-6, atol=1e-9,
        err_msg="Estimates for the golden workload drifted. " + _REGEN_HINT)


def test_golden_workload_matches_generator(golden_serve_fixture):
    """The frozen workload file is the one the recipe generates today."""
    registry = golden_serve.build_fleet()
    regenerated = golden_serve.build_workload(registry)
    frozen = load_workload(golden_serve.WORKLOAD_PATH)
    assert len(frozen) == len(regenerated), _REGEN_HINT
    for left, right in zip(frozen, regenerated):
        assert left.table == right.table, _REGEN_HINT
        assert [(p.column, p.operator, p.value) for p in left] == \
            [(p.column, p.operator, p.value) for p in right], _REGEN_HINT
