"""Direct unit tests for the serving caches: eviction order, canonical keys
and the shared ``cache_entries`` budget split across models, replicas and the
fleet result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NaruConfig
from repro.data import make_users
from repro.query import Operator, Predicate, Query
from repro.serve import (
    CachedConditionalModel,
    ConditionalProbCache,
    FleetRouter,
    ModelRegistry,
    PackedConditionalCache,
    ResultCache,
    canonical_query_key,
)

_CONFIG = NaruConfig(epochs=1, hidden_sizes=(8, 8), batch_size=128,
                     progressive_samples=30, seed=0)


class TestCanonicalQueryKey:
    def test_predicate_order_is_irrelevant(self):
        forward = Query.from_tuples([("a", "=", 1), ("b", "<=", 4)])
        backward = Query.from_tuples([("b", "<=", 4), ("a", "=", 1)])
        assert canonical_query_key(forward) == canonical_query_key(backward)

    def test_in_lists_deduplicate_and_sort(self):
        left = Query([Predicate("a", Operator.IN, ["x", "y", "x"])])
        right = Query([Predicate("a", Operator.IN, ["y", "x"])])
        assert canonical_query_key(left) == canonical_query_key(right)

    def test_numpy_scalars_unwrap(self):
        plain = Query.from_tuples([("a", "=", 3)])
        numpyish = Query.from_tuples([("a", "=", np.int64(3))])
        assert canonical_query_key(plain) == canonical_query_key(numpyish)
        between = Query([Predicate("a", Operator.BETWEEN,
                                   (np.int64(1), np.int64(5)))])
        assert canonical_query_key(between) == canonical_query_key(
            Query([Predicate("a", Operator.BETWEEN, (1, 5))]))

    def test_distinct_queries_stay_distinct(self):
        base = Query.from_tuples([("a", "=", 1)])
        assert canonical_query_key(base) != canonical_query_key(
            Query.from_tuples([("a", "=", 2)]))          # literal
        assert canonical_query_key(base) != canonical_query_key(
            Query.from_tuples([("a", "<=", 1)]))         # operator
        assert canonical_query_key(base) != canonical_query_key(
            Query.from_tuples([("b", "=", 1)]))          # column
        assert canonical_query_key(base) != canonical_query_key(
            Query.from_tuples([("a", "=", 1), ("b", "=", 1)]))  # extra filter

    def test_incomparable_literal_types_do_not_crash(self):
        # Two predicates on one column+operator with incomparable literals
        # (a contradictory but syntactically valid conjunction, e.g. from a
        # hand-written workload file) must canonicalise, not raise TypeError.
        mixed = Query.from_tuples([("a", "=", 1), ("a", "=", "x")])
        flipped = Query.from_tuples([("a", "=", "x"), ("a", "=", 1)])
        assert canonical_query_key(mixed) == canonical_query_key(flipped)
        ins = Query([Predicate("a", Operator.IN, [1, 2]),
                     Predicate("a", Operator.IN, ["x", "y"])])
        assert canonical_query_key(ins)  # just must not crash

    def test_route_wins_over_query_qualifier(self):
        query = Query.from_tuples([("a", "=", 1)], table="users")
        explicit = canonical_query_key(query, route="users")
        default_routed = canonical_query_key(
            Query.from_tuples([("a", "=", 1)]), route="users")
        assert explicit == default_routed
        assert canonical_query_key(query) == explicit  # falls back to .table
        assert canonical_query_key(query, route="other") != explicit


class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put(("a",), 0.1)
        cache.put(("b",), 0.2)
        assert cache.get(("a",)) == 0.1        # refresh "a"
        cache.put(("c",), 0.3)                 # evicts "b", the LRU entry
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == 0.1
        assert cache.get(("c",)) == 0.3
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_zero_selectivity_is_a_hit_not_a_miss(self):
        cache = ResultCache()
        cache.put(("empty",), 0.0)
        assert cache.get(("empty",)) == 0.0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(max_entries=0)
        cache.put(("a",), 0.5)
        assert cache.get(("a",)) is None
        assert len(cache) == 0

    def test_counters_and_contains(self):
        cache = ResultCache()
        assert cache.get(("a",)) is None
        cache.put(("a",), 0.4)
        assert ("a",) in cache
        assert ("b",) not in cache
        assert cache.get(("a",)) == 0.4
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "evictions": 0, "hit_rate": 0.5,
            "stale_rejects": 0,
            "lifetime": {"hits": 1, "misses": 1, "evictions": 0,
                         "stale_rejects": 0},
        }
        cache.clear()
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=-1)

    def test_epoch_mismatch_is_a_counted_miss(self):
        # The docstring contract: an entry stored at one epoch can never be
        # served at another — the lookup rejects it, drops it and counts it.
        cache = ResultCache()
        cache.put(("q",), 0.25, epoch=(0, 0))
        assert cache.get(("q",), epoch=(1, 0)) is None   # data epoch moved
        assert cache.stats.stale_rejects == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0
        assert ("q",) not in cache                       # dropped, not kept
        cache.put(("q",), 0.5, epoch=(1, 0))
        assert cache.get(("q",), epoch=(1, 1)) is None   # model epoch moved
        assert cache.stats.stale_rejects == 2

    def test_matching_epoch_serves_and_epoch_of_peeks(self):
        cache = ResultCache()
        assert cache.epoch_of(("q",)) is None
        cache.put(("q",), 0.25, epoch=(2, 1))
        assert cache.epoch_of(("q",)) == (2, 1)
        assert cache.get(("q",), epoch=(2, 1)) == 0.25
        # epoch_of is a peek: it neither counts nor touches LRU order.
        assert cache.stats.lookups == 1

    def test_default_epoch_keeps_legacy_call_sites_valid(self):
        # Two-argument put / one-argument get (the pre-epoch API) agree on
        # the default epoch, so single-epoch users see plain LRU behaviour.
        cache = ResultCache()
        cache.put(("q",), 0.75)
        assert cache.get(("q",)) == 0.75
        assert cache.stats.stale_rejects == 0

    def test_clear_folds_scope_counters_into_lifetime(self):
        # Regression: clear() used to leave the scope counters untouched, so
        # a fleet's per-run stats bled across scope boundaries.  Now clear()
        # zeroes the scope counters while the lifetime rollup keeps the total.
        cache = ResultCache()
        cache.put(("a",), 0.1, epoch=0)
        assert cache.get(("a",), epoch=0) == 0.1     # 1 hit
        assert cache.get(("b",), epoch=0) is None    # 1 miss
        assert cache.get(("a",), epoch=1) is None    # 1 stale reject (+miss)
        cache.clear()
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0
        assert cache.stats.stale_rejects == 0
        rollup = cache.stats.as_dict()["lifetime"]
        assert rollup == {"hits": 1, "misses": 2, "evictions": 0,
                          "stale_rejects": 1}
        # Post-clear activity lands in the fresh scope *and* the rollup.
        cache.put(("c",), 0.3, epoch=1)
        assert cache.get(("c",), epoch=1) == 0.3
        assert cache.stats.hits == 1
        assert cache.stats.as_dict()["lifetime"]["hits"] == 2


class TestSharedBudgetSplit:
    """One ``cache_entries`` budget, split across every cache in the fleet."""

    @pytest.fixture(scope="class")
    def registry(self):
        fleet = ModelRegistry(default_config=_CONFIG)
        fleet.register_table(make_users(num_users=60, seed=4))
        fleet.register_table(make_users(num_users=60, seed=5), name="users_b",
                             replicas=3)
        return fleet

    def test_split_counts_replicas(self, registry):
        # 1 + 3 replicas, no result cache: four equal slices.
        router = FleetRouter(registry, cache_entries=400)
        assert router.cache_entries_per_model == 100
        # Enabling the result cache adds a fifth slice.
        cached = FleetRouter(registry, cache_entries=400, result_cache=True)
        assert cached.cache_entries_per_model == 80
        assert cached.result_cache.max_entries == 80

    def test_replicas_pool_their_slices_into_one_group_cache(self, registry):
        router = FleetRouter(registry, cache_entries=400, result_cache=True)
        for route in registry.names:
            group = router.group(route)
            replicas = registry.replicas(route)
            assert len(group) == replicas
            # The group's conditional cache pools its replicas' slices (the
            # replicas front the same model, so entries are shareable) and
            # every engine uses that one cache.
            assert group.cache.max_entries == 80 * replicas
            for engine in group.engines:
                assert engine._cache is group.cache

    def test_budget_never_rounds_to_zero(self, registry):
        router = FleetRouter(registry, cache_entries=2, result_cache=True)
        assert router.cache_entries_per_model == 1

    def test_disabled_conditional_caches_free_their_slices(self, registry):
        # With use_cache=False the conditional caches do not exist, so the
        # result cache — the only cache storing anything — gets the whole
        # budget instead of a 1/(replicas+1) sliver.
        router = FleetRouter(registry, cache_entries=400, use_cache=False,
                             result_cache=True)
        assert router.result_cache.max_entries == 400

    def test_split_is_stable_after_retuning(self, registry):
        router = FleetRouter(registry, cache_entries=400)
        registry.set_replicas("users_b", 1)
        try:
            # The router sized its slices at construction; a later registry
            # re-tune does not shrink or grow the running caches.
            assert router.cache_entries_per_model == 100
            assert len(router.group("users_b")) == 3
        finally:
            registry.set_replicas("users_b", 3)


class TestPackedConditionalCache:
    """The vectorized store behind the deduplicating serve path."""

    def _distributions(self, keys):
        # A distinct, recognisable row per key so lookups are checkable.
        return np.stack([np.full(4, float(key)) for key in keys])

    def test_bulk_roundtrip_and_counters(self):
        cache = PackedConditionalCache()
        keys = np.array([40, 10, 30], dtype=np.int64)
        cache.bulk_put(0, keys, self._distributions(keys))
        probe = np.array([10, 20, 30, 40, 99], dtype=np.int64)
        found, values = cache.bulk_get(0, probe)
        np.testing.assert_array_equal(found, [True, False, True, True, False])
        np.testing.assert_allclose(values[:, 0], [10.0, 30.0, 40.0])
        assert len(cache) == 3
        assert cache.stats.hits == 3 and cache.stats.misses == 2

    def test_merge_insert_keeps_store_sorted(self):
        cache = PackedConditionalCache()
        first = np.array([50, 10], dtype=np.int64)
        second = np.array([30, 70, 5], dtype=np.int64)
        cache.bulk_put(2, first, self._distributions(first))
        cache.bulk_put(2, second, self._distributions(second))
        probe = np.array([5, 10, 30, 50, 70], dtype=np.int64)
        found, values = cache.bulk_get(2, probe)
        assert found.all()
        np.testing.assert_allclose(values[:, 0], probe.astype(float))

    def test_columns_are_independent(self):
        cache = PackedConditionalCache()
        keys = np.array([7], dtype=np.int64)
        cache.bulk_put(0, keys, self._distributions(keys))
        found, values = cache.bulk_get(1, keys)
        assert not found.any() and values is None

    def test_generational_eviction_bounds_size(self):
        cache = PackedConditionalCache(max_entries=8)
        for batch in range(6):
            keys = np.arange(batch * 4, batch * 4 + 4, dtype=np.int64)
            cache.bulk_put(0, keys, self._distributions(keys))
        assert len(cache) <= 8
        assert cache.stats.evictions > 0
        # The newest batch always survives an eviction sweep.
        newest = np.arange(20, 24, dtype=np.int64)
        found, _ = cache.bulk_get(0, newest)
        assert found.all()

    def test_zero_capacity_disables_storage(self):
        cache = PackedConditionalCache(max_entries=0)
        keys = np.array([1, 2], dtype=np.int64)
        cache.bulk_put(0, keys, self._distributions(keys))
        found, values = cache.bulk_get(0, keys)
        assert not found.any() and values is None and len(cache) == 0

    def test_clear_and_negative_capacity(self):
        cache = PackedConditionalCache()
        keys = np.array([1], dtype=np.int64)
        cache.bulk_put(0, keys, self._distributions(keys))
        cache.clear()
        assert len(cache) == 0
        with pytest.raises(ValueError):
            PackedConditionalCache(max_entries=-1)

    def test_invalidate_drops_entries_and_stamps_epoch(self):
        cache = PackedConditionalCache()
        keys = np.array([1, 2], dtype=np.int64)
        cache.bulk_put(0, keys, self._distributions(keys))
        assert cache.epoch == 0
        cache.invalidate(3)
        assert cache.epoch == 3
        assert len(cache) == 0
        found, values = cache.bulk_get(0, keys)
        assert not found.any() and values is None

    def test_requires_assume_unique_wrapper(self, users_model):
        with pytest.raises(ValueError):
            CachedConditionalModel(users_model,
                                   cache=PackedConditionalCache())

    def test_wrapped_model_is_bit_exact(self, users_model, users_table):
        wrapped = CachedConditionalModel(users_model, assume_unique=True)
        assert isinstance(wrapped.cache, PackedConditionalCache)
        codes = users_table.encoded()[:64]
        for column in range(users_table.num_columns):
            unique_codes = np.unique(codes[:, :], axis=0)
            expected = users_model.conditional_probs(column, unique_codes)
            # Cold pass evaluates, warm pass must serve the same bits.
            cold = wrapped.conditional_probs(column, unique_codes)
            warm = wrapped.conditional_probs(column, unique_codes)
            assert np.array_equal(cold, expected)
            assert np.array_equal(warm, expected)
        assert wrapped.stats.hits > 0


@pytest.fixture(scope="module")
def users_table():
    return make_users(num_users=80, seed=6)


@pytest.fixture(scope="module")
def users_model(users_table):
    from repro.core import MADEModel
    return MADEModel(users_table, hidden_sizes=(8, 8), seed=0)


class TestConditionalBudgetUnderReplication:
    def test_eviction_respects_per_replica_slice(self):
        cache = ConditionalProbCache(max_entries=3)
        for key in range(5):
            cache.put((0, key), np.array([float(key)]))
        assert len(cache) == 3
        assert cache.stats.evictions == 2
        # The survivors are the three most recently inserted entries.
        assert cache.get((0, 0)) is None
        assert cache.get((0, 4)) is not None

    def test_invalidate_drops_entries_and_stamps_epoch(self):
        cache = ConditionalProbCache(max_entries=4)
        cache.put((0, 1), np.array([0.5]))
        assert cache.epoch == 0
        cache.invalidate(2)
        assert cache.epoch == 2
        assert len(cache) == 0
        assert cache.get((0, 1)) is None
