"""Chaos regression suite for the cross-process fleet (satellite of loadgen).

The in-process chaos scenarios live with the load generator in
``tests/test_serve_openloop.py``; this file owns the one fault that needs
real OS processes — ``ProcessFleet.kill_worker`` mid-stream — and pins down
its whole contract: the kill surfaces as a typed
:class:`~repro.serve.WorkerError` naming the dead worker and its signal exit
code within ``recv_timeout_s`` (never an indefinite hang: every test runs
under a pytest-timeout ceiling), ``close()`` still reaps every child, and no
``procfleet-worker`` process outlives its fleet.  CI points
``REPRO_PROCFLEET_LOG_DIR`` at a directory it uploads on failure, so a red
run ships the worker logs with it.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import pytest

from repro.core import NaruConfig
from repro.data import make_users
from repro.serve import (
    ModelRegistry,
    ProcessFleet,
    WorkerError,
    generate_mixed_workload,
    run_kill_worker_drill,
)

_CONFIG = NaruConfig(epochs=1, hidden_sizes=(8, 8), batch_size=64,
                     progressive_samples=40, seed=0)
_SAMPLES = 40
_SEED = 3

#: CI sets this to a directory it uploads when the job fails, so worker logs
#: travel with the red run; locally it stays unset and logging stays off.
_LOG_DIR = os.environ.get("REPRO_PROCFLEET_LOG_DIR")


def _no_fleet_children() -> bool:
    """True when no procfleet worker processes are alive under this parent."""
    return not [process for process in mp.active_children()
                if process.name.startswith("procfleet-worker")]


@pytest.fixture(scope="module")
def registry():
    fitted = ModelRegistry(default_config=_CONFIG)
    fitted.register_table(make_users(num_users=80, seed=11))
    fitted.fit_all()
    return fitted


@pytest.fixture(scope="module")
def workload(registry):
    return generate_mixed_workload(
        {name: registry.relation(name) for name in registry.names}, 12,
        min_filters=1, max_filters=2, seed=9)


def _fleet(registry, **overrides):
    options = dict(workers=2, batch_size=4, num_samples=_SAMPLES, seed=_SEED,
                   recv_timeout_s=5.0, log_dir=_LOG_DIR)
    options.update(overrides)
    return ProcessFleet(registry, **options)


@pytest.mark.timeout(60)
def test_kill_worker_mid_stream_raises_typed_error_without_hang(registry,
                                                                workload):
    """The core drill, inlined: submit half the stream, SIGKILL a worker,
    keep submitting (arrivals don't stop because a backend died), collect.
    The failure must surface as WorkerError naming worker 0 and the SIGKILL
    exit code — within recv_timeout_s, never a hang — and close() must still
    reap every child."""
    fleet = _fleet(registry)
    try:
        half = len(workload) // 2
        for query in workload[:half]:
            fleet.submit(query)
        info = fleet.kill_worker(0)
        assert info.worker_id == 0
        assert info.pid is not None
        with pytest.raises(WorkerError) as caught:
            for query in workload[half:]:
                fleet.submit(query)
            fleet.flush()
            fleet.collect()
        assert caught.value.worker_id == 0
        assert caught.value.exit_code == -9  # SIGKILL, reported as-is
        assert "worker 0" in str(caught.value)
    finally:
        fleet.close()
    assert fleet.closed
    assert _no_fleet_children()


@pytest.mark.timeout(60)
def test_run_kill_worker_drill_summarises_the_contract(registry, workload):
    """The packaged drill the benchmark and CLI run: same fault, summary
    dict out — typed error, dead worker named, wall time bounded by the
    recv timeout rather than an infinite collect()."""
    fleet = _fleet(registry)
    try:
        drill = run_kill_worker_drill(fleet, workload, worker_id=1)
    finally:
        fleet.close()
    assert drill["typed_error"]
    assert drill["error_type"] == "WorkerError"
    assert drill["error_worker_id"] == 1
    assert drill["error_exit_code"] == -9
    assert drill["killed_worker"] == 1
    assert drill["killed_pid"] is not None
    assert drill["kill_after"] == len(workload) // 2
    # Open loop: submission keeps going after the kill, but a filled
    # micro-batch can surface the typed error mid-submit — anywhere from
    # the kill point to the full workload counts.
    assert len(workload) // 2 <= drill["submitted"] <= len(workload)
    assert drill["wall_s"] < 30.0  # typed failure, not a hang
    assert _no_fleet_children()


@pytest.mark.timeout(60)
def test_kill_worker_validates_its_target(registry, workload):
    fleet = _fleet(registry, workers=2)
    try:
        with pytest.raises(ValueError, match=r"no worker 7.*\[0, 1\]"):
            fleet.kill_worker(7)
        # A bad target is a no-op: the fleet still serves.
        report = fleet.run(workload)
        assert report.stats.num_queries == len(workload)
    finally:
        fleet.close()
    with pytest.raises(RuntimeError, match="closed"):
        fleet.kill_worker(0)
    assert _no_fleet_children()


@pytest.mark.timeout(60)
def test_surviving_workers_are_reaped_after_kill(registry, workload):
    """A kill drill must not leak the *other* workers: after the typed error
    and close(), zero procfleet children remain — the leak check the CI
    chaos step runs on every execution, not only on success."""
    fleet = _fleet(registry, workers=3)
    try:
        drill = run_kill_worker_drill(fleet, workload, worker_id=0,
                                      kill_after=2)
        assert drill["typed_error"]
    finally:
        fleet.close()
    assert fleet.closed
    assert _no_fleet_children()
