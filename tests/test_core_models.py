"""Tests for encoders, the MADE model, per-column networks and training.

The central invariant verified here is *autoregressiveness*: the model's
distribution for column ``i`` must not change when any column at or after
``i`` in the ordering changes — this is what makes the chain-rule
factorisation, and hence progressive sampling, valid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ColumnNetworkModel,
    MADEModel,
    NaruConfig,
    Trainer,
    TupleEncoder,
    cross_entropy_bits,
    data_entropy_bits,
)
from repro.data import ColumnSpec, make_correlated_table


@pytest.fixture(scope="module")
def embed_table():
    """A table with both small (one-hot) and large (embedding) domains."""
    specs = [
        ColumnSpec("small", 5, "categorical"),
        ColumnSpec("large", 120, "ordinal"),
        ColumnSpec("tiny", 2, "categorical"),
    ]
    return make_correlated_table(specs, num_rows=600, seed=3, name="embed")


class TestTupleEncoder:
    def test_encoding_strategy_selection(self, embed_table):
        encoder = TupleEncoder(embed_table, embedding_threshold=20, embedding_dim=16)
        small, large, tiny = embed_table.domain_sizes
        assert not encoder.codecs[0].use_embedding
        assert encoder.codecs[1].use_embedding
        assert encoder.input_widths == [small, 16, tiny]
        assert encoder.output_widths == [small, 16, tiny]

    def test_one_hot_encoding_values(self, embed_table):
        encoder = TupleEncoder(embed_table, embedding_threshold=20)
        block = encoder.encode_column(0, np.array([2, 0])).numpy()
        np.testing.assert_allclose(block.sum(axis=1), [1.0, 1.0])
        assert block[0, 2] == 1.0 and block[1, 0] == 1.0

    def test_embedding_encoding_shape(self, embed_table):
        encoder = TupleEncoder(embed_table, embedding_threshold=20, embedding_dim=16)
        block = encoder.encode_column(1, np.array([3, 7, 7])).numpy()
        assert block.shape == (3, 16)
        np.testing.assert_allclose(block[1], block[2])

    def test_forward_concatenates_all_columns(self, embed_table):
        encoder = TupleEncoder(embed_table, embedding_threshold=20, embedding_dim=16)
        codes = embed_table.encoded()[:4]
        assert encoder(codes).shape == (4, encoder.total_input_width)

    def test_embedding_reuse_decoding_shape(self, embed_table):
        from repro import nn

        encoder = TupleEncoder(embed_table, embedding_threshold=20, embedding_dim=16)
        feature = nn.Tensor(np.random.default_rng(0).normal(size=(4, 16)))
        logits = encoder.decode_logits(1, feature)
        assert logits.shape == (4, embed_table.column("large").domain_size)

    def test_direct_decoding_passthrough(self, embed_table):
        from repro import nn

        encoder = TupleEncoder(embed_table)
        block = nn.Tensor(np.zeros((2, 5)))
        assert encoder.decode_logits(0, block) is block


def _check_autoregressive(model, table, column_index):
    """Changing columns >= column_index must not change that column's output."""
    rng = np.random.default_rng(0)
    base = table.encoded()[:8].copy()
    perturbed = base.copy()
    position = model.order.index(column_index)
    for later in model.order[position:]:
        perturbed[:, later] = rng.integers(0, table.domain_sizes[later], size=8)
    base_probs = model.conditional_probs(column_index, base)
    perturbed_probs = model.conditional_probs(column_index, perturbed)
    np.testing.assert_allclose(base_probs, perturbed_probs, atol=1e-12)


class TestMADEModel:
    def test_conditional_outputs_are_distributions(self, embed_table):
        model = MADEModel(embed_table, hidden_sizes=(32, 32), seed=0)
        codes = embed_table.encoded()[:16]
        for column in range(embed_table.num_columns):
            probs = model.conditional_probs(column, codes)
            assert probs.shape == (16, embed_table.domain_sizes[column])
            np.testing.assert_allclose(probs.sum(axis=1), np.ones(16), atol=1e-9)
            assert probs.min() >= 0.0

    @pytest.mark.parametrize("column", [0, 1, 2])
    def test_autoregressive_property_natural_order(self, embed_table, column):
        model = MADEModel(embed_table, hidden_sizes=(32, 32), seed=1)
        _check_autoregressive(model, embed_table, column)

    @pytest.mark.parametrize("column", [0, 1, 2])
    def test_autoregressive_property_custom_order(self, embed_table, column):
        model = MADEModel(embed_table, hidden_sizes=(32,), order=[2, 0, 1], seed=2)
        _check_autoregressive(model, embed_table, column)

    def test_first_column_in_order_is_unconditional(self, embed_table):
        model = MADEModel(embed_table, hidden_sizes=(32, 32), order=[1, 2, 0], seed=0)
        rng = np.random.default_rng(0)
        random_codes = np.stack([
            rng.integers(0, size, 12) for size in embed_table.domain_sizes
        ], axis=1)
        probs = model.conditional_probs(1, random_codes)
        # The first column in the order must produce the same (marginal)
        # distribution regardless of the input tuple.
        np.testing.assert_allclose(probs, np.broadcast_to(probs[0], probs.shape),
                                   atol=1e-12)

    def test_invalid_order_rejected(self, embed_table):
        with pytest.raises(ValueError):
            MADEModel(embed_table, order=[0, 0, 1])

    def test_log_prob_sums_conditionals(self, embed_table):
        model = MADEModel(embed_table, hidden_sizes=(16,), seed=0)
        codes = embed_table.encoded()[:5]
        expected = np.zeros(5)
        for column in range(embed_table.num_columns):
            probs = model.conditional_probs(column, codes)
            expected += np.log(probs[np.arange(5), codes[:, column]])
        np.testing.assert_allclose(model.log_prob(codes), expected, atol=1e-9)

    def test_nll_matches_log_prob(self, embed_table):
        model = MADEModel(embed_table, hidden_sizes=(16,), seed=0)
        codes = embed_table.encoded()[:32]
        nll = model.nll(codes).item()
        assert nll == pytest.approx(-model.log_prob(codes).mean(), rel=1e-6)


class TestFusedConditionalKernel:
    """Bit-exactness of the column-sliced serving fast path.

    The fused :meth:`MADEModel.conditional_probs` must return the *very bits*
    of the unfused reference (full forward, slice one column) — not merely
    values within tolerance — because the serving stack's prefix
    deduplication, caching and chunking all rely on regrouping rows freely.
    """

    @pytest.mark.parametrize("order", [None, [2, 0, 1]])
    def test_sliced_equals_full_forward_bitwise(self, embed_table, order):
        model = MADEModel(embed_table, hidden_sizes=(24, 24), order=order,
                          seed=4)
        codes = embed_table.encoded()[:48]
        for column in range(embed_table.num_columns):
            fused = model.conditional_probs(column, codes)
            reference = model.conditional_probs_unfused(column, codes)
            assert np.array_equal(fused, reference)

    def test_row_subsets_return_identical_bits(self, embed_table):
        # Row-exactness: evaluating any subset, in any order, with repeats,
        # returns exactly the rows of the full-batch result.
        model = MADEModel(embed_table, hidden_sizes=(24, 24), seed=4)
        codes = embed_table.encoded()[:48]
        full = model.conditional_probs(1, codes)
        subset = np.array([7, 3, 3, 47, 0, 21])
        assert np.array_equal(model.conditional_probs(1, codes[subset]),
                              full[subset])

    def test_shared_placeholder_columns_are_exact(self, embed_table):
        # Serving batches hold a shared placeholder (0) in every not-yet
        # sampled column; the kernel's broadcast shortcut for such constant
        # columns must not change a single bit.
        model = MADEModel(embed_table, hidden_sizes=(24, 24), seed=4)
        codes = embed_table.encoded()[:48].copy()
        codes[:, 2] = 0
        assert np.array_equal(model.conditional_probs(1, codes),
                              model.conditional_probs_unfused(1, codes))

    def test_no_hidden_layer_model_still_exact(self, embed_table):
        model = MADEModel(embed_table, hidden_sizes=(), seed=4)
        codes = embed_table.encoded()[:16]
        for column in range(embed_table.num_columns):
            assert np.array_equal(
                model.conditional_probs(column, codes),
                model.conditional_probs_unfused(column, codes))


class TestColumnNetworkModel:
    def test_conditional_outputs_are_distributions(self, embed_table):
        model = ColumnNetworkModel(embed_table, hidden_sizes=(16, 16), seed=0)
        codes = embed_table.encoded()[:8]
        for column in range(embed_table.num_columns):
            probs = model.conditional_probs(column, codes)
            np.testing.assert_allclose(probs.sum(axis=1), np.ones(8), atol=1e-9)

    @pytest.mark.parametrize("column", [0, 1, 2])
    def test_autoregressive_property(self, embed_table, column):
        model = ColumnNetworkModel(embed_table, hidden_sizes=(16,), seed=1)
        _check_autoregressive(model, embed_table, column)

    def test_training_reduces_loss(self, embed_table):
        model = ColumnNetworkModel(embed_table, hidden_sizes=(32,), seed=0)
        trainer = Trainer(model, embed_table, batch_size=128, learning_rate=5e-3)
        first = trainer.train_epoch()
        for _ in range(5):
            last = trainer.train_epoch()
        assert last < first


class TestTraining:
    def test_data_entropy_of_uniform_unique_rows(self):
        table = make_correlated_table(
            [ColumnSpec("a", 64, correlation=0.0, skew=0.0)], num_rows=64, seed=0)
        # Not exactly uniform, but entropy is bounded by log2(64).
        assert 0 < data_entropy_bits(table) <= 6.0 + 1e-9

    def test_training_reduces_loss_and_entropy_gap(self, embed_table):
        model = MADEModel(embed_table, hidden_sizes=(32, 32), seed=0)
        trainer = Trainer(model, embed_table, batch_size=128, learning_rate=5e-3)
        initial_gap = trainer.entropy_gap_bits(sample_rows=None)
        history = trainer.train(epochs=6)
        final_gap = trainer.entropy_gap_bits(sample_rows=None)
        assert history.num_epochs == 6
        assert history.epoch_losses_bits[-1] < history.epoch_losses_bits[0]
        assert final_gap < initial_gap

    def test_track_entropy_gap_option(self, embed_table):
        model = MADEModel(embed_table, hidden_sizes=(16,), seed=0)
        trainer = Trainer(model, embed_table, batch_size=256)
        history = trainer.train(epochs=2, track_entropy_gap=True)
        assert len(history.epoch_entropy_gaps_bits) == 2

    def test_cross_entropy_bits_nonnegative_vs_entropy(self, embed_table):
        model = MADEModel(embed_table, hidden_sizes=(16,), seed=0)
        cross = cross_entropy_bits(model, embed_table.encoded())
        assert cross >= data_entropy_bits(embed_table) - 1e-6

    def test_fine_tune_runs(self, embed_table):
        model = MADEModel(embed_table, hidden_sizes=(16,), seed=0)
        trainer = Trainer(model, embed_table, batch_size=256)
        trainer.train(epochs=1)
        history = trainer.fine_tune(embed_table, epochs=1)
        assert history.num_epochs == 2


class TestNaruConfig:
    def test_invalid_architecture(self):
        with pytest.raises(ValueError):
            NaruConfig(architecture="transformer")

    def test_invalid_hidden_sizes(self):
        with pytest.raises(ValueError):
            NaruConfig(hidden_sizes=())

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            NaruConfig(progressive_samples=0)

    def test_with_overrides(self):
        config = NaruConfig(epochs=3)
        updated = config.with_overrides(epochs=7, progressive_samples=2000)
        assert updated.epochs == 7
        assert updated.progressive_samples == 2000
        assert config.epochs == 3
