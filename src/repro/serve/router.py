"""Routing table-qualified queries across a fleet of per-model engines.

:class:`FleetRouter` is the serving half of multi-model estimation.  It fronts
a :class:`repro.serve.registry.ModelRegistry` with one thin
:class:`~repro.serve.engine.EstimationEngine` per registered relation and

* **routes** every submitted query to the engine named by its ``table``
  qualifier (falling back to a configurable default route; unroutable
  queries raise :class:`RoutingError` immediately — nothing is dropped),
* keeps **per-model micro-batches**: each engine fills and dispatches its own
  batches, so a burst against one relation cannot delay another relation's
  queries past its own batch boundary,
* splits one shared ``cache_entries`` budget evenly into **per-model LRU
  caches** (conditional-probability distributions are only reusable within a
  model, so the caches are private but the memory budget is fleet-wide), and
* **merges** the per-model reports into a single :class:`FleetReport` with
  per-route throughput and cache statistics.

Determinism: every query's random stream is keyed by ``(seed, workload
index)`` where the index is the *global* submission order, not the position
inside the routed engine.  Estimates are therefore independent of both
micro-batch boundaries *and* routing order — running the same mixed workload
with ``batch_size=1`` or ``batch_size=64`` returns the same numbers per model
(up to float round-off), and so does :func:`run_fleet_sequential`, the
N-independent-sequential-engines baseline of the ``serve_multi`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..query.predicates import Query
from .engine import EngineReport, EstimationEngine, run_sequential
from .registry import ModelRegistry

__all__ = ["RoutingError", "RoutedResult", "FleetStats", "FleetReport",
           "FleetRouter", "run_fleet_sequential"]


class RoutingError(LookupError):
    """A query could not be mapped to a registered relation.

    Raised at submission time — a misrouted query fails loudly instead of
    silently vanishing from the report.
    """


@dataclass(frozen=True)
class RoutedResult:
    """Per-query output of the fleet: an estimate plus the route that served it."""

    index: int
    route: str
    query: Query
    selectivity: float
    cardinality: float
    batch_index: int


@dataclass
class FleetStats:
    """Fleet-wide throughput statistics with a per-route breakdown."""

    num_queries: int = 0
    num_models: int = 0
    elapsed_s: float = 0.0
    cache_entries_total: int = 0
    cache_entries_per_model: int = 0
    #: Route name -> that engine's ``EngineStats.as_dict()`` (includes the
    #: route's query count, batch count, QPS and cache hit/miss counters).
    routes: dict[str, dict] = field(default_factory=dict)

    @property
    def queries_per_second(self) -> float:
        return self.num_queries / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "num_queries": self.num_queries,
            "num_models": self.num_models,
            "elapsed_s": self.elapsed_s,
            "queries_per_second": self.queries_per_second,
            "cache_entries_total": self.cache_entries_total,
            "cache_entries_per_model": self.cache_entries_per_model,
            "routes": self.routes,
        }


@dataclass
class FleetReport:
    """Merged per-model reports of one served mixed workload."""

    #: All results in global submission order.
    results: list[RoutedResult] = field(default_factory=list)
    #: Route name -> the full per-model :class:`EngineReport`.
    routes: dict[str, EngineReport] = field(default_factory=dict)
    stats: FleetStats = field(default_factory=FleetStats)

    @property
    def selectivities(self) -> np.ndarray:
        return np.asarray([result.selectivity for result in self.results])

    @property
    def cardinalities(self) -> np.ndarray:
        return np.asarray([result.cardinality for result in self.results])

    def route_of(self, index: int) -> str:
        """The relation that served the query at one global index."""
        return self.results[index].route


def _merge_reports(routes: dict[str, EngineReport], *, num_models: int,
                   cache_entries_total: int,
                   cache_entries_per_model: int) -> FleetReport:
    """Fold per-model reports into one fleet report in global index order."""
    merged = [
        RoutedResult(index=result.index, route=route, query=result.query,
                     selectivity=result.selectivity,
                     cardinality=result.cardinality,
                     batch_index=result.batch_index)
        for route, report in routes.items()
        for result in report.results
    ]
    merged.sort(key=lambda result: result.index)
    stats = FleetStats(
        num_queries=len(merged),
        num_models=num_models,
        elapsed_s=sum(report.stats.elapsed_s for report in routes.values()),
        cache_entries_total=cache_entries_total,
        cache_entries_per_model=cache_entries_per_model,
        routes={route: report.stats.as_dict()
                for route, report in routes.items()},
    )
    return FleetReport(results=merged, routes=routes, stats=stats)


class FleetRouter:
    """Route table-qualified queries to per-model estimation engines.

    Parameters
    ----------
    registry:
        The model fleet.  Estimators are built and fitted lazily on the first
        query routed to them; call ``registry.fit_all()`` up front to keep
        training cost out of the serving path.
    batch_size:
        Per-model micro-batch capacity (each engine batches independently).
    num_samples:
        Progressive sample paths per query; ``None`` defers to each
        estimator's own config.
    use_cache:
        Enable the per-model conditional-probability LRU caches.
    cache_entries:
        *Shared* fleet-wide cache budget (total distributions across all
        models); each model receives an equal ``cache_entries / len(registry)``
        slice, sized at registration count so the split is stable.
    seed:
        Base seed of the per-query random streams (shared by all engines, so
        a query's stream depends only on its global index).
    default_route:
        Relation serving queries without a ``table`` qualifier.  Defaults to
        the registry's only relation when it has exactly one; with several
        models and no default, unqualified queries raise
        :class:`RoutingError`.
    """

    def __init__(self, registry: ModelRegistry, *, batch_size: int = 32,
                 num_samples: int | None = None, use_cache: bool = True,
                 cache_entries: int = 262144, seed: int = 0,
                 default_route: str | None = None) -> None:
        if len(registry) == 0:
            raise ValueError("the registry has no relations to serve")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if default_route is not None and default_route not in registry:
            raise ValueError(f"default route {default_route!r} is not a "
                             f"registered relation ({', '.join(registry.names)})")
        if default_route is None and len(registry) == 1:
            default_route = registry.names[0]
        self.registry = registry
        self.batch_size = batch_size
        self.num_samples = num_samples
        self.use_cache = use_cache
        self.cache_entries = cache_entries
        self.cache_entries_per_model = max(1, cache_entries // len(registry))
        self.seed = seed
        self.default_route = default_route
        self._engines: dict[str, EstimationEngine] = {}
        self._next_index = 0

    # ------------------------------------------------------------------ #
    def resolve_route(self, query: Query) -> str:
        """The relation a query routes to; raises :class:`RoutingError` if none."""
        route = query.table or self.default_route
        if route is None:
            raise RoutingError(
                f"query {query!r} has no table qualifier and the fleet "
                f"serves {len(self.registry)} relations "
                f"({', '.join(self.registry.names)}); qualify the query or "
                "set default_route")
        if route not in self.registry:
            raise RoutingError(
                f"query {query!r} targets unregistered relation {route!r}; "
                f"registered: {', '.join(self.registry.names)}")
        return route

    def engine(self, route: str) -> EstimationEngine:
        """The per-model engine of one route, created on first use."""
        engine = self._engines.get(route)
        if engine is None:
            engine = EstimationEngine(
                self.registry.estimator(route), batch_size=self.batch_size,
                num_samples=self.num_samples, use_cache=self.use_cache,
                cache_entries=self.cache_entries_per_model, seed=self.seed)
            self._engines[route] = engine
        return engine

    # ------------------------------------------------------------------ #
    def submit(self, query: Query) -> str:
        """Route and enqueue one query; returns the route it was assigned.

        The query's random stream is keyed by its global submission index, so
        its estimate is independent of what else is in flight.  Raises
        :class:`RoutingError` (without consuming an index) when the query
        cannot be routed.
        """
        route = self.resolve_route(query)
        index = self._next_index
        self._next_index += 1
        self.engine(route).submit(query, index=index)
        return route

    def flush(self) -> None:
        """Dispatch every engine's partially filled micro-batch."""
        for engine in self._engines.values():
            engine.flush()

    def run(self, queries: list[Query]) -> FleetReport:
        """Serve a whole mixed workload and return the merged fleet report.

        Like :meth:`EstimationEngine.run`, each call is its own workload
        scope: global indices restart at zero and the report covers only this
        call; only the per-model caches carry over.
        """
        if any(engine._pending for engine in self._engines.values()):
            raise RuntimeError("submitted queries are still pending; call "
                               "flush() and report() before run()")
        for engine in self._engines.values():
            engine.reset()
        self._next_index = 0
        for query in queries:
            self.submit(query)
        self.flush()
        return self.report()

    def report(self) -> FleetReport:
        """Merged snapshot of everything served so far, in submission order."""
        routes = {route: engine.report()
                  for route, engine in self._engines.items()}
        return _merge_reports(routes, num_models=len(self.registry),
                              cache_entries_total=self.cache_entries,
                              cache_entries_per_model=self.cache_entries_per_model)


def run_fleet_sequential(registry: ModelRegistry, queries: list[Query], *,
                         num_samples: int | None = None, seed: int = 0,
                         default_route: str | None = None) -> FleetReport:
    """N-independent-sequential-engines baseline for a mixed workload.

    Routes the workload exactly like :class:`FleetRouter`, then answers each
    relation's queries one at a time through :func:`run_sequential` — no
    micro-batching, no caching, models visited one after another.  Queries
    keep their global submission indices, so the estimates match the fleet's
    (up to float round-off); the ``serve_multi`` benchmark reports the
    throughput ratio between the two.
    """
    router = FleetRouter(registry, batch_size=1, num_samples=num_samples,
                         use_cache=False, seed=seed, default_route=default_route)
    per_route: dict[str, tuple[list[int], list[Query]]] = {}
    for index, query in enumerate(queries):
        route = router.resolve_route(query)
        indices, routed = per_route.setdefault(route, ([], []))
        indices.append(index)
        routed.append(query)
    routes = {
        route: run_sequential(registry.estimator(route), routed,
                              num_samples=num_samples, seed=seed,
                              indices=indices)
        for route, (indices, routed) in per_route.items()
    }
    return _merge_reports(routes, num_models=len(registry),
                          cache_entries_total=0, cache_entries_per_model=0)
