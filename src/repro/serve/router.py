"""Routing table-qualified queries across a replicated fleet of engines.

:class:`FleetRouter` is the serving half of multi-model estimation.  It fronts
a :class:`repro.serve.registry.ModelRegistry` with one
:class:`ReplicaGroup` per registered relation — N independently serving
:class:`~repro.serve.engine.EstimationEngine` replicas over the relation's one
trained model — and

* **routes** every submitted query to the group named by its ``table``
  qualifier (falling back to a configurable default route; unroutable
  queries raise :class:`RoutingError` immediately — nothing is dropped),
  then to a replica by a deterministic hash of ``(relation, global workload
  index)``,
* picks the serving **ensemble member by query shape**: the relation's
  primary estimator when its capability set covers the query's shape
  (:func:`repro.query.shapes.query_shape`), the relation's registered
  fallback estimator (``register_table(..., fallback=...)``) otherwise —
  e.g. a many-branch disjunction past Naru's inclusion–exclusion bound.
  Conjunctive traffic always lands on the primary, untouched; a query
  neither member can serve raises :class:`RoutingError` naming the shape,
  the capabilities and every available route,
* keeps **per-replica micro-batches**: each engine fills and dispatches its
  own batches, so a burst against one relation cannot delay another
  relation's queries past its own batch boundary, and a hot relation's burst
  spreads across its replicas,
* enforces **admission control**: each replica group bounds its undispatched
  queries at ``max_pending``; an overflowing submission either forces the
  fullest replica to dispatch early (``overflow="block"`` — backpressure,
  estimates unchanged because batching never changes the numbers) or is
  refused with a typed :class:`AdmissionError` (``overflow="shed"`` — load
  shedding, counted per group and surfaced in the report),
* optionally fronts the whole fleet with an exact-match **result cache**
  (:class:`repro.serve.cache.ResultCache`, keyed on the canonicalised query):
  a repeat of an already answered query skips routing entirely, and
* splits one shared ``cache_entries`` budget evenly into per-replica LRU
  conditional caches (plus one slice for the result cache when enabled), so
  the memory budget is fleet-wide no matter how many replicas serve,
* **merges** the per-replica reports into a single :class:`FleetReport` with
  per-route and per-replica throughput, shed counts and cache statistics.

Determinism: every query's random stream is keyed by ``(seed, workload
index)`` where the index is the *global* submission order, not the position
inside the routed engine.  Estimates are therefore independent of micro-batch
boundaries, routing order *and* the replica count — running the same mixed
workload with ``batch_size=1`` or ``batch_size=64``, with ``replicas=1`` or
``replicas=4``, returns the same numbers per model (up to float round-off),
and so does :func:`run_fleet_sequential`, the N-independent-sequential-engines
baseline of the ``serve_multi`` and ``serve_replicated`` benchmarks.  The
result cache preserves this contract on workloads of distinct queries (an
exact-match cache can only hit on a repeat); a repeated query is served the
stored estimate of its earliest dispatched occurrence instead of re-sampling
under its own stream — results enter the cache the moment their micro-batch
dispatches, so repeats hit both across workload scopes and inside one.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..query.metrics import q_error
from ..query.predicates import DNFQuery, Query
from ..query.shapes import query_shape
from .cache import (ConditionalProbCache, PackedConditionalCache, ResultCache,
                    canonical_query_key)
from .engine import (BatchRecord, EngineReport, EngineStats, EstimateResult,
                     EstimationEngine, run_sequential)
from .registry import ModelRegistry

__all__ = ["RoutingError", "AdmissionError", "RoutedResult", "FleetStats",
           "FleetReport", "ReplicaGroup", "FleetRouter",
           "run_fleet_sequential", "latency_percentiles", "replica_for",
           "resolve_route"]

#: Overflow policies of the per-group admission controller.
_OVERFLOW_POLICIES = ("block", "shed")


def replica_for(route: str, index: int, replicas: int) -> int:
    """Deterministic replica of one ``(relation, global index)`` pair.

    A CRC of ``"route:index"`` (not Python's randomised ``hash``) so the
    assignment is stable across processes and replays — this single function
    is the placement contract shared by :class:`ReplicaGroup` (in-process
    replicas) and :class:`repro.serve.procfleet.ProcessFleet` (replicas
    sharded across OS worker processes), which is what makes
    ``workers=1 ≡ workers=N`` provable rather than coincidental.
    """
    return zlib.crc32(f"{route}:{index}".encode()) % replicas


def resolve_route(registry: ModelRegistry, query: Query,
                  default_route: str | None = None) -> str:
    """The relation a query routes to; raises :class:`RoutingError` if none.

    The routing half of the fleet contract, shared by :class:`FleetRouter`
    and :class:`repro.serve.procfleet.ProcessFleet`: the query's ``table``
    qualifier wins, an unqualified query falls back to ``default_route``,
    and anything unroutable fails loudly at submission time.
    """
    route = query.table or default_route
    if route is None:
        raise RoutingError(
            f"query {query!r} has no table qualifier and the fleet "
            f"serves {len(registry)} relations "
            f"({', '.join(registry.names)}); qualify the query or "
            "set default_route")
    if route not in registry:
        raise RoutingError(
            f"query {query!r} targets unregistered relation {route!r}; "
            f"registered: {', '.join(registry.names)}")
    return route


def _validate_admission(max_pending: int | None, overflow: str) -> None:
    """One source of truth for the admission-control knob invariants."""
    if max_pending is not None and max_pending < 1:
        raise ValueError("max_pending must be at least 1 (or None)")
    if overflow not in _OVERFLOW_POLICIES:
        raise ValueError(f"overflow must be one of {_OVERFLOW_POLICIES}, "
                         f"got {overflow!r}")
    if overflow == "shed" and max_pending is None:
        raise ValueError("overflow='shed' requires max_pending: with an "
                         "unbounded queue nothing can ever be shed")


def latency_percentiles(latencies_ms, weights=None) -> dict:
    """p50/p95/p99 of a set of latencies, optionally query-weighted.

    Args:
        latencies_ms: Per-observation latencies in milliseconds (typically
            per-micro-batch dispatch latencies, or per-query queue waits).
        weights: Optional per-observation weights (typically the batch's
            query count, so every query contributes the latency of the
            dispatch that served it — the quantity a per-query latency SLO
            is about).  ``None`` weights every observation equally; weights
            of zero drop their observation.  Negative weights are a caller
            bug and raise ``ValueError`` — silently clipping them would
            report percentiles over a different population than asked for.

    Returns:
        ``{"p50": ..., "p95": ..., "p99": ...}`` in milliseconds; all zeros
        when ``latencies_ms`` is empty, so reports of empty workload scopes
        stay well-formed.
    """
    latencies = np.asarray(list(latencies_ms), dtype=float)
    if latencies.size == 0:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    if weights is not None:
        counts = np.asarray(list(weights), dtype=int)
        if counts.shape != latencies.shape:
            raise ValueError("weights and latencies_ms must have equal length")
        if np.any(counts < 0):
            raise ValueError(f"weights must be non-negative, got "
                             f"{counts[counts < 0].tolist()}")
        latencies = np.repeat(latencies, counts)
        if latencies.size == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {f"p{int(q * 100)}": float(np.quantile(latencies, q))
            for q in (0.50, 0.95, 0.99)}


class RoutingError(LookupError):
    """A query could not be mapped to a registered relation.

    Raised at submission time — a misrouted query fails loudly instead of
    silently vanishing from the report.
    """


class AdmissionError(RuntimeError):
    """A replica group refused a query because its pending queue is full.

    Raised at submission time under the ``shed`` overflow policy, *before*
    the query consumes a global workload index — a shed query leaves no trace
    in the random streams of the queries around it.  Carries the route, the
    configured bound and the refused query so callers can retry, divert or
    downgrade.
    """

    def __init__(self, route: str, max_pending: int, query: Query) -> None:
        super().__init__(
            f"replica group {route!r} is at its admission limit "
            f"({max_pending} pending queries); query {query!r} was shed")
        self.route = route
        self.max_pending = max_pending
        self.query = query


@dataclass(frozen=True)
class RoutedResult:
    """Per-query output of the fleet: an estimate plus the route that served it.

    ``replica`` is the index of the engine replica inside the route's group;
    ``-1`` (with ``batch_index=-1``) marks a result served straight from the
    fleet-wide result cache without touching any engine.  ``queue_wait_ms``
    and ``e2e_ms`` carry the engine's end-to-end accounting (zero for
    cache-served results, which never queue).  ``estimator`` names what
    actually answered: the serving estimator (primary or fallback of the
    route's ensemble), ``"cache"`` for result-cache hits, or ``""`` on
    reports that predate estimator accounting.  ``route`` is always the pure
    relation name, whichever ensemble member served.
    """

    index: int
    route: str
    query: Query
    selectivity: float
    cardinality: float
    batch_index: int
    replica: int = 0
    queue_wait_ms: float = 0.0
    e2e_ms: float = 0.0
    estimator: str = ""

    @property
    def from_result_cache(self) -> bool:
        """Whether this answer came from the result cache, not a model."""
        return self.replica < 0


@dataclass
class FleetStats:
    """Fleet-wide throughput statistics with per-route/per-replica breakdown."""

    num_queries: int = 0
    num_models: int = 0
    elapsed_s: float = 0.0
    cache_entries_total: int = 0
    cache_entries_per_model: int = 0
    #: Queries refused under the ``shed`` overflow policy, fleet-wide.
    shed: int = 0
    #: ``ResultCacheStats.as_dict()`` of the fleet result cache (``None`` off).
    #: Like the conditional-cache counters, these are lifetime-of-the-cache
    #: numbers — caches survive workload scopes, so their hit/miss tallies
    #: accumulate across ``run()`` calls.  Per-scope cache-served counts live
    #: in :attr:`FleetReport.result_cache_hits` and the per-route
    #: ``result_cache_hits`` entries.
    result_cache: dict | None = None
    #: Fleet-wide p50/p95/p99 dispatch latency (ms), query-weighted: every
    #: query contributes the latency of the micro-batch that served it.
    #: Cache-served queries never touch an engine and are excluded.
    latency_ms: dict | None = None
    #: Fleet-wide p50/p95/p99 queueing delay (ms): per-query time between
    #: submission and the dispatch start of the query's micro-batch.  Same
    #: exclusion as ``latency_ms``: cache-served queries never queue.
    queue_wait_ms: dict | None = None
    #: Fleet-wide p50/p95/p99 end-to-end latency (ms): per-query time from
    #: submission to dispatch completion — ``queue_wait + dispatch``, the
    #: latency a caller actually observes and the quantity an end-to-end SLO
    #: is stated against.
    e2e_ms: dict | None = None
    #: Micro-batches this scope dispatched by a flush deadline
    #: (``flush_after_ms``) rather than by filling up, fleet-wide.
    timeout_flushes: int = 0
    #: Fleet-wide row accounting of the fused hot path (summed over routes):
    #: sample-path rows that needed a conditional, rows left after prefix
    #: deduplication, rows actually pushed through a network, and sampler
    #: ``conditional_probs`` calls.
    rows_submitted: int = 0
    unique_rows: int = 0
    rows_evaluated: int = 0
    forward_calls: int = 0
    #: Per-worker serving tallies when the report came from a
    #: :class:`repro.serve.procfleet.ProcessFleet` (``None`` on in-process
    #: routers): worker id -> pid, log path, hosted engines, query/batch
    #: counts, summed dispatch latency and busy-CPU time.
    workers: dict[str, dict] | None = None
    #: Route name -> ``{"data_epoch", "model_epoch", "staleness"}`` of every
    #: registered relation at report time (``None`` on reports that predate
    #: epoch accounting, e.g. the sequential baseline).  ``staleness`` counts
    #: the ingests the serving model is behind the data — non-zero while the
    #: fleet deliberately serves stale estimates awaiting a refresh.
    epochs: dict[str, dict] | None = None
    #: Estimator name -> aggregated serving stats across every unit that
    #: estimator served: query count, summed dispatch time, QPS, the serving
    #: ``units`` and per-estimator ``latency_ms``/``e2e_ms`` percentiles.
    #: The per-estimator accuracy companion lives on the report
    #: (:meth:`FleetReport.accuracy_by_estimator`) because accuracy needs
    #: ground truths the router never sees.  ``None`` on reports that
    #: predate estimator accounting (e.g. the cross-process fleet).
    estimators: dict[str, dict] | None = None
    #: Serving-unit name -> aggregated group stats: the union of the
    #: engine-stats keys (query/batch counts, QPS, the group cache's
    #: counters) plus ``relation`` and ``estimator`` identification,
    #: ``num_replicas``, ``shed``, ``result_cache_hits``, per-route
    #: ``latency_ms``/``queue_wait_ms``/``e2e_ms`` percentiles, the group's
    #: ``timeout_flushes`` count, the adaptive controller's ``batch_trace``
    #: (``None`` on fixed-batch routers) and a ``replicas`` list holding each
    #: replica engine's own ``EngineStats.as_dict()``.  A unit is a relation
    #: name for the primary replica group and ``"<relation>@fallback"`` for
    #: the relation's fallback estimator.
    #: Cache counters live at route level only — replicas share one group
    #: cache, so the per-replica dicts carry ``cache=None``.
    routes: dict[str, dict] = field(default_factory=dict)

    @property
    def queries_per_second(self) -> float:
        """Model-dispatch throughput: queries over summed engine batch time.

        ``elapsed_s`` covers engine dispatches only — result-cache hits are
        effectively free, so a scope served entirely from the result cache
        reports 0.0 here.  For end-to-end throughput of cache-heavy runs,
        wall-clock the serving call (the ``serve_replicated`` benchmark
        does exactly that).
        """
        return self.num_queries / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def dedup_ratio(self) -> float:
        """Fleet-wide row shrink factor of prefix deduplication (1.0 idle)."""
        return self.rows_submitted / self.unique_rows if self.unique_rows else 1.0

    @property
    def max_staleness(self) -> int:
        """The worst per-relation staleness in :attr:`epochs` (0 when fresh/unknown)."""
        if not self.epochs:
            return 0
        return max(entry["staleness"] for entry in self.epochs.values())

    def as_dict(self) -> dict:
        """Plain-dict form of the stats, ready for JSON serialisation."""
        return {
            "num_queries": self.num_queries,
            "num_models": self.num_models,
            "elapsed_s": self.elapsed_s,
            "queries_per_second": self.queries_per_second,
            "cache_entries_total": self.cache_entries_total,
            "cache_entries_per_model": self.cache_entries_per_model,
            "shed": self.shed,
            "result_cache": self.result_cache,
            "latency_ms": self.latency_ms,
            "queue_wait_ms": self.queue_wait_ms,
            "e2e_ms": self.e2e_ms,
            "timeout_flushes": self.timeout_flushes,
            "rows_submitted": self.rows_submitted,
            "unique_rows": self.unique_rows,
            "rows_evaluated": self.rows_evaluated,
            "forward_calls": self.forward_calls,
            "dedup_ratio": self.dedup_ratio,
            "workers": self.workers,
            "epochs": self.epochs,
            "max_staleness": self.max_staleness,
            "estimators": self.estimators,
            "routes": self.routes,
        }


@dataclass
class FleetReport:
    """Merged per-replica reports of one served mixed workload."""

    #: All results in global submission order (model-served and cache-served).
    results: list[RoutedResult] = field(default_factory=list)
    #: Route name -> the full per-replica :class:`EngineReport` list.
    routes: dict[str, list[EngineReport]] = field(default_factory=dict)
    stats: FleetStats = field(default_factory=FleetStats)
    #: Lazy index -> route map backing :meth:`route_of` (results are frozen
    #: after construction, so it is built once on first use).
    _route_by_index: dict[int, str] | None = field(default=None, repr=False,
                                                   compare=False)

    @property
    def selectivities(self) -> np.ndarray:
        """Per-query selectivity estimates, in global submission order."""
        return np.asarray([result.selectivity for result in self.results])

    @property
    def cardinalities(self) -> np.ndarray:
        """Per-query cardinality estimates, in global submission order."""
        return np.asarray([result.cardinality for result in self.results])

    def route_of(self, index: int) -> str:
        """The relation that served the query with one global index.

        Looked up by the result's ``index`` field, not list position: under
        :func:`repro.serve.stream.stream_workload` a shed query leaves its
        position-keyed index unused, so indices need not be dense.  Raises
        ``KeyError`` for an index this report holds no result for.
        """
        if self._route_by_index is None:
            self._route_by_index = {result.index: result.route
                                    for result in self.results}
        try:
            return self._route_by_index[index]
        except KeyError:
            raise KeyError(f"no result with global index {index} in this "
                           "report") from None

    def estimator_of(self, index: int) -> str:
        """The estimator that served the query with one global index.

        The primary or fallback estimator's name, ``"cache"`` for
        result-cache hits, ``""`` on reports without estimator accounting.
        Raises ``KeyError`` for an index this report holds no result for.
        """
        for result in self.results:
            if result.index == index:
                return result.estimator
        raise KeyError(f"no result with global index {index} in this report")

    def accuracy_by_estimator(self, true_cardinalities) -> dict[str, dict]:
        """Per-estimator accuracy columns against known true cardinalities.

        Args:
            true_cardinalities: True cardinality per query, indexed by the
                query's *global* index (a sequence or a mapping — anything
                supporting ``true_cardinalities[result.index]``).

        Returns:
            Estimator name -> ``{"num_queries", "median_qerror",
            "p95_qerror", "max_qerror"}``, grouping every served query under
            the estimator that answered it (result-cache hits under
            ``"cache"``).  The accuracy half of the ensemble report; the
            latency half lives in :attr:`FleetStats.estimators`.
        """
        errors_by_estimator: dict[str, list[float]] = {}
        for result in self.results:
            truth = float(true_cardinalities[result.index])
            errors_by_estimator.setdefault(result.estimator, []).append(
                q_error(result.cardinality, truth))
        return {
            name: {
                "num_queries": len(errors),
                "median_qerror": float(np.median(errors)),
                "p95_qerror": float(np.quantile(errors, 0.95)),
                "max_qerror": float(np.max(errors)),
            }
            for name, errors in sorted(errors_by_estimator.items())
        }

    @property
    def result_cache_hits(self) -> int:
        """Queries in this report answered by the fleet result cache."""
        return sum(result.from_result_cache for result in self.results)

    @property
    def queue_wait_percentiles(self) -> dict | None:
        """Fleet-wide p50/p95/p99 per-query queueing delay (ms).

        The time each model-served query sat submitted-but-undispatched
        before its micro-batch started; shorthand for
        ``stats.queue_wait_ms``.
        """
        return self.stats.queue_wait_ms

    @property
    def e2e_percentiles(self) -> dict | None:
        """Fleet-wide p50/p95/p99 per-query end-to-end latency (ms).

        Submission to dispatch completion — queueing delay plus dispatch —
        the latency an end-to-end SLO is stated against; shorthand for
        ``stats.e2e_ms``.
        """
        return self.stats.e2e_ms

    @property
    def dispatch_percentiles(self) -> dict | None:
        """Fleet-wide p50/p95/p99 dispatch latency (ms), query-weighted.

        Shorthand for ``stats.latency_ms``, named to contrast with
        :attr:`queue_wait_percentiles` and :attr:`e2e_percentiles`.
        """
        return self.stats.latency_ms

    def to_dict(self) -> dict:
        """JSON-ready form of the whole report: stats plus per-query results.

        ``stats`` is :meth:`FleetStats.as_dict` (which already carries the
        per-route breakdown, the row-accounting counters and the dedup
        ratio); ``results`` holds one entry per served query in global
        submission order.  The CLI's fleet modes dump exactly this.
        """
        return {
            "stats": self.stats.as_dict(),
            "result_cache_hits": self.result_cache_hits,
            "results": [
                {
                    "index": result.index,
                    "route": result.route,
                    "query": str(result.query),
                    "selectivity": result.selectivity,
                    "cardinality": result.cardinality,
                    "batch_index": result.batch_index,
                    "replica": result.replica,
                    "queue_wait_ms": result.queue_wait_ms,
                    "e2e_ms": result.e2e_ms,
                    "estimator": result.estimator,
                }
                for result in self.results
            ],
        }


def _per_query_latencies(batches) -> tuple[list[float], list[float]]:
    """Flatten batch records into per-query (queue wait, end-to-end) lists.

    Each batched query's end-to-end latency is its own queueing delay plus
    its batch's dispatch latency; the lists are already per-query, so the
    percentile helper needs no weights.
    """
    waits: list[float] = []
    e2es: list[float] = []
    for record in batches:
        for wait_ms in record.queue_wait_ms:
            waits.append(wait_ms)
            e2es.append(wait_ms + record.latency_ms)
    return waits, e2es


def _route_cache_dict(dicts: list[dict | None]) -> dict | None:
    """The route-level conditional-cache counters of one replica group.

    Replicas share one group-wide cache, so every replica's stats dict holds
    the same counters — the first non-``None`` entry *is* the group's.
    """
    for entry in dicts:
        if entry is not None:
            return entry
    return None


def _merge_reports(route_reports: dict[str, list[EngineReport]], *,
                   num_models: int, cache_entries_total: int,
                   cache_entries_per_model: int,
                   cached_results: list[RoutedResult] | None = None,
                   shed_by_route: dict[str, int] | None = None,
                   result_cache_stats: dict | None = None,
                   batch_traces: dict[str, list[int]] | None = None,
                   workers: dict[str, dict] | None = None,
                   epochs: dict[str, dict] | None = None,
                   unit_info: dict[str, dict] | None = None) -> FleetReport:
    """Fold per-replica reports into one fleet report in global index order.

    ``route_reports`` is keyed by *serving unit*: the relation name for its
    primary replica group, ``"<relation>@fallback"`` for its fallback
    estimator.  ``unit_info`` maps each unit to its ``{"relation",
    "estimator"}`` identification; callers that predate the ensemble (the
    cross-process fleet) omit it, and their reports carry the unit name as
    the relation with no estimator breakdown.
    """
    cached_results = cached_results or []
    shed_by_route = shed_by_route or {}
    batch_traces = batch_traces or {}
    info = unit_info or {}

    def relation_of(unit: str) -> str:
        return info.get(unit, {}).get("relation", unit)

    def estimator_of(unit: str) -> str:
        return info.get(unit, {}).get("estimator", "")

    merged = [
        RoutedResult(index=result.index, route=relation_of(unit),
                     query=result.query,
                     selectivity=result.selectivity,
                     cardinality=result.cardinality,
                     batch_index=result.batch_index, replica=replica,
                     queue_wait_ms=result.queue_wait_ms,
                     e2e_ms=result.e2e_ms,
                     estimator=estimator_of(unit))
        for unit, reports in route_reports.items()
        for replica, report in enumerate(reports)
        for result in report.results
    ]
    merged.extend(cached_results)
    merged.sort(key=lambda result: result.index)
    cached_by_route: dict[str, int] = {}
    for result in cached_results:
        cached_by_route[result.route] = cached_by_route.get(result.route, 0) + 1
    routes_stats: dict[str, dict] = {}
    all_batches = []
    for unit, reports in route_reports.items():
        route = unit
        replica_stats = [report.stats for report in reports]
        elapsed_s = sum(stats.elapsed_s for stats in replica_stats)
        num_queries = sum(stats.num_queries for stats in replica_stats)
        route_batches = [record for report in reports
                         for record in report.batches]
        all_batches.extend(route_batches)
        route_waits, route_e2es = _per_query_latencies(route_batches)
        rows_submitted = sum(stats.rows_submitted for stats in replica_stats)
        unique_rows = sum(stats.unique_rows for stats in replica_stats)
        routes_stats[route] = {
            "relation": relation_of(unit),
            "estimator": estimator_of(unit),
            "num_queries": num_queries,
            "num_batches": sum(stats.num_batches for stats in replica_stats),
            "elapsed_s": elapsed_s,
            "queries_per_second": num_queries / elapsed_s if elapsed_s > 0 else 0.0,
            "num_samples": replica_stats[0].num_samples,
            "batch_size": replica_stats[0].batch_size,
            "rows_submitted": rows_submitted,
            "unique_rows": unique_rows,
            "rows_evaluated": sum(stats.rows_evaluated
                                  for stats in replica_stats),
            "forward_calls": sum(stats.forward_calls
                                 for stats in replica_stats),
            "dedup_ratio": rows_submitted / unique_rows if unique_rows else 1.0,
            "cache": _route_cache_dict([stats.cache for stats in replica_stats]),
            "num_replicas": len(reports),
            # Replicas share one group-wide conditional cache, so cache
            # counters only exist at route level: nulling the per-replica
            # copies stops consumers from summing the same counters N times.
            "replicas": [{**stats.as_dict(), "cache": None}
                         for stats in replica_stats],
            "shed": shed_by_route.get(route, 0),
            "result_cache_hits": cached_by_route.get(route, 0),
            "latency_ms": latency_percentiles(
                [record.latency_ms for record in route_batches],
                weights=[record.num_queries for record in route_batches]),
            "queue_wait_ms": latency_percentiles(route_waits),
            "e2e_ms": latency_percentiles(route_e2es),
            "timeout_flushes": sum(stats.timeout_flushes
                                   for stats in replica_stats),
            "batch_trace": batch_traces.get(route),
        }
    estimators_stats: dict[str, dict] | None = None
    if unit_info is not None:
        # Per-estimator latency columns: fold every unit one estimator
        # served (a fallback may back several relations) into one row.
        per_estimator: dict[str, dict] = {}
        for unit, reports in route_reports.items():
            entry = per_estimator.setdefault(estimator_of(unit), {
                "units": [], "num_queries": 0, "elapsed_s": 0.0,
                "batches": []})
            entry["units"].append(unit)
            entry["num_queries"] += routes_stats[unit]["num_queries"]
            entry["elapsed_s"] += routes_stats[unit]["elapsed_s"]
            entry["batches"].extend(record for report in reports
                                    for record in report.batches)
        if cached_results:
            entry = per_estimator.setdefault("cache", {
                "units": [], "num_queries": 0, "elapsed_s": 0.0,
                "batches": []})
            entry["num_queries"] += len(cached_results)
        estimators_stats = {}
        for name, entry in sorted(per_estimator.items()):
            batches = entry["batches"]
            _, batch_e2es = _per_query_latencies(batches)
            estimators_stats[name] = {
                "units": sorted(entry["units"]),
                "num_queries": entry["num_queries"],
                "elapsed_s": entry["elapsed_s"],
                "queries_per_second": (entry["num_queries"] / entry["elapsed_s"]
                                       if entry["elapsed_s"] > 0 else 0.0),
                "latency_ms": latency_percentiles(
                    [record.latency_ms for record in batches],
                    weights=[record.num_queries for record in batches]),
                "e2e_ms": latency_percentiles(batch_e2es),
            }
    fleet_waits, fleet_e2es = _per_query_latencies(all_batches)
    stats = FleetStats(
        num_queries=len(merged),
        num_models=num_models,
        elapsed_s=sum(entry["elapsed_s"] for entry in routes_stats.values()),
        cache_entries_total=cache_entries_total,
        cache_entries_per_model=cache_entries_per_model,
        shed=sum(shed_by_route.values()),
        result_cache=result_cache_stats,
        latency_ms=latency_percentiles(
            [record.latency_ms for record in all_batches],
            weights=[record.num_queries for record in all_batches]),
        queue_wait_ms=latency_percentiles(fleet_waits),
        e2e_ms=latency_percentiles(fleet_e2es),
        timeout_flushes=sum(entry["timeout_flushes"]
                            for entry in routes_stats.values()),
        rows_submitted=sum(entry["rows_submitted"]
                           for entry in routes_stats.values()),
        unique_rows=sum(entry["unique_rows"]
                        for entry in routes_stats.values()),
        rows_evaluated=sum(entry["rows_evaluated"]
                           for entry in routes_stats.values()),
        forward_calls=sum(entry["forward_calls"]
                          for entry in routes_stats.values()),
        workers=workers,
        epochs=epochs,
        estimators=estimators_stats,
        routes=routes_stats,
    )
    return FleetReport(results=merged, routes=route_reports, stats=stats)


class ReplicaGroup:
    """N engine replicas serving one relation, behind one admission gate.

    Every replica fronts the *same* trained estimator — replication buys
    independent micro-batch queues and bounded per-replica cache slices, not
    retrained models — and a query lands on the replica named by a
    deterministic hash of ``(relation, global workload index)``.  Because the
    per-query random streams are keyed by ``(seed, global index)`` alone, the
    replica assignment can never change an estimate: ``replicas=1`` and
    ``replicas=N`` serve bit-compatible numbers (up to float round-off of the
    batched sampler).

    Parameters
    ----------
    route:
        Relation name, also the salt of the replica hash.
    engines:
        The replica engines (at least one), typically built by
        :class:`FleetRouter` with equal seeds and equal cache slices.
    max_pending:
        Maximum undispatched queries across the whole group (``None`` =
        unbounded).  Bounds the group's queue memory independently of
        ``batch_size``.
    overflow:
        What an overflowing submission does: ``"block"`` forces the fullest
        replica to dispatch its micro-batch early (backpressure — nothing is
        refused and estimates are unchanged), ``"shed"`` refuses the query
        with :class:`AdmissionError` and counts it in :attr:`shed`.
    """

    def __init__(self, route: str, engines: list[EstimationEngine], *,
                 max_pending: int | None = None,
                 overflow: str = "block",
                 cache: ConditionalProbCache | PackedConditionalCache | None = None) -> None:
        if not engines:
            raise ValueError("a replica group needs at least one engine")
        _validate_admission(max_pending, overflow)
        self.route = route
        self.engines = engines
        self.max_pending = max_pending
        self.overflow = overflow
        #: The group's shared conditional-probability cache (``None`` when
        #: caching is off or the engines built private ones).  Replicas front
        #: the same trained model, so cached conditionals are perfectly
        #: shareable: one group-wide cache gives strictly higher hit rates
        #: under the same budget than per-replica slivers.
        self.cache = cache
        self.shed = 0
        #: High-water mark of :attr:`pending` over the current scope — the
        #: load generator's bounded-queue-growth evidence: under overload
        #: this must plateau at ``max_pending``, never climb past it.
        self.peak_pending = 0

    def __len__(self) -> int:
        return len(self.engines)

    def replica_of(self, index: int) -> int:
        """Deterministic replica assignment of one global workload index.

        Delegates to :func:`replica_for` — the one placement function shared
        with the cross-process fleet, stable across processes and replays.
        """
        return replica_for(self.route, index, len(self.engines))

    @property
    def pending(self) -> int:
        """Undispatched queries across all replicas of the group."""
        return sum(engine.pending for engine in self.engines)

    def submit(self, query: Query, index: int) -> int:
        """Admit one query onto its hashed replica; returns the replica index.

        Raises :class:`AdmissionError` (after counting the shed) when the
        group is full under the ``shed`` policy.  Under ``block`` the fullest
        replica dispatches early instead, so the bound holds without refusing
        anything.
        """
        if self.max_pending is not None and self.pending >= self.max_pending:
            if self.overflow == "shed":
                self.shed += 1
                raise AdmissionError(self.route, self.max_pending, query)
            fullest = max(self.engines, key=lambda engine: engine.pending)
            fullest.flush()
        replica = self.replica_of(index)
        self.engines[replica].submit(query, index=index)
        self.peak_pending = max(self.peak_pending, self.pending)
        return replica

    def flush(self) -> None:
        """Dispatch every replica's partially filled micro-batch."""
        for engine in self.engines:
            engine.flush()

    def reset(self) -> None:
        """Start a fresh workload scope on every replica; zero the shed count."""
        for engine in self.engines:
            engine.reset()
        self.shed = 0
        self.peak_pending = 0

    def reports(self) -> list[EngineReport]:
        """Per-replica reports, in replica order."""
        return [engine.report() for engine in self.engines]

    def __repr__(self) -> str:
        bound = self.max_pending if self.max_pending is not None else "unbounded"
        return (f"ReplicaGroup({self.route!r}, {len(self.engines)} replicas, "
                f"max_pending={bound}, overflow={self.overflow!r})")


class _FallbackUnit:
    """One direct-serving estimator behind a route — the ensemble's fallback.

    Serves queries the route's primary estimator cannot (shapes outside its
    capability set, disjunctions past Naru's expansion bound) by calling the
    fallback estimator's own ``estimate_selectivity`` synchronously at
    submission.  Fallback estimators are deterministic summaries (sampling,
    histograms, ...) with no batched-sampler interface, so there is nothing
    to micro-batch, cache or replicate: each query is its own dispatch,
    ``queue_wait_ms`` is identically zero, and determinism needs no
    per-query random stream.

    Duck-types the slice of :class:`ReplicaGroup` the router's bookkeeping
    walks (``engines``/``cache``/``shed``/``pending``/``peak_pending``,
    ``submit``/``flush``/``reset``/``reports``), so groups and fallback
    units live in one routing table keyed ``(route, role)``.
    """

    def __init__(self, route: str, estimator, *, num_rows: int, clock,
                 result_sink=None) -> None:
        self.route = route
        self.estimator = estimator
        self.num_rows = num_rows
        self.clock = clock
        self.result_sink = result_sink
        #: Always empty: lets :meth:`FleetRouter.tick` and cache wipes walk
        #: every serving unit uniformly.
        self.engines: list[EstimationEngine] = []
        self.cache = None
        self.shed = 0
        self.peak_pending = 0
        self._results: list[EstimateResult] = []
        self._batches: list[BatchRecord] = []
        self._elapsed_s = 0.0

    @property
    def pending(self) -> int:
        """Always zero: every submission is served before it returns."""
        return 0

    def submit(self, query: "Query | DNFQuery", index: int) -> int:
        """Serve one query synchronously; returns the replica index (0)."""
        start = self.clock()
        selectivity = float(self.estimator.estimate_selectivity(query))
        latency_ms = (self.clock() - start) * 1000.0
        result = EstimateResult(
            index=index, query=query, selectivity=selectivity,
            cardinality=selectivity * self.num_rows,
            batch_index=len(self._batches), queue_wait_ms=0.0,
            e2e_ms=latency_ms)
        self._results.append(result)
        self._batches.append(BatchRecord(
            batch_index=result.batch_index, num_queries=1,
            latency_ms=latency_ms, queue_wait_ms=(0.0,)))
        self._elapsed_s += latency_ms / 1000.0
        if self.result_sink is not None:
            self.result_sink(result)
        return 0

    def flush(self) -> None:
        """No-op: nothing is ever queued."""

    def reset(self) -> None:
        """Start a fresh workload scope."""
        self._results = []
        self._batches = []
        self._elapsed_s = 0.0
        self.shed = 0

    def reports(self) -> list[EngineReport]:
        """One engine-shaped report, so fleet merging treats the unit as a
        single-replica group with ``batch_size=1`` and no sampler rows."""
        stats = EngineStats(num_queries=len(self._results),
                            num_batches=len(self._batches),
                            elapsed_s=self._elapsed_s, num_samples=0,
                            batch_size=1)
        return [EngineReport(results=list(self._results),
                             batches=list(self._batches), stats=stats)]

    def __repr__(self) -> str:
        return (f"_FallbackUnit({self.route!r}, "
                f"estimator={self.estimator.name!r})")


class FleetRouter:
    """Route table-qualified queries to replicated per-model engines.

    Parameters
    ----------
    registry:
        The model fleet.  Estimators are built and fitted lazily on the first
        query routed to them; call ``registry.fit_all()`` up front to keep
        training cost out of the serving path.  Each relation's replica count
        comes from its registration (``register_table(..., replicas=N)``), as
        does its optional fallback estimator (``fallback=...``) — the second
        ensemble member serving query shapes the primary cannot (see
        :meth:`resolve_serving`).
    batch_size:
        Per-replica micro-batch capacity (each engine batches independently).
    num_samples:
        Progressive sample paths per query; ``None`` defers to each
        estimator's own config.
    use_cache:
        Enable the per-replica conditional-probability caches.
    dedup:
        Run each engine's sampler with prefix deduplication (the fused hot
        path, on by default).  Bit-exact either way — the flag exists so the
        invariance suite can prove it and benchmarks can measure it.
    cache_entries:
        *Shared* fleet-wide cache budget (total entries across all replica
        caches plus, when enabled, the result cache); each cache receives an
        equal slice, sized at construction so the split is stable.
    seed:
        Base seed of the per-query random streams (shared by all engines and
        replicas, so a query's stream depends only on its global index).
    default_route:
        Relation serving queries without a ``table`` qualifier.  Defaults to
        the registry's only relation when it has exactly one; with several
        models and no default, unqualified queries raise
        :class:`RoutingError`.
    max_pending:
        Per-replica-group bound on undispatched queries (``None`` =
        unbounded, the pre-replication behaviour).
    overflow:
        Group overflow policy, ``"block"`` (default: backpressure via early
        dispatch) or ``"shed"`` (refuse with :class:`AdmissionError`).
    result_cache:
        Front the fleet with an exact-match result cache on canonicalised
        queries.  A hit serves the stored selectivity without consuming any
        model time; entries are stored the moment their micro-batch
        dispatches, so repeats hit inside a workload scope as well as on
        replays of it.
    on_result:
        Optional callable invoked with each :class:`RoutedResult` the moment
        it is produced — at micro-batch dispatch for model-served queries, at
        submission for result-cache hits.  The streaming frontend
        (:class:`repro.serve.stream.AsyncFleetClient`) resolves its futures
        through this hook; it is also assignable after construction via the
        ``on_result`` attribute.
    flush_after_ms:
        Router-wide flush deadline: a partially filled micro-batch is
        dispatched by :meth:`tick` once its oldest query has waited this
        long, bounding queueing delay independently of ``batch_size``
        (``None`` = batches wait indefinitely for a fill or an explicit
        flush, the pre-deadline behaviour).  Overridable per relation via
        :meth:`repro.serve.registry.ModelRegistry.register_table`'s
        ``flush_after_ms``.  :meth:`run` ticks after every submission; the
        asyncio client drives ticks from wall-clock deadlines.
    clock:
        Zero-argument callable returning seconds, shared by every engine the
        router builds (``time.perf_counter`` by default).  Inject a
        :class:`repro.serve.engine.VirtualClock` to make queue waits and
        flush deadlines fully deterministic in tests.
    """

    def __init__(self, registry: ModelRegistry, *, batch_size: int = 32,
                 num_samples: int | None = None, use_cache: bool = True,
                 cache_entries: int = 262144, seed: int = 0,
                 default_route: str | None = None,
                 max_pending: int | None = None, overflow: str = "block",
                 result_cache: bool = False, on_result=None,
                 flush_after_ms: float | None = None, clock=None,
                 dedup: bool = True) -> None:
        if len(registry) == 0:
            raise ValueError("the registry has no relations to serve")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if flush_after_ms is not None and flush_after_ms <= 0:
            raise ValueError(f"flush_after_ms must be positive, got "
                             f"{flush_after_ms}")
        if default_route is not None and default_route not in registry:
            raise ValueError(f"default route {default_route!r} is not a "
                             f"registered relation ({', '.join(registry.names)})")
        _validate_admission(max_pending, overflow)
        if default_route is None and len(registry) == 1:
            default_route = registry.names[0]
        self.registry = registry
        self.batch_size = batch_size
        self.num_samples = num_samples
        self.use_cache = use_cache
        self.dedup = dedup
        self.cache_entries = cache_entries
        # One shared budget, one slice per cache that actually exists: each
        # replica's conditional cache (only when use_cache is on) plus one
        # slice for the result cache when it is enabled.  Replica counts are
        # read at construction so the split is stable for this router's
        # lifetime even if the registry is re-tuned afterwards.
        self._replica_counts = {name: registry.replicas(name)
                                for name in registry.names}
        slices = (sum(self._replica_counts.values()) if use_cache else 0) \
            + (1 if result_cache else 0)
        self.cache_entries_per_model = max(1, cache_entries // max(slices, 1))
        self.seed = seed
        self.default_route = default_route
        self.max_pending = max_pending
        self.overflow = overflow
        self.flush_after_ms = flush_after_ms
        #: The shared clock of every engine, see the ``clock`` parameter.
        self.clock = clock if clock is not None else time.perf_counter
        #: ``(route, role)`` -> serving unit, role ``"primary"`` (a
        #: :class:`ReplicaGroup` over the relation's registered estimator)
        #: or ``"fallback"`` (a :class:`_FallbackUnit` over its registered
        #: fallback estimator).  Both roles are materialised lazily on the
        #: first query :meth:`resolve_serving` sends their way.
        self._groups: dict[tuple[str, str], ReplicaGroup | _FallbackUnit] = {}
        #: ``(route, role)`` -> ``registry.serving_epoch`` its unit was
        #: materialised at.  A moved epoch (ingest or model swap) makes the
        #: unit stale: it is dropped at the next scope boundary and lazily
        #: rebuilt — with the registry's current estimator and *fresh*
        #: conditional caches — so an epoch bump invalidates every cache
        #: layer atomically.
        self._group_epochs: dict[tuple[str, str], tuple[int, int]] = {}
        #: Per-result observer, see the ``on_result`` parameter above.
        self.on_result = on_result
        self._result_cache = (ResultCache(self.cache_entries_per_model)
                              if result_cache else None)
        self._cached_results: list[RoutedResult] = []
        #: Cache-served results submitted since the last report() snapshot —
        #: the guard in run() refuses to wipe them silently, exactly like
        #: pending model-served queries.
        self._unreported_cached = 0
        self._next_index = 0

    # ------------------------------------------------------------------ #
    @property
    def result_cache(self) -> ResultCache | None:
        """The fleet-wide result cache (``None`` when disabled)."""
        return self._result_cache

    @property
    def next_index(self) -> int:
        """The global index :meth:`submit` will assign to its next query.

        The streaming frontend registers a future under this index *before*
        submitting, because submission may dispatch (and therefore resolve)
        synchronously.
        """
        return self._next_index

    def _feed_result(self, route: str, result) -> None:
        """Store one dispatched estimate in the result cache (first in wins).

        Entries are stamped with the route's current serving epoch; an entry
        left over from an older epoch is overwritten rather than kept — it
        could never be served again (``get`` rejects stale epochs), so
        keeping it would only waste an LRU slot.
        """
        key = canonical_query_key(result.query, route=route)
        epoch = self.registry.serving_epoch(route)
        if self._result_cache.epoch_of(key) != epoch:
            self._result_cache.put(key, result.selectivity, epoch=epoch)

    def _emit(self, result: RoutedResult) -> None:
        """Hand one finished result to the ``on_result`` observer, if any."""
        if self.on_result is not None:
            self.on_result(result)

    def resolve_route(self, query: "Query | DNFQuery") -> str:
        """The relation a query routes to; raises :class:`RoutingError` if none.

        Delegates to the module-level :func:`resolve_route` — the routing
        half of the contract shared with the cross-process fleet.
        """
        return resolve_route(self.registry, query, self.default_route)

    def resolve_serving(self, query: "Query | DNFQuery") -> tuple[str, str]:
        """The ``(relation, role)`` pair that will answer one query.

        Routing is two-staged: :meth:`resolve_route` names the relation,
        then the query's shape (:func:`repro.query.shapes.query_shape`)
        picks the ensemble member — the primary estimator when its
        capability set covers the shape (and, for Naru, the disjunction
        fits its expansion bound), otherwise the relation's registered
        fallback estimator.  Conjunctive traffic therefore always lands on
        the primary, exactly where it landed before the ensemble existed.

        Raises:
            RoutingError: When neither member can serve, naming the failing
                shape, the primary's capabilities and every available route.
        """
        route = self.resolve_route(query)
        if self.registry.can_serve(route, query):
            return route, "primary"
        fallback = self.registry.fallback(route)
        if fallback is not None and fallback.can_serve(query):
            return route, "fallback"
        shape = query_shape(query)
        capabilities = "|".join(sorted(
            s.value for s in self.registry.capabilities(route)))
        if fallback is None:
            fallback_note = "no fallback estimator is registered"
        else:
            fallback_note = (f"its fallback {fallback.name!r} cannot serve "
                             "it either")
        available = ", ".join(
            f"{name} [{'|'.join(sorted(s.value for s in self.registry.capabilities(name)))}"
            f"{', fallback: ' + self.registry.fallback(name).name if self.registry.fallback(name) is not None else ''}]"
            for name in self.registry.names)
        raise RoutingError(
            f"query {query!r} has shape {shape.value!r}, which relation "
            f"{route!r} cannot serve: the primary estimator's capabilities "
            f"are [{capabilities}] (disjunctions bounded at "
            f"max_dnf_branches={self.registry._config_for(route).max_dnf_branches} "
            f"branches) and {fallback_note}; available routes: {available}")

    def group(self, route: str) -> ReplicaGroup:
        """The primary replica group of one route, materialised on first use.

        Relations registered *after* the router was built are served too
        (their replica count is read from the registry on first use); only
        the cache-budget split stays fixed at its construction-time value.
        """
        group = self._groups.get((route, "primary"))
        if group is None:
            replicas = self._replica_counts.get(route)
            if replicas is None:
                replicas = self.registry.replicas(route)
                self._replica_counts[route] = replicas
            estimator = self.registry.estimator(route)

            def make_sink(replica, route=route, estimator_name=estimator.name):
                # One closure per replica: dispatched results feed the fleet
                # result cache (when enabled) and the on_result observer,
                # tagged with the replica that computed them.
                def sink(result):
                    if self._result_cache is not None:
                        self._feed_result(route, result)
                    if self.on_result is not None:
                        self._emit(RoutedResult(
                            index=result.index, route=route,
                            query=result.query,
                            selectivity=result.selectivity,
                            cardinality=result.cardinality,
                            batch_index=result.batch_index, replica=replica,
                            estimator=estimator_name))
                return sink

            # One conditional cache for the whole group: the replicas share
            # the relation's one model, so the group pools its replicas'
            # budget slices instead of fragmenting hot prefixes N ways.
            # Deduplicating engines hand over distinct packed prefixes, so
            # their shared store is the vectorized packed-prefix one (see
            # PackedConditionalCache) rather than the per-row LRU map.
            if not self.use_cache:
                shared_cache = None
            elif self.dedup:
                shared_cache = PackedConditionalCache(
                    self.cache_entries_per_model * replicas)
            else:
                shared_cache = ConditionalProbCache(
                    self.cache_entries_per_model * replicas)
            engines = [
                EstimationEngine(
                    estimator, batch_size=self.batch_size,
                    num_samples=self.num_samples, use_cache=self.use_cache,
                    cache_entries=self.cache_entries_per_model, seed=self.seed,
                    result_sink=make_sink(replica), cache=shared_cache,
                    clock=self.clock, dedup=self.dedup,
                    flush_after_ms=self.effective_flush_after(route))
                for replica in range(replicas)
            ]
            group = ReplicaGroup(route, engines, max_pending=self.max_pending,
                                 overflow=self.overflow, cache=shared_cache)
            if shared_cache is not None:
                shared_cache.epoch = self.registry.data_epoch(route)
            self._groups[(route, "primary")] = group
            self._group_epochs[(route, "primary")] = \
                self.registry.serving_epoch(route)
            self._group_created(route, group)
        return group

    def fallback_unit(self, route: str) -> _FallbackUnit:
        """The fallback serving unit of one route, materialised on first use.

        Raises ``LookupError`` when the relation has no registered fallback
        estimator — :meth:`resolve_serving` never sends a query here unless
        one exists.
        """
        unit = self._groups.get((route, "fallback"))
        if unit is None:
            estimator = self.registry.fallback(route)
            if estimator is None:
                raise LookupError(f"relation {route!r} has no registered "
                                  "fallback estimator")

            def sink(result, route=route, estimator_name=estimator.name):
                # Fallback answers feed the same result cache and observer
                # as primary dispatches — a repeat of a fallback-served
                # query is as cacheable as any other.
                if self._result_cache is not None:
                    self._feed_result(route, result)
                if self.on_result is not None:
                    self._emit(RoutedResult(
                        index=result.index, route=route, query=result.query,
                        selectivity=result.selectivity,
                        cardinality=result.cardinality,
                        batch_index=result.batch_index, replica=0,
                        e2e_ms=result.e2e_ms, estimator=estimator_name))

            unit = _FallbackUnit(route, estimator,
                                 num_rows=self.registry.serving_rows(route),
                                 clock=self.clock, result_sink=sink)
            self._groups[(route, "fallback")] = unit
            self._group_epochs[(route, "fallback")] = \
                self.registry.serving_epoch(route)
        return unit

    def _group_created(self, route: str, group: ReplicaGroup) -> None:
        """Subclass hook: a replica group was just materialised.

        :class:`repro.serve.stream.StreamingRouter` attaches its adaptive
        batch controller here; the base router does nothing.
        """

    def engine(self, route: str, replica: int = 0) -> EstimationEngine:
        """One replica engine of a route (replica 0 by default)."""
        return self.group(route).engines[replica]

    def effective_flush_after(self, route: str) -> float | None:
        """The flush deadline of one route: registry override, then router."""
        registry_bound = self.registry.flush_after_ms(route)
        return registry_bound if registry_bound is not None \
            else self.flush_after_ms

    @property
    def has_flush_timeouts(self) -> bool:
        """Whether any relation this router serves carries a flush deadline."""
        if self.flush_after_ms is not None:
            return True
        return any(self.registry.flush_after_ms(name) is not None
                   for name in self.registry.names)

    @property
    def peak_pending(self) -> int:
        """The highest pending high-water mark across all replica groups.

        The open-loop load generator's bounded-queue-growth evidence: under
        overload this plateaus at ``max_pending`` (per group) instead of
        growing with the backlog.  Zero until a group materialises; reset at
        scope boundaries with the rest of the per-scope counters.
        """
        return max((group.peak_pending for group in self._groups.values()),
                   default=0)

    def wipe_caches(self) -> dict[str, int]:
        """Drop every cache layer at once — the ``cache_wipe`` chaos drill.

        Clears the fleet-wide result cache and every materialised replica
        group's shared conditional cache, exactly what a cache-tier restart
        does to a live fleet.  Epoch stamps are preserved (the data did not
        move — the memory of it did), counters keep accumulating, and no
        estimate may change: caches are a latency layer, so the only
        observable cost is cold-cache latency on the traffic that follows.

        Returns:
            ``{"result_caches": 0 or 1, "conditional_caches": N}`` — how
            many stores of each layer were cleared.
        """
        wiped = {"result_caches": 0, "conditional_caches": 0}
        if self._result_cache is not None:
            self._result_cache.clear()
            wiped["result_caches"] = 1
        for group in self._groups.values():
            if group.cache is not None:
                group.cache.clear()
                wiped["conditional_caches"] += 1
        return wiped

    def tick(self, now: float | None = None) -> float | None:
        """Fire every overdue flush deadline; returns the earliest remaining one.

        Walks all materialised engines and dispatches any partially filled
        micro-batch whose oldest query has waited past its
        ``flush_after_ms``.  A no-op (returning ``None``) when no deadlines
        are configured or nothing is pending, so callers may tick
        unconditionally.

        Args:
            now: The current clock reading shared by every engine's check;
                ``None`` reads the router clock once.

        Returns:
            The earliest flush deadline still outstanding after this tick
            (in the router clock's seconds), or ``None`` when no pending
            batch carries one — what a wall-clock driver sleeps until.
        """
        next_deadline: float | None = None
        for group in self._groups.values():
            for engine in group.engines:
                if now is None and engine.flush_deadline is not None:
                    now = self.clock()
                deadline = engine.tick(now)
                if deadline is not None and (next_deadline is None
                                             or deadline < next_deadline):
                    next_deadline = deadline
        return next_deadline

    # ------------------------------------------------------------------ #
    def submit(self, query: Query, index: int | None = None) -> str:
        """Route and enqueue one query; returns the route it was assigned.

        The query's random stream is keyed by its global submission index, so
        its estimate is independent of what else is in flight and of which
        replica serves it.  ``index`` overrides the assigned position: a
        streaming producer that numbered its queries up front can submit them
        in *any* arrival order and still get the estimates of the in-order
        run (indices must be unique within a workload scope — the caller owns
        that contract; :class:`repro.serve.stream.AsyncFleetClient` enforces
        it).  Left at ``None``, queries are numbered in submission order,
        exactly as before.

        With the result cache enabled, an exact repeat of an already answered
        query is served from memory (it still consumes an index and appears
        in the report, flagged ``replica=-1``).  A query whose shape the
        route's primary estimator cannot serve goes to the relation's
        fallback estimator instead (see :meth:`resolve_serving`) and is
        answered synchronously — fallback summaries have no micro-batch to
        wait for.  Raises :class:`RoutingError` or :class:`AdmissionError`
        (both without consuming an index) when the query cannot be routed or
        admitted.
        """
        route, role = self.resolve_serving(query)
        if self._result_cache is not None:
            # Consult the cache before materialising the route's group: a
            # hit must cost a dictionary lookup, not a lazy model build.
            # The lookup carries the route's current serving epoch, so an
            # entry computed before an ingest or model swap is rejected
            # (never served) even mid-scope.
            key = canonical_query_key(query, route=route)
            selectivity = self._result_cache.get(
                key, epoch=self.registry.serving_epoch(route))
            if selectivity is not None:
                if index is None:
                    index = self._next_index
                self._next_index = max(self._next_index, index + 1)
                num_rows = self.registry.serving_rows(route)
                result = RoutedResult(
                    index=index, route=route, query=query,
                    selectivity=selectivity,
                    cardinality=selectivity * num_rows,
                    batch_index=-1, replica=-1, estimator="cache")
                self._cached_results.append(result)
                self._unreported_cached += 1
                self._emit(result)
                return route
        group = (self.group(route) if role == "primary"
                 else self.fallback_unit(route))
        if index is None:
            index = self._next_index
        group.submit(query, index=index)  # may raise AdmissionError
        self._next_index = max(self._next_index, index + 1)
        return route

    def flush(self) -> None:
        """Dispatch every replica's partially filled micro-batch."""
        for group in self._groups.values():
            group.flush()

    def run(self, queries: list[Query]) -> FleetReport:
        """Serve a whole mixed workload and return the merged fleet report.

        Like :meth:`EstimationEngine.run`, each call is its own workload
        scope: global indices restart at zero and the report covers only this
        call; only the per-replica conditional caches and the fleet result
        cache carry over.  An empty workload returns a well-formed empty
        report (zero queries, ``queries_per_second == 0.0``).  Under the
        ``shed`` overflow policy, refused queries are counted per route in
        the report instead of aborting the run.
        """
        self._begin_scope()
        ticking = self.has_flush_timeouts
        for query in queries:
            try:
                self.submit(query)
            except AdmissionError:
                pass  # counted in the group's shed tally
            # Tick even after a shed: a full group is exactly the state a
            # flush deadline exists to clear — skipping the tick would shed
            # the whole remaining workload while an overdue batch lingers.
            if ticking:
                self.tick()
        self.flush()
        return self.report()

    def _begin_scope(self) -> None:
        """Start a fresh workload scope: reset indices, keep the caches.

        Refuses to run while submitted queries are pending or cache-served
        results are unreported — their results would be silently dropped.
        Shared by :meth:`run` and :func:`repro.serve.stream.stream_workload`.
        """
        if any(group.pending for group in self._groups.values()) \
                or self._unreported_cached:
            raise RuntimeError("submitted queries are still pending or "
                               "cache-served results are unreported; call "
                               "flush() and report() before run()")
        # Epoch sync: a group whose relation has been ingested into (or whose
        # model was swapped by a refresh) is stale — drop it so the next
        # query routed there lazily rebuilds it around the registry's current
        # estimator with *fresh* conditional caches.  Doing this only at
        # scope boundaries makes the swap atomic per workload.
        for (route, role), built_at in list(self._group_epochs.items()):
            if self.registry.serving_epoch(route) != built_at:
                del self._groups[(route, role)]
                del self._group_epochs[(route, role)]
        for group in self._groups.values():
            group.reset()
        self._cached_results = []
        self._next_index = 0

    def report(self) -> FleetReport:
        """Merged snapshot of everything served so far, in submission order.

        Results and throughput cover the current workload scope only; cache
        hit/miss counters (conditional and result caches alike) are lifetime
        numbers, because the caches themselves outlive scopes.
        """
        route_reports: dict[str, list[EngineReport]] = {}
        unit_info: dict[str, dict] = {}
        shed_by_unit: dict[str, int] = {}
        for (route, role), group in self._groups.items():
            unit = route if role == "primary" else f"{route}@fallback"
            route_reports[unit] = group.reports()
            estimator_name = (group.estimator.name if role == "fallback"
                              else group.engines[0].estimator.name)
            unit_info[unit] = {"relation": route, "estimator": estimator_name}
            shed_by_unit[unit] = group.shed
        self._unreported_cached = 0
        result_cache_stats = (self._result_cache.stats.as_dict()
                              if self._result_cache is not None else None)
        return _merge_reports(
            route_reports, num_models=len(self.registry),
            cache_entries_total=self.cache_entries,
            cache_entries_per_model=self.cache_entries_per_model,
            cached_results=list(self._cached_results),
            shed_by_route=shed_by_unit,
            result_cache_stats=result_cache_stats,
            batch_traces=self._batch_traces(),
            epochs=self._epoch_report(),
            unit_info=unit_info)

    def _batch_traces(self) -> dict[str, list[int]]:
        """Per-route adaptive batch-size traces (empty on fixed routers)."""
        return {}

    def _epoch_report(self) -> dict[str, dict]:
        """Per-relation epoch/staleness counters for :attr:`FleetStats.epochs`."""
        return {
            name: {
                "data_epoch": self.registry.data_epoch(name),
                "model_epoch": self.registry.model_epoch(name),
                "staleness": self.registry.staleness(name),
            }
            for name in self.registry.names
        }


def run_fleet_sequential(registry: ModelRegistry, queries: list[Query], *,
                         num_samples: int | None = None, seed: int = 0,
                         default_route: str | None = None) -> FleetReport:
    """N-independent-sequential-engines baseline for a mixed workload.

    Routes the workload exactly like :class:`FleetRouter` — including the
    shape-based primary/fallback split of :meth:`FleetRouter.resolve_serving`
    — then answers each primary unit's queries one at a time through
    :func:`run_sequential` (no micro-batching, no caching, no replication,
    models visited one after another) and each fallback unit's through the
    fallback estimator's own deterministic ``estimate_selectivity``.
    Queries keep their global submission indices, so the estimates match the
    fleet's for any replica count (up to float round-off); the
    ``serve_multi``, ``serve_replicated`` and ``serve_ensemble`` benchmarks
    report the throughput ratio between the two.
    """
    router = FleetRouter(registry, batch_size=1, num_samples=num_samples,
                         use_cache=False, seed=seed, default_route=default_route)
    per_unit: dict[tuple[str, str], tuple[list[int], list[Query]]] = {}
    for index, query in enumerate(queries):
        serving = router.resolve_serving(query)
        indices, routed = per_unit.setdefault(serving, ([], []))
        indices.append(index)
        routed.append(query)
    route_reports: dict[str, list[EngineReport]] = {}
    unit_info: dict[str, dict] = {}
    for (route, role), (indices, routed) in per_unit.items():
        if role == "primary":
            estimator = registry.estimator(route)
            route_reports[route] = [
                run_sequential(estimator, routed, num_samples=num_samples,
                               seed=seed, indices=indices)]
            unit_info[route] = {"relation": route,
                                "estimator": estimator.name}
            continue
        estimator = registry.fallback(route)
        num_rows = registry.serving_rows(route)
        results: list[EstimateResult] = []
        batches: list[BatchRecord] = []
        elapsed_s = 0.0
        for position, (index, query) in enumerate(zip(indices, routed)):
            start = time.perf_counter()
            selectivity = float(estimator.estimate_selectivity(query))
            latency_ms = (time.perf_counter() - start) * 1000.0
            elapsed_s += latency_ms / 1000.0
            results.append(EstimateResult(
                index=index, query=query, selectivity=selectivity,
                cardinality=selectivity * num_rows, batch_index=position,
                queue_wait_ms=0.0, e2e_ms=latency_ms))
            batches.append(BatchRecord(
                batch_index=position, num_queries=1, latency_ms=latency_ms,
                queue_wait_ms=(0.0,)))
        stats = EngineStats(num_queries=len(results),
                            num_batches=len(batches), elapsed_s=elapsed_s,
                            num_samples=0, batch_size=1)
        unit = f"{route}@fallback"
        route_reports[unit] = [EngineReport(results=results, batches=batches,
                                            stats=stats)]
        unit_info[unit] = {"relation": route, "estimator": estimator.name}
    return _merge_reports(route_reports, num_models=len(registry),
                          cache_entries_total=0, cache_entries_per_model=0,
                          unit_info=unit_info)
