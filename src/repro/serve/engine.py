"""Micro-batched estimation engine for serving many queries at once.

:class:`EstimationEngine` accepts queries, groups them into micro-batches and
dispatches each batch through a single batched progressive-sampling run (one
model forward pass per column per round, shared by every query in the batch —
see :meth:`repro.core.progressive.ProgressiveSampler.estimate_selectivity_batch`),
optionally in front of an LRU conditional-probability cache
(:class:`repro.serve.cache.CachedConditionalModel`).  Estimators that do not
expose an autoregressive model (the histogram/sampling/KDE baselines) are
still accepted: their queries are answered one at a time through the plain
:meth:`repro.estimators.base.CardinalityEstimator.estimate_selectivity` path,
so the engine can front any estimator in the package.

Every query is assigned a deterministic per-query random stream derived from
``(seed, query_index)``, which makes the returned estimates independent of the
micro-batch boundaries: running a workload with ``batch_size=64`` or
``batch_size=1`` produces the same numbers (up to float round-off of skipped
wildcard columns).  :func:`run_sequential` exploits this to provide the
apples-to-apples unbatched baseline used by the throughput benchmark.

Multi-branch :class:`~repro.query.predicates.DNFQuery` submissions expand by
inclusion–exclusion into signed conjunctive sampler terms (each with its own
``(seed, query_index, term)`` child stream, see :func:`term_rng`) that pack
into the same batched sampler run as everything else; conjunctive queries and
single-branch disjunctions keep their original streams bit for bit.

Latency is accounted end-to-end: every submission is stamped with an arrival
time from the engine's ``clock``, so each result carries its queueing delay
(submission to dispatch start) and its end-to-end latency (submission to
dispatch completion) alongside the batch's dispatch latency.  A
``flush_after_ms`` deadline bounds the queueing delay of partially filled
batches — :meth:`EstimationEngine.tick` dispatches any batch whose oldest
query has waited past the bound.  Inject a :class:`VirtualClock` to script
the timeline deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.progressive import ProgressiveSampler
from ..query.predicates import DNFQuery, Query, dnf_expansion
from .cache import (CachedConditionalModel, ConditionalProbCache,
                    PackedConditionalCache)

__all__ = ["EstimateResult", "BatchRecord", "EngineStats", "EngineReport",
           "EstimationEngine", "VirtualClock", "run_sequential", "query_rng",
           "term_rng"]


class VirtualClock:
    """Manually advanced clock for deterministic latency and timeout tests.

    Engines and routers accept any zero-argument callable returning seconds
    (``time.perf_counter`` by default).  A virtual clock only moves when
    :meth:`advance` is called, so queueing delays and flush deadlines fire at
    exactly the ticks a test scripts — the golden fixtures stay byte-stable
    no matter how slow or noisy the host is.

    With a ``base`` clock the virtual offset rides on top of real time:
    dispatch latencies stay genuine wall-clock measurements while
    inter-arrival gaps are injected by :meth:`advance` — how the
    ``serve_stream`` benchmark paces a whole workload's arrivals in
    milliseconds of wall time instead of sleeping through them.
    """

    def __init__(self, start: float = 0.0, base=None) -> None:
        self.offset = float(start)
        #: Optional underlying real clock (``None`` = fully virtual time).
        self.base = base

    def __call__(self) -> float:
        """The current time: the advanced offset, plus ``base()`` if set."""
        real = self.base() if self.base is not None else 0.0
        return self.offset + real

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new time (never backwards)."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self.offset += float(seconds)
        return self()


def query_rng(seed: int, query_index: int) -> np.random.Generator:
    """The deterministic random stream of one query in a served workload.

    Derived from ``(seed, query_index)`` alone, so the stream — and therefore
    the query's estimate — does not depend on which micro-batch the query
    lands in.
    """
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=(query_index,))
    return np.random.default_rng(sequence)


def term_rng(seed: int, query_index: int, term: int) -> np.random.Generator:
    """The random stream of one inclusion–exclusion term of a served DNF query.

    Multi-branch disjunctions expand into several conjunctive sampler terms
    (see :func:`repro.query.predicates.dnf_expansion`); each term draws from
    its own child stream keyed ``(seed, query_index, term)`` so the expansion
    is deterministic and — like :func:`query_rng` — independent of micro-batch
    boundaries, routing, and whatever other queries dispatch alongside.  The
    plain ``(seed, query_index)`` streams of conjunctive queries are untouched.
    """
    sequence = np.random.SeedSequence(entropy=seed,
                                      spawn_key=(query_index, term))
    return np.random.default_rng(sequence)


def _sampler_plan(query: "Query | DNFQuery", table, seed: int, index: int):
    """Masks, rngs and signs of one query's progressive-sampler dispatch.

    A conjunctive query — or a single-branch DNF query, which is semantically
    the same conjunction — produces exactly one unsigned term driven by
    :func:`query_rng`, the pre-refactor stream: conjunctive traffic and
    single-branch disjunctions are bit-identical to what the engine served
    before DNF existed.  A multi-branch DNF query expands by
    inclusion–exclusion into ``2^k − 1`` signed conjunctive terms, each with
    its own :func:`term_rng` stream; the caller sums ``sign · estimate`` over
    the terms to recover the disjunction's selectivity.
    """
    if isinstance(query, DNFQuery):
        if len(query.branches) > 1:
            terms = dnf_expansion(query)
            masks = [term.column_masks(table) for _, term in terms]
            rngs = [term_rng(seed, index, position)
                    for position in range(len(terms))]
            return masks, rngs, [sign for sign, _ in terms]
        query = query.branches[0]
    return [query.column_masks(table)], [query_rng(seed, index)], [1]


@dataclass(frozen=True)
class EstimateResult:
    """Per-query output of the engine.

    ``queue_wait_ms`` is the time the query sat submitted-but-undispatched in
    its micro-batch; ``e2e_ms`` is the end-to-end latency from submission to
    dispatch completion (``queue_wait_ms`` plus the batch's dispatch
    latency) — the latency a caller of the serving stack actually observes.
    """

    index: int
    query: Query
    selectivity: float
    cardinality: float
    batch_index: int
    queue_wait_ms: float = 0.0
    e2e_ms: float = 0.0


@dataclass(frozen=True)
class BatchRecord:
    """Latency accounting of one dispatched micro-batch.

    ``latency_ms`` covers the dispatch alone; ``queue_wait_ms`` holds each
    batched query's submission-to-dispatch-start wait (in batch order), so a
    query's end-to-end latency is ``queue_wait_ms[i] + latency_ms``.
    ``timeout_flush`` marks batches dispatched by the flush deadline
    (``flush_after_ms``) rather than by filling up or an explicit flush.
    """

    batch_index: int
    num_queries: int
    latency_ms: float
    queue_wait_ms: tuple[float, ...] = ()
    timeout_flush: bool = False

    @property
    def max_e2e_ms(self) -> float:
        """Worst end-to-end latency in the batch: oldest wait plus dispatch."""
        return max(self.queue_wait_ms, default=0.0) + self.latency_ms


@dataclass
class EngineStats:
    """Aggregate throughput and cache statistics of a served workload."""

    num_queries: int = 0
    num_batches: int = 0
    elapsed_s: float = 0.0
    num_samples: int = 0
    batch_size: int = 0
    #: Micro-batches of this scope dispatched by the flush deadline rather
    #: than by filling up or an explicit flush.
    timeout_flushes: int = 0
    #: Alive sample-path rows that needed a model conditional at some column.
    rows_submitted: int = 0
    #: Rows left after the sampler's prefix deduplication (what the cache or
    #: model actually received); equals ``rows_submitted`` when dedup is off.
    unique_rows: int = 0
    #: Rows pushed through the network itself (after dedup *and* cache hits).
    rows_evaluated: int = 0
    #: ``conditional_probs`` calls issued by the progressive sampler.
    forward_calls: int = 0
    cache: dict | None = None

    @property
    def queries_per_second(self) -> float:
        """Served queries over summed batch-dispatch time (0 when idle)."""
        return self.num_queries / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def dedup_ratio(self) -> float:
        """Row shrink factor of prefix deduplication (1.0 when idle or off)."""
        return self.rows_submitted / self.unique_rows if self.unique_rows else 1.0

    def as_dict(self) -> dict:
        """Plain-dict form of the stats, ready for JSON serialisation."""
        return {
            "num_queries": self.num_queries,
            "num_batches": self.num_batches,
            "elapsed_s": self.elapsed_s,
            "queries_per_second": self.queries_per_second,
            "num_samples": self.num_samples,
            "batch_size": self.batch_size,
            "timeout_flushes": self.timeout_flushes,
            "rows_submitted": self.rows_submitted,
            "unique_rows": self.unique_rows,
            "rows_evaluated": self.rows_evaluated,
            "forward_calls": self.forward_calls,
            "dedup_ratio": self.dedup_ratio,
            "cache": self.cache,
        }


@dataclass
class EngineReport:
    """Everything the engine knows after serving a workload."""

    results: list[EstimateResult] = field(default_factory=list)
    batches: list[BatchRecord] = field(default_factory=list)
    stats: EngineStats = field(default_factory=EngineStats)

    @property
    def selectivities(self) -> np.ndarray:
        """Per-query selectivity estimates, in submission-index order."""
        return np.asarray([result.selectivity for result in self.results])

    @property
    def cardinalities(self) -> np.ndarray:
        """Per-query cardinality estimates, in submission-index order."""
        return np.asarray([result.cardinality for result in self.results])


class EstimationEngine:
    """Batched, cached front-end over a cardinality estimator.

    Parameters
    ----------
    estimator:
        Any :class:`~repro.estimators.base.CardinalityEstimator`.  Estimators
        carrying an autoregressive ``model`` (Naru) are served through the
        batched progressive sampler — *always* progressive sampling, never
        the small-region enumeration that ``NaruEstimator``'s ``method="auto"``
        may pick for a single query (exact enumeration does not batch, so a
        served small-region query gets the sampled estimate instead of the
        enumerated one).  Everything else falls back to per-query dispatch.
    batch_size:
        Maximum number of queries packed into one model dispatch.
    num_samples:
        Progressive sample paths per query; defaults to the estimator's
        configured ``progressive_samples`` (or 1000).
    use_cache:
        Memoise per-prefix conditionals in an LRU cache shared across batches.
    cache_entries:
        LRU capacity (distributions); ignored when ``use_cache`` is false.
        Size it above the distinct-prefix count of a workload — an undersized
        cache thrashes (every batch evicts the entries the next one needs).
    seed:
        Base seed of the per-query random streams, see :func:`query_rng`.
    dedup:
        Deduplicate the visible prefixes of each micro-batch's sample paths
        before the model/cache sees them (default on), and key the
        conditional cache on the already-unique rows
        (``assume_unique``, see :class:`CachedConditionalModel`).  For
        row-exact models (MADE, the oracle) estimates are bit-identical
        with dedup on or off; turn it off to measure the unfused path.
    result_sink:
        Optional callable invoked with each :class:`EstimateResult` the
        moment its micro-batch dispatches.  The fleet router uses this to
        feed its exact-match result cache as answers are computed, so a
        repeat of an already dispatched query can hit the cache inside the
        same workload scope.
    cache:
        Optional pre-built :class:`ConditionalProbCache` to use instead of a
        private one (``cache_entries`` is then ignored).  Replica engines
        over the same model share one group-wide cache this way — their
        conditionals are identical, so pooling beats fragmenting the budget.
    batch_hook:
        Optional callable invoked with each :class:`BatchRecord` right after
        its micro-batch dispatches.  The adaptive batch controller
        (:class:`repro.serve.stream.AdaptiveBatchController`) observes
        latencies through this hook and retunes ``batch_size``
        between dispatches; mutating ``batch_size`` from the hook affects
        when the *next* micro-batch fills, never the numbers it computes.
        Also assignable after construction via the ``batch_hook`` attribute.
    clock:
        Zero-argument callable returning seconds (``time.perf_counter`` by
        default).  Every submission is stamped with its arrival time from
        this clock, and queue waits / dispatch latencies / flush deadlines
        are measured against it — inject a :class:`VirtualClock` to script
        time deterministically in tests.
    flush_after_ms:
        Flush deadline: a partially filled micro-batch is dispatched by
        :meth:`tick` once its *oldest* query has waited this long, bounding
        queueing delay independently of ``batch_size``.  ``None`` (default)
        means batches wait indefinitely for a fill or an explicit flush.
        Deadlines only fire when :meth:`tick` is called — the routers tick
        after every submission, and the asyncio client runs a wall-clock
        driver — so timeout flushes are observable, deterministic events,
        not background races.
    """

    def __init__(self, estimator, *, batch_size: int = 32,
                 num_samples: int | None = None, use_cache: bool = True,
                 cache_entries: int = 262144, seed: int = 0,
                 dedup: bool = True,
                 result_sink=None,
                 cache: ConditionalProbCache | PackedConditionalCache | None = None,
                 batch_hook=None, clock=None,
                 flush_after_ms: float | None = None) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if flush_after_ms is not None and flush_after_ms <= 0:
            raise ValueError(f"flush_after_ms must be positive, got "
                             f"{flush_after_ms}")
        self.estimator = estimator
        self.batch_size = batch_size
        self.seed = seed
        self.dedup = dedup
        self.clock = clock if clock is not None else time.perf_counter
        self.flush_after_ms = flush_after_ms
        self._result_sink = result_sink
        #: Per-dispatch observer, see the ``batch_hook`` parameter above.
        self.batch_hook = batch_hook
        if num_samples is None:
            config = getattr(estimator, "config", None)
            num_samples = getattr(config, "progressive_samples", None) or 1000
        self.num_samples = num_samples

        model = getattr(estimator, "model", None)
        self._batched = model is not None and all(
            hasattr(model, attribute)
            for attribute in ("conditional_probs", "domain_sizes", "order"))
        self._cache: ConditionalProbCache | PackedConditionalCache | None = None
        self._sampler: ProgressiveSampler | None = None
        self._wrapper: CachedConditionalModel | None = None
        if self._batched:
            if use_cache:
                if cache is not None:
                    self._cache = cache
                elif dedup:
                    # The deduplicating sampler hands over distinct packed
                    # prefixes, so the vectorized store applies.
                    self._cache = PackedConditionalCache(cache_entries)
                else:
                    self._cache = ConditionalProbCache(cache_entries)
                # With a deduplicating sampler the wrapper receives distinct
                # prefixes only; assume_unique skips its redundant unique pass
                # and keys the store on the rows directly.
                self._wrapper = CachedConditionalModel(
                    model, cache=self._cache, assume_unique=dedup)
                model = self._wrapper
            self._sampler = ProgressiveSampler(model, seed=seed, dedup=dedup)
        self._sampler_snapshot = (0, 0, 0)
        self._wrapper_rows_snapshot = 0

        self._pending: list[tuple[int, Query, float]] = []
        self._next_index = 0
        self._results: list[EstimateResult] = []
        self._batches: list[BatchRecord] = []

    # ------------------------------------------------------------------ #
    @property
    def cache_stats(self) -> dict | None:
        """Hit/miss counters of the conditional cache (``None`` when off)."""
        return self._cache.stats.as_dict() if self._cache is not None else None

    @property
    def pending(self) -> int:
        """Number of submitted queries not yet dispatched in a micro-batch.

        The admission controller of a :class:`repro.serve.router.ReplicaGroup`
        sums this over its replicas to enforce ``max_pending``.
        """
        return len(self._pending)

    def submit(self, query: Query, index: int | None = None) -> None:
        """Enqueue one query; dispatches when a micro-batch fills up.

        ``index`` overrides the query's position in the workload, which keys
        its deterministic random stream (see :func:`query_rng`).  The fleet
        router passes the *global* submission index here, so a query's
        estimate does not depend on which model it was routed to alongside —
        only on ``(seed, workload index)``.  Left at ``None``, the engine
        numbers queries itself, exactly as before.
        """
        if index is None:
            index = self._next_index
            self._next_index += 1
        else:
            self._next_index = max(self._next_index, index + 1)
        self._pending.append((index, query, self.clock()))
        if len(self._pending) >= self.batch_size:
            self._dispatch()

    def flush(self) -> None:
        """Dispatch any partially filled micro-batch."""
        if self._pending:
            self._dispatch()

    @property
    def flush_deadline(self) -> float | None:
        """Clock time the pending micro-batch must dispatch by (``None`` = no bound).

        ``None`` while nothing is pending or no ``flush_after_ms`` is
        configured; otherwise the oldest pending query's arrival time plus
        the flush bound, in the engine clock's seconds.
        """
        if self.flush_after_ms is None or not self._pending:
            return None
        return self._pending[0][2] + self.flush_after_ms / 1000.0

    def tick(self, now: float | None = None) -> float | None:
        """Dispatch the pending micro-batch if its flush deadline has passed.

        Args:
            now: The current clock reading; ``None`` reads the engine clock.

        Returns:
            The engine's (new) flush deadline — ``None`` when nothing is
            pending or no deadline is configured — so callers scheduling the
            next tick know how long they may sleep.
        """
        deadline = self.flush_deadline
        if deadline is None:
            return None
        if now is None:
            now = self.clock()
        if now >= deadline:
            self._dispatch(timeout=True)
            return None
        return deadline

    def reset(self) -> None:
        """Start a fresh workload scope: drop results and batch records.

        Per-query indices restart at zero; only the conditional cache
        carries over (that is what makes repeat workloads faster).

        Raises
        ------
        RuntimeError
            If submitted queries are still pending — flush them first,
            otherwise their results would be silently dropped.
        """
        if self._pending:
            raise RuntimeError(
                f"{len(self._pending)} submitted queries are still pending; "
                "call flush() and report() before starting a new scope")
        self._next_index = 0
        self._results = []
        self._batches = []
        # Row-accounting counters are lifetime totals on the sampler and the
        # cache wrapper; snapshot them so the next report covers this scope.
        if self._sampler is not None:
            self._sampler_snapshot = self._sampler.stats.snapshot()
        if self._wrapper is not None:
            self._wrapper_rows_snapshot = self._wrapper.rows_evaluated

    def run(self, queries: list[Query]) -> EngineReport:
        """Serve a whole workload and return per-query results plus stats.

        Each call is its own workload scope: per-query indices restart at
        zero (so replaying the same workload reproduces the same estimates)
        and the report covers only this call.  Only the conditional cache
        carries over, which is what makes repeat workloads faster.

        Raises
        ------
        RuntimeError
            If queries submitted through :meth:`submit` are still pending —
            finish the streaming scope (``flush()`` + ``report()``) first,
            otherwise their results would be silently dropped (the guard
            lives in :meth:`reset`).
        """
        self.reset()
        for query in queries:
            self.submit(query)
        self.flush()
        return self.report()

    def scope_counters(self) -> dict[str, int]:
        """Row-accounting deltas of the current workload scope.

        The fused hot path's counters (on the sampler and the cache wrapper)
        are lifetime totals; this returns the deltas since the last
        :meth:`reset` — the numbers :meth:`report` folds into
        :class:`EngineStats`, exported separately so cross-process fleet
        workers can ship them up the pipe.
        """
        rows_submitted = unique_rows = forward_calls = rows_evaluated = 0
        if self._sampler is not None:
            base = self._sampler_snapshot
            current = self._sampler.stats.snapshot()
            rows_submitted = current[0] - base[0]
            unique_rows = current[1] - base[1]
            forward_calls = current[2] - base[2]
            if self._wrapper is not None:
                rows_evaluated = (self._wrapper.rows_evaluated
                                  - self._wrapper_rows_snapshot)
            else:
                # No cache in front: every deduplicated row hits the model.
                rows_evaluated = unique_rows
        return {"rows_submitted": rows_submitted,
                "unique_rows": unique_rows,
                "rows_evaluated": rows_evaluated,
                "forward_calls": forward_calls}

    def report(self) -> EngineReport:
        """Snapshot of everything served so far (results in submission order)."""
        elapsed_s = sum(batch.latency_ms for batch in self._batches) / 1000.0
        stats = EngineStats(
            num_queries=len(self._results),
            num_batches=len(self._batches),
            elapsed_s=elapsed_s,
            num_samples=self.num_samples,
            batch_size=self.batch_size,
            timeout_flushes=sum(batch.timeout_flush for batch in self._batches),
            cache=self.cache_stats,
            **self.scope_counters(),
        )
        results = sorted(self._results, key=lambda result: result.index)
        return EngineReport(results=results, batches=list(self._batches),
                            stats=stats)

    # ------------------------------------------------------------------ #
    def _dispatch(self, *, timeout: bool = False) -> None:
        batch, self._pending = self._pending, []
        batch_index = len(self._batches)
        start = self.clock()
        if self._batched:
            selectivities = self._dispatch_batched(batch)
        else:
            selectivities = [self.estimator.estimate_selectivity(query)
                             for _, query, _ in batch]
        latency_ms = (self.clock() - start) * 1000.0
        queue_waits = tuple(max(0.0, (start - arrival) * 1000.0)
                            for _, _, arrival in batch)
        num_rows = self.estimator.num_rows
        for (index, query, _), wait_ms, selectivity in zip(batch, queue_waits,
                                                           selectivities):
            selectivity = float(min(max(selectivity, 0.0), 1.0))
            result = EstimateResult(
                index=index, query=query, selectivity=selectivity,
                cardinality=selectivity * num_rows, batch_index=batch_index,
                queue_wait_ms=wait_ms, e2e_ms=wait_ms + latency_ms)
            self._results.append(result)
            if self._result_sink is not None:
                self._result_sink(result)
        record = BatchRecord(batch_index=batch_index, num_queries=len(batch),
                             latency_ms=latency_ms, queue_wait_ms=queue_waits,
                             timeout_flush=timeout)
        self._batches.append(record)
        if self.batch_hook is not None:
            self.batch_hook(record)

    def _dispatch_batched(self, batch: list[tuple[int, Query, float]]) -> np.ndarray:
        fitted = getattr(self.estimator, "_fitted", True)
        if not fitted:
            raise RuntimeError("call fit() on the estimator before serving")
        table = self.estimator.table
        # Each query contributes one sampler term (conjunctive) or its signed
        # inclusion–exclusion expansion (multi-branch DNF); all terms of the
        # whole micro-batch pack into ONE batched sampler run, so DNF
        # expansions ride the same fused prefix-dedup/packed-cache pass as
        # plain conjunctions.
        masks_batch: list = []
        rngs: list = []
        slots: list[tuple[int, list[int]]] = []
        for index, query, _ in batch:
            masks, query_rngs, signs = _sampler_plan(query, table,
                                                     self.seed, index)
            slots.append((len(masks_batch), signs))
            masks_batch.extend(masks)
            rngs.extend(query_rngs)
        raw = self._sampler.estimate_selectivity_batch(
            masks_batch, num_samples=self.num_samples, rngs=rngs)
        return np.array([
            float(np.clip(sum(sign * raw[start + offset]
                              for offset, sign in enumerate(signs)), 0.0, 1.0))
            for start, signs in slots])


class _UnfusedConditionals:
    """Adapter pinning a model to its pre-fusion reference path.

    Models exposing ``conditional_probs_unfused`` (see
    :class:`repro.core.made.AutoregressiveModel`) answer each conditional by
    running the *full* forward pass and slicing out one column — the serving
    path as it existed before the fused column-sliced kernel.  The sequential
    baseline routes through it so the throughput benchmark compares the fused
    stack against what it replaced; the two paths are bit-identical in value
    (the fast path's defining property), so drift between the baselines stays
    exactly zero.  Models without the reference method are used as-is.
    """

    def __init__(self, model) -> None:
        self.model = model
        self.order = list(model.order)
        self._conditional = getattr(model, "conditional_probs_unfused",
                                    model.conditional_probs)

    def domain_sizes(self) -> list[int]:
        return self.model.domain_sizes()

    def conditional_probs(self, column_index: int, codes: np.ndarray) -> np.ndarray:
        return self._conditional(column_index, codes)


def run_sequential(estimator, queries: list[Query], *,
                   num_samples: int | None = None, seed: int = 0,
                   indices: list[int] | None = None) -> EngineReport:
    """Unbatched, uncached, unfused baseline: one full-forward sampler pass
    per query.

    Uses the same deterministic per-query streams as
    :class:`EstimationEngine`, so the estimates match the batched engine's
    bit for bit (the fused stack is value-identical to this reference) while
    paying the full pre-optimisation cost: no micro-batching, no conditional
    cache, no prefix deduplication, and every conditional runs the whole
    network (:class:`_UnfusedConditionals`).  ``indices`` overrides the
    per-query workload indices (the fleet baseline passes each query's global
    submission index so the streams match the routed engines').
    """
    model = getattr(estimator, "model", None)
    if model is None:
        raise TypeError("run_sequential requires an estimator with an "
                        "autoregressive model (e.g. NaruEstimator)")
    if num_samples is None:
        config = getattr(estimator, "config", None)
        num_samples = getattr(config, "progressive_samples", None) or 1000
    if indices is None:
        indices = list(range(len(queries)))
    elif len(indices) != len(queries):
        raise ValueError("indices and queries must have the same length")
    # The baseline is deliberately unfused: no prefix deduplication, every
    # alive sample-path row pays a full-forward model evaluation.
    sampler = ProgressiveSampler(_UnfusedConditionals(model), seed=seed,
                                 dedup=False)
    table = estimator.table
    results: list[EstimateResult] = []
    batches: list[BatchRecord] = []
    for position, (index, query) in enumerate(zip(indices, queries)):
        start = time.perf_counter()
        # One query at a time, but a multi-branch DNF query still needs all
        # its signed inclusion–exclusion terms (per-term streams identical to
        # the batched engine's, so DNF drift stays exactly zero too).
        masks, rngs, signs = _sampler_plan(query, table, seed, index)
        raw = sampler.estimate_selectivity_batch(
            masks, num_samples=num_samples, rngs=rngs)
        selectivity = float(sum(sign * value
                                for sign, value in zip(signs, raw)))
        latency_ms = (time.perf_counter() - start) * 1000.0
        selectivity = float(min(max(selectivity, 0.0), 1.0))
        # Sequential serving dispatches on arrival: queue wait is zero and the
        # end-to-end latency is the dispatch latency itself.
        results.append(EstimateResult(index=index, query=query,
                                      selectivity=selectivity,
                                      cardinality=selectivity * estimator.num_rows,
                                      batch_index=position,
                                      queue_wait_ms=0.0, e2e_ms=latency_ms))
        batches.append(BatchRecord(batch_index=position, num_queries=1,
                                   latency_ms=latency_ms,
                                   queue_wait_ms=(0.0,)))
    elapsed_s = sum(batch.latency_ms for batch in batches) / 1000.0
    stats = EngineStats(num_queries=len(results), num_batches=len(batches),
                        elapsed_s=elapsed_s, num_samples=num_samples,
                        batch_size=1,
                        rows_submitted=sampler.stats.rows_submitted,
                        unique_rows=sampler.stats.unique_rows,
                        rows_evaluated=sampler.stats.unique_rows,
                        forward_calls=sampler.stats.forward_calls,
                        cache=None)
    return EngineReport(results=results, batches=batches, stats=stats)
