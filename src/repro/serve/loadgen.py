"""Open-loop load generation and chaos drills for the serve fleet.

Every other harness in this repository is **closed-loop**: the next query is
submitted when the previous one (or its micro-batch) finishes, so the fleet
can never be offered more work than it completes and overload is unobservable
by construction.  This module is the open-loop complement — the tool that
measures what heavy live traffic actually does to the fleet:

* **Arrival processes** — :func:`poisson_arrivals` (memoryless steady
  traffic), :func:`diurnal_arrivals` (a sinusoidal day/night cycle) and
  :func:`flash_arrivals` (a flash crowd: a sudden sustained burst at a
  multiple of the base rate) generate monotone arrival timestamps whose
  *mean* rate is exactly the requested ``rate_qps``, so offered load means
  the same thing across processes.  All three are deterministic functions of
  their seed.
* **Replayable traces** — :class:`ArrivalTrace` records an arrival sequence
  (with the process, rate and seed that produced it) into a JSON file whose
  bytes are stable for a given seed: recording the same trace twice, or
  loading and re-saving it, produces identical files, and replaying it
  reproduces the arrival sequence exactly.  Traces are how a load test is
  shipped to another machine, attached to a bug report, or replayed in CI.
* **The open-loop driver** — :func:`run_open_loop` submits query *i* through
  an :class:`~repro.serve.stream.AsyncFleetClient` the moment the clock
  reaches ``arrivals[i]``, **regardless of completion rate**.  Overload
  therefore manifests the way it does in production: pending queues grow to
  their ``max_pending`` bound, the admission controller sheds (typed
  :class:`~repro.serve.router.AdmissionError`, counted — never a crash), and
  end-to-end latency climbs.  Pacing goes through
  :meth:`AsyncFleetClient.pace`, so a frozen
  :class:`~repro.serve.engine.VirtualClock` makes a trace replay fully
  deterministic under test while a hybrid clock paces against real time.
* **Scenario/chaos injection** — :class:`SlowReplica` (per-engine delay
  injected via the engine ``batch_hook``), :class:`CacheWipe` (every cache
  layer cleared mid-run) and, for the cross-process tier,
  :func:`run_kill_worker_drill` (:meth:`ProcessFleet.kill_worker
  <repro.serve.procfleet.ProcessFleet.kill_worker>` mid-stream, asserting
  the typed :class:`~repro.serve.procfleet.WorkerError` surfaces with no
  hang and no leaked children).
* **Latency-vs-offered-load curves** — :func:`sweep_offered_load` runs the
  driver at a ladder of offered rates and :func:`locate_knee` finds where
  the e2e p95 leaves the SLO; the ``serve_loadgen`` benchmark
  (:func:`repro.bench.serve_loadgen`) emits the curve to
  ``results/serve_loadgen.{json,txt}``.

The degradation contract all of this asserts
(:func:`assert_degraded_not_collapsed`): under overload and chaos the fleet
**degrades, never collapses** — queue growth stays bounded by ``max_pending``,
refusals are typed and counted, and every query that *does* complete returns
exactly the estimate of the unloaded sequential baseline (estimates are keyed
by ``(seed, global index)`` alone, so no amount of queueing, shedding, cache
wiping or replica slowness may move a completed number).
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..query.predicates import Query
from .router import AdmissionError, FleetReport, FleetRouter, latency_percentiles
from .stream import AsyncFleetClient

__all__ = [
    "ARRIVAL_PROCESSES",
    "ArrivalTrace",
    "CacheWipe",
    "ChaosScenario",
    "OpenLoopResult",
    "SCENARIOS",
    "SlowReplica",
    "assert_degraded_not_collapsed",
    "diurnal_arrivals",
    "flash_arrivals",
    "generate_arrivals",
    "locate_knee",
    "poisson_arrivals",
    "run_kill_worker_drill",
    "run_open_loop",
    "sweep_offered_load",
]

#: The arrival processes :func:`generate_arrivals` understands (``"trace"``
#: is a CLI-level source, not a generator: it replays an :class:`ArrivalTrace`).
ARRIVAL_PROCESSES = ("poisson", "diurnal", "flash")

_TRACE_VERSION = 1


def _validate_load(rate_qps: float, duration_s: float) -> None:
    if not math.isfinite(rate_qps) or rate_qps <= 0.0:
        raise ValueError(f"offered rate must be positive and finite, got "
                         f"{rate_qps!r} qps")
    if not math.isfinite(duration_s) or duration_s <= 0.0:
        raise ValueError(f"duration must be positive and finite, got "
                         f"{duration_s!r} s")


def poisson_arrivals(rate_qps: float, duration_s: float, *,
                     seed: int = 0) -> list[float]:
    """Homogeneous Poisson arrivals: exponential gaps at ``rate_qps``.

    The memoryless baseline of open-loop load testing: arrivals are
    independent of each other and of the fleet's completions.  Timestamps
    are seconds from the start of the run, strictly increasing, all within
    ``[0, duration_s)``; their expected count is ``rate_qps * duration_s``.
    Deterministic for a given ``seed``.

    Raises:
        ValueError: Non-positive or non-finite ``rate_qps``/``duration_s``.
    """
    _validate_load(rate_qps, duration_s)
    rng = np.random.default_rng(seed)
    timestamps: list[float] = []
    now = 0.0
    while True:
        now += float(rng.exponential(1.0 / rate_qps))
        if now >= duration_s:
            return timestamps
        timestamps.append(now)


def _thinned_arrivals(rate_fn: Callable[[float], float], peak_qps: float,
                      duration_s: float, seed: int) -> list[float]:
    """Non-homogeneous Poisson arrivals by thinning (Lewis & Shedler).

    Candidates arrive as a homogeneous process at ``peak_qps``; candidate
    ``t`` survives with probability ``rate_fn(t) / peak_qps``.  One RNG
    drives both draws, so the sequence is a deterministic function of the
    seed.
    """
    rng = np.random.default_rng(seed)
    timestamps: list[float] = []
    now = 0.0
    while True:
        now += float(rng.exponential(1.0 / peak_qps))
        if now >= duration_s:
            return timestamps
        if float(rng.random()) * peak_qps < rate_fn(now):
            timestamps.append(now)


def diurnal_arrivals(rate_qps: float, duration_s: float, *, seed: int = 0,
                     period_s: float | None = None,
                     depth: float = 0.8) -> list[float]:
    """Diurnal (sinusoidal) arrivals averaging exactly ``rate_qps``.

    The instantaneous rate is ``rate_qps * (1 + depth * sin(2πt/period))`` —
    a day/night cycle compressed into the run.  ``period_s`` defaults to
    ``duration_s`` (one full cycle), which keeps the *mean* rate exactly the
    requested one, so a diurnal run at N qps offers the same total load as a
    Poisson run at N qps; only the shape differs.

    Args:
        rate_qps: Mean offered rate (must be positive).
        duration_s: Length of the arrival window in seconds.
        seed: RNG seed; the sequence is a deterministic function of it.
        period_s: Cycle length in seconds (``None`` = one cycle per run).
        depth: Peak-to-mean modulation in ``[0, 1)``: 0 degenerates to
            Poisson, 0.8 swings between 0.2x and 1.8x the mean.

    Raises:
        ValueError: Invalid rate, duration, period or depth.
    """
    _validate_load(rate_qps, duration_s)
    if period_s is None:
        period_s = duration_s
    if not math.isfinite(period_s) or period_s <= 0.0:
        raise ValueError(f"period_s must be positive and finite, got {period_s!r}")
    if not 0.0 <= depth < 1.0:
        raise ValueError(f"depth must be in [0, 1), got {depth!r}")

    def rate(t: float) -> float:
        return rate_qps * (1.0 + depth * math.sin(2.0 * math.pi * t / period_s))

    return _thinned_arrivals(rate, rate_qps * (1.0 + depth), duration_s, seed)


def flash_arrivals(rate_qps: float, duration_s: float, *, seed: int = 0,
                   flash_at: float = 0.5, flash_width: float = 0.2,
                   multiplier: float = 5.0) -> list[float]:
    """Flash-crowd arrivals averaging exactly ``rate_qps``.

    A steady base rate with one sustained burst: during the window starting
    at ``flash_at`` (as a fraction of the run) and lasting ``flash_width``
    of it, the instantaneous rate jumps to ``multiplier`` times the base.
    The base is scaled down so the *mean* over the whole run is exactly
    ``rate_qps`` — a flash run and a Poisson run at the same nominal rate
    offer the same total load, concentrated differently.

    Args:
        rate_qps: Mean offered rate (must be positive).
        duration_s: Length of the arrival window in seconds.
        seed: RNG seed; the sequence is a deterministic function of it.
        flash_at: Start of the burst as a fraction of the run in ``[0, 1)``.
        flash_width: Burst length as a fraction of the run in ``(0, 1]``
            (clipped at the end of the run).
        multiplier: Burst rate as a multiple of the base rate (>= 1).

    Raises:
        ValueError: Invalid rate, duration, window or multiplier.
    """
    _validate_load(rate_qps, duration_s)
    if not 0.0 <= flash_at < 1.0:
        raise ValueError(f"flash_at must be in [0, 1), got {flash_at!r}")
    if not 0.0 < flash_width <= 1.0:
        raise ValueError(f"flash_width must be in (0, 1], got {flash_width!r}")
    if multiplier < 1.0:
        raise ValueError(f"multiplier must be at least 1, got {multiplier!r}")
    start = flash_at * duration_s
    end = min(flash_at + flash_width, 1.0) * duration_s
    width = (end - start) / duration_s
    base = rate_qps / (1.0 + (multiplier - 1.0) * width)
    peak = base * multiplier

    def rate(t: float) -> float:
        return peak if start <= t < end else base

    return _thinned_arrivals(rate, peak, duration_s, seed)


def generate_arrivals(process: str, *, rate_qps: float, duration_s: float,
                      seed: int = 0, **params) -> list[float]:
    """Generate one arrival sequence by process name.

    The string-keyed front door shared by the CLI, :class:`ArrivalTrace` and
    the sweep: ``process`` is one of :data:`ARRIVAL_PROCESSES`, ``params``
    are the process-specific knobs (``depth``/``period_s`` for diurnal,
    ``flash_at``/``flash_width``/``multiplier`` for flash).

    Raises:
        ValueError: Unknown process, invalid knobs, or a non-positive
            rate/duration (the ``--offered-qps`` fail-fast lives here).
    """
    generators = {"poisson": poisson_arrivals, "diurnal": diurnal_arrivals,
                  "flash": flash_arrivals}
    if process not in generators:
        raise ValueError(f"unknown arrival process {process!r}; known: "
                         f"{', '.join(ARRIVAL_PROCESSES)}")
    return generators[process](rate_qps, duration_s, seed=seed, **params)


@dataclass(frozen=True)
class ArrivalTrace:
    """A recorded arrival sequence, replayable bit-for-bit from JSON.

    A trace bundles the timestamps with the provenance that produced them
    (process, rate, duration, seed, process knobs), so a load test is fully
    described by one small file.  :meth:`save` / :meth:`load` round-trip
    **byte-stably**: for a given seed, recording the same trace twice — or
    loading a file and saving it again — writes identical bytes (JSON floats
    serialise via ``repr``, which round-trips IEEE doubles exactly), and the
    replayed arrival sequence equals the recorded one element for element.
    """

    process: str
    rate_qps: float
    duration_s: float
    seed: int
    timestamps: tuple[float, ...]
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        previous = -math.inf
        for position, timestamp in enumerate(self.timestamps):
            if not math.isfinite(timestamp) or timestamp < 0.0:
                raise ValueError(f"trace timestamp {position} is not a "
                                 f"finite non-negative number: {timestamp!r}")
            if timestamp < previous:
                raise ValueError(f"trace timestamps must be non-decreasing; "
                                 f"entry {position} ({timestamp!r}) precedes "
                                 f"its predecessor ({previous!r})")
            previous = timestamp

    @classmethod
    def record(cls, process: str, *, rate_qps: float, duration_s: float,
               seed: int = 0, **params) -> "ArrivalTrace":
        """Generate and wrap one arrival sequence (see :func:`generate_arrivals`)."""
        timestamps = generate_arrivals(process, rate_qps=rate_qps,
                                       duration_s=duration_s, seed=seed,
                                       **params)
        return cls(process=process, rate_qps=rate_qps, duration_s=duration_s,
                   seed=seed, timestamps=tuple(timestamps),
                   params=dict(params))

    def to_json(self) -> str:
        """The canonical JSON document — the exact bytes :meth:`save` writes."""
        document = {
            "version": _TRACE_VERSION,
            "process": self.process,
            "rate_qps": self.rate_qps,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "params": dict(self.params),
            "timestamps": list(self.timestamps),
        }
        return json.dumps(document, indent=1, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        """Write the trace file (stable bytes for a given trace)."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ArrivalTrace":
        """Read a trace file written by :meth:`save`.

        Raises:
            ValueError: Malformed file — unparseable JSON, a non-object
                document, an unsupported version, missing fields, or
                timestamps that are not a non-decreasing sequence of finite
                non-negative numbers.  The message always names the file.
        """
        with open(path) as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(f"trace file {path!r} is not valid JSON: "
                                 f"{error}") from error
        if not isinstance(document, dict):
            raise ValueError(f"trace file {path!r} must hold a JSON object, "
                             f"got {type(document).__name__}")
        version = document.get("version")
        if version != _TRACE_VERSION:
            raise ValueError(f"trace file {path!r} has unsupported version "
                             f"{version!r} (expected {_TRACE_VERSION})")
        missing = sorted({"process", "rate_qps", "duration_s", "seed",
                          "timestamps"} - set(document))
        if missing:
            raise ValueError(f"trace file {path!r} is missing required "
                             f"fields: {', '.join(missing)}")
        timestamps = document["timestamps"]
        if not isinstance(timestamps, list) or not all(
                isinstance(entry, (int, float)) and not isinstance(entry, bool)
                for entry in timestamps):
            raise ValueError(f"trace file {path!r} timestamps must be a JSON "
                             "array of numbers")
        try:
            return cls(process=document["process"],
                       rate_qps=float(document["rate_qps"]),
                       duration_s=float(document["duration_s"]),
                       seed=int(document["seed"]),
                       timestamps=tuple(float(entry) for entry in timestamps),
                       params=dict(document.get("params", {})))
        except (TypeError, ValueError) as error:
            raise ValueError(f"trace file {path!r} is malformed: {error}") \
                from error

    @property
    def offered_qps(self) -> float:
        """The realised offered rate: arrivals per second of trace window."""
        return len(self.timestamps) / self.duration_s

    def __len__(self) -> int:
        return len(self.timestamps)


# --------------------------------------------------------------------------- #
# Scenario / chaos injection
# --------------------------------------------------------------------------- #
class ChaosScenario:
    """One fault injected at a chosen point of an open-loop run.

    Subclasses override :meth:`on_arrival` (called before every submission
    with the arrival's position) to fire their fault at ``at_fraction`` of
    the run, and :meth:`finish` to undo any instrumentation.  A fired
    scenario appends human-readable entries to
    :attr:`OpenLoopResult.events`, so reports show exactly when the fault
    landed.
    """

    name = "none"

    def __init__(self, *, at_fraction: float = 0.5) -> None:
        if not 0.0 <= at_fraction < 1.0:
            raise ValueError(f"at_fraction must be in [0, 1), got "
                             f"{at_fraction!r}")
        self.at_fraction = at_fraction
        self.fired = False

    def on_arrival(self, position: int, num_arrivals: int,
                   router: FleetRouter) -> str | None:
        """Hook before arrival ``position``; returns an event line if fired."""
        if self.fired or position < int(self.at_fraction * num_arrivals):
            return None
        self.fired = True
        return self.fire(position, router)

    def fire(self, position: int, router: FleetRouter) -> str | None:
        """Inject the fault; subclasses implement."""
        raise NotImplementedError

    def finish(self, router: FleetRouter) -> None:
        """Undo any instrumentation installed by :meth:`fire` (idempotent)."""


class SlowReplica(ChaosScenario):
    """One replica turns slow mid-run: delay injected via ``batch_hook``.

    From ``at_fraction`` of the run onward, every micro-batch the target
    replica dispatches is followed by ``delay_ms`` of stall — injected by
    chaining onto the engine's ``batch_hook`` (after any hook already
    installed there, so a :class:`~repro.serve.stream.StreamingRouter`'s
    adaptive controller keeps observing and keeps steering *around* the
    slow replica).  Under a frozen :class:`~repro.serve.engine.VirtualClock`
    the stall advances virtual time (deterministic tests); under a real or
    hybrid clock it sleeps.

    The delay lands *after* dispatch, exactly where a slow model server
    stalls its caller: queries already answered are untouched, queries
    queued behind the stall accrue queue wait — latency degrades, estimates
    never move.
    """

    name = "slow_replica"

    def __init__(self, route: str, *, replica: int = 0, delay_ms: float = 50.0,
                 at_fraction: float = 0.25) -> None:
        super().__init__(at_fraction=at_fraction)
        if delay_ms <= 0:
            raise ValueError(f"delay_ms must be positive, got {delay_ms!r}")
        self.route = route
        self.replica = replica
        self.delay_ms = delay_ms
        self._engine = None
        self._prior_hook = None

    def _stall(self, clock) -> None:
        if hasattr(clock, "advance") and getattr(clock, "base", None) is None:
            clock.advance(self.delay_ms / 1000.0)
        else:
            time.sleep(self.delay_ms / 1000.0)

    def fire(self, position: int, router: FleetRouter) -> str:
        """Chain the stall onto the target engine's ``batch_hook``."""
        group = router.group(self.route)
        engine = group.engines[self.replica % len(group.engines)]
        prior = engine.batch_hook

        def slow_hook(record, prior=prior, engine=engine):
            if prior is not None:
                prior(record)
            self._stall(engine.clock)

        self._engine, self._prior_hook = engine, prior
        engine.batch_hook = slow_hook
        return (f"slow_replica: +{self.delay_ms:g} ms per dispatch on "
                f"{self.route}/{self.replica} from arrival {position}")

    def finish(self, router: FleetRouter) -> None:
        """Restore the hook that was installed before the stall."""
        if self._engine is not None:
            self._engine.batch_hook = self._prior_hook
            self._engine = None


class CacheWipe(ChaosScenario):
    """Every cache layer wiped mid-run (a cold restart of the cache tier).

    Fires :meth:`FleetRouter.wipe_caches
    <repro.serve.router.FleetRouter.wipe_caches>` at ``at_fraction`` of the
    run: the fleet result cache and every replica group's conditional cache
    empty at once.  Subsequent queries pay cold-cache latency — and must
    return exactly the numbers they would have anyway, since caches are a
    latency layer, never a correctness one.
    """

    name = "cache_wipe"

    def fire(self, position: int, router: FleetRouter) -> str:
        """Empty every cache layer through :meth:`FleetRouter.wipe_caches`."""
        wiped = router.wipe_caches()
        return (f"cache_wipe: cleared {wiped['conditional_caches']} "
                f"conditional cache(s) and "
                f"{wiped['result_caches']} result cache(s) at arrival "
                f"{position}")


#: Scenario name -> factory taking ``(route, **kwargs)``; the CLI and the
#: benchmark build in-process scenarios through this table.  ``kill_worker``
#: is the cross-process drill and runs through :func:`run_kill_worker_drill`.
SCENARIOS: dict[str, Callable[..., ChaosScenario]] = {
    "slow_replica": lambda route, **kwargs: SlowReplica(route, **kwargs),
    "cache_wipe": lambda route, **kwargs: CacheWipe(**kwargs),
}


# --------------------------------------------------------------------------- #
# The open-loop driver
# --------------------------------------------------------------------------- #
@dataclass
class OpenLoopResult:
    """Everything one open-loop run measured.

    ``queries[i % len(queries)]`` was offered at ``arrivals[i]`` with global
    index ``i``; completed queries appear in :attr:`report` under those
    indices, shed ones are counted (typed, never silent).  ``offered_qps``
    is arrivals per second of window; ``achieved_qps`` is completions per
    second of measured wall time — open loop means the two diverge exactly
    when the fleet saturates.
    """

    report: FleetReport
    offered_qps: float
    achieved_qps: float
    duration_s: float
    wall_s: float
    submitted: int
    completed: int
    shed: int
    peak_pending: int
    #: Percentiles of the **open-loop** end-to-end latency: completion
    #: relative to the query's *scheduled* arrival time, so time the run
    #: spent falling behind its own arrival schedule is charged to the
    #: queries that suffered it (the coordinated-omission-free number a real
    #: submitter would observe).  ``None`` when nothing completed.
    arrival_e2e_ms: dict | None = None
    #: The largest submission lateness (scheduled arrival -> actual
    #: submission) any query accrued — how far behind schedule the run fell.
    max_lateness_ms: float = 0.0
    events: list[str] = field(default_factory=list)

    @property
    def e2e_p95_ms(self) -> float | None:
        """Open-loop e2e p95, from scheduled arrival (``None`` if empty)."""
        return self.arrival_e2e_ms["p95"] if self.arrival_e2e_ms else None

    @property
    def service_e2e_p95_ms(self) -> float | None:
        """e2e p95 from *actual* submission — the closed-loop-style number.

        Blind to schedule lateness, so under overload it can look healthy
        while :attr:`e2e_p95_ms` explodes; reported for comparison.
        """
        stats = self.report.stats.e2e_ms
        return stats["p95"] if stats is not None else None

    def as_dict(self) -> dict:
        """Plain-dict summary, ready for JSON reports."""
        return {
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "duration_s": self.duration_s,
            "wall_s": self.wall_s,
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "peak_pending": self.peak_pending,
            "e2e_p95_ms": self.e2e_p95_ms,
            "service_e2e_p95_ms": self.service_e2e_p95_ms,
            "arrival_e2e_ms": dict(self.arrival_e2e_ms)
                if self.arrival_e2e_ms else None,
            "max_lateness_ms": self.max_lateness_ms,
            "events": list(self.events),
        }


def run_open_loop(router: FleetRouter, queries: Sequence[Query],
                  arrivals: Sequence[float] | ArrivalTrace, *,
                  duration_s: float | None = None,
                  scenario: ChaosScenario | None = None) -> OpenLoopResult:
    """Offer a workload to the fleet open-loop: arrivals ignore completions.

    Query ``i % len(queries)`` is submitted with global index ``i`` the
    moment the client's clock reaches ``arrivals[i]`` (seconds from the
    run's start) — paced through :meth:`AsyncFleetClient.pace`, so a router
    on a frozen :class:`~repro.serve.engine.VirtualClock` replays a trace
    deterministically while a real/hybrid clock paces against wall time.
    Submission never waits for results: if the fleet falls behind, queues
    grow to their ``max_pending`` bound and the ``shed`` overflow policy
    refuses the excess with typed, counted
    :class:`~repro.serve.router.AdmissionError`\\ s.  After the last arrival
    the run drains, so every admitted query completes and is reported.

    Args:
        router: The fleet router (plain or streaming) to offer load to.
        queries: Query pool, cycled to cover all arrivals.  Indices are
            arrival positions, so estimates are comparable per-index with a
            closed-loop or sequential run of the same expanded workload.
        arrivals: Arrival timestamps (or a recorded :class:`ArrivalTrace`).
        duration_s: Offered-load window used for ``offered_qps`` accounting
            (defaults to the trace's window, or the last arrival time).
        scenario: Optional :class:`ChaosScenario` to inject mid-run.

    Returns:
        The run's :class:`OpenLoopResult`.

    Raises:
        ValueError: An empty query pool, or unsorted arrival timestamps.
    """
    if isinstance(arrivals, ArrivalTrace):
        if duration_s is None:
            duration_s = arrivals.duration_s
        arrivals = list(arrivals.timestamps)
    else:
        arrivals = list(arrivals)
    if not queries and arrivals:
        raise ValueError("an open-loop run needs at least one query to offer")
    if any(later < earlier
           for earlier, later in zip(arrivals, arrivals[1:])):
        raise ValueError("arrival timestamps must be non-decreasing")
    if duration_s is None:
        duration_s = arrivals[-1] if arrivals else 0.0
    router._begin_scope()
    events: list[str] = []
    counters = {"submitted": 0, "shed": 0, "peak_pending": 0}
    #: Index -> ms the submission ran behind its scheduled arrival.  Under
    #: overload the fleet cannot keep up and arrivals go out ever later;
    #: charging that lateness to the queries that suffered it is what makes
    #: the latency curve honest (no coordinated omission).
    lateness_ms: dict[int, float] = {}

    async def drive() -> tuple[FleetReport, float]:
        # flush_driver in auto mode: under a real/hybrid clock a background
        # task fires flush deadlines while pace() sleeps between arrivals
        # (so a partial batch never waits for the *next* arrival to
        # dispatch); under a frozen clock the inline tick below keeps the
        # replay a pure function of the trace.
        client = AsyncFleetClient(router)
        ticking = router.has_flush_timeouts
        start = client.clock()
        wall_start = time.perf_counter()
        try:
            for position, at in enumerate(arrivals):
                await client.pace(start + at)
                if scenario is not None:
                    event = scenario.on_arrival(position, len(arrivals), router)
                    if event is not None:
                        events.append(event)
                try:
                    client.submit(queries[position % len(queries)],
                                  index=position)
                    counters["submitted"] += 1
                    lateness_ms[position] = max(
                        0.0, (client.clock() - (start + at)) * 1000.0)
                except AdmissionError:
                    counters["shed"] += 1
                counters["peak_pending"] = max(counters["peak_pending"],
                                               router.peak_pending)
                if ticking:
                    router.tick()
                await asyncio.sleep(0)  # interleave like real producers
            report = await client.drain()
            return report, time.perf_counter() - wall_start
        finally:
            if scenario is not None:
                scenario.finish(router)
            client.close()

    report, wall_s = asyncio.run(drive())
    completed = report.stats.num_queries
    arrival_e2es = [lateness_ms[result.index] + result.e2e_ms
                    for result in report.results
                    if result.index in lateness_ms]
    return OpenLoopResult(
        report=report,
        offered_qps=len(arrivals) / duration_s if duration_s > 0 else 0.0,
        achieved_qps=completed / wall_s if wall_s > 0 else 0.0,
        duration_s=duration_s, wall_s=wall_s,
        submitted=counters["submitted"], completed=completed,
        shed=counters["shed"],
        peak_pending=max(counters["peak_pending"], router.peak_pending),
        arrival_e2e_ms=latency_percentiles(arrival_e2es)
            if arrival_e2es else None,
        max_lateness_ms=max(lateness_ms.values(), default=0.0),
        events=events)


# --------------------------------------------------------------------------- #
# Sweeps, the SLO knee, and the degradation contract
# --------------------------------------------------------------------------- #
def sweep_offered_load(router_factory: Callable[[], FleetRouter],
                       queries: Sequence[Query], rates_qps: Sequence[float], *,
                       duration_s: float, process: str = "poisson",
                       seed: int = 0, **params) -> list[dict]:
    """Run the open-loop driver at a ladder of offered rates.

    Each rate gets a **fresh** router from ``router_factory`` (so one
    overloaded run's warm caches and converged batch sizes never flatter the
    next) and its own arrival sequence at that rate; every run at the same
    ``seed`` is replayable.  Returns one row per rate — offered vs achieved
    throughput, shed count, queue high-water mark, latency percentiles —
    the rows :func:`locate_knee` reads and the ``serve_loadgen`` report
    renders.

    Raises:
        ValueError: Empty ``rates_qps``, or invalid rate/duration/process.
    """
    if not rates_qps:
        raise ValueError("sweep needs at least one offered rate")
    rows = []
    for rate in rates_qps:
        arrivals = generate_arrivals(process, rate_qps=rate,
                                     duration_s=duration_s, seed=seed,
                                     **params)
        outcome = run_open_loop(router_factory(), queries, arrivals,
                                duration_s=duration_s)
        stats = outcome.report.stats
        rows.append({
            "offered_qps": outcome.offered_qps,
            "achieved_qps": outcome.achieved_qps,
            "submitted": outcome.submitted,
            "completed": outcome.completed,
            "shed": outcome.shed,
            "peak_pending": outcome.peak_pending,
            "queue_p95_ms": (stats.queue_wait_ms or {}).get("p95"),
            # Open-loop e2e: completion relative to *scheduled* arrival —
            # the column the SLO knee is read from.
            "e2e_p95_ms": outcome.e2e_p95_ms,
            # From actual submission, blind to schedule lateness.
            "service_p95_ms": outcome.service_e2e_p95_ms,
            "max_lateness_ms": outcome.max_lateness_ms,
        })
    return rows


def locate_knee(rows: Sequence[Mapping[str, object]],
                slo_ms: float) -> dict:
    """Find where the latency-vs-offered-load curve leaves the SLO.

    Scans sweep rows (as produced by :func:`sweep_offered_load`, assumed
    sorted by offered rate) for the first whose e2e p95 exceeds ``slo_ms``.
    The **knee** is the last offered rate still meeting the SLO — the
    fleet's usable capacity under that SLO.

    Returns:
        ``{"slo_ms", "knee_qps", "first_over_qps", "meets_all", "rows_over"}``
        — ``knee_qps`` is ``None`` when even the lowest rate misses,
        ``first_over_qps`` is ``None`` when every rate meets
        (``meets_all``).

    Raises:
        ValueError: Empty ``rows`` or a non-positive SLO.
    """
    if not rows:
        raise ValueError("locate_knee needs at least one sweep row")
    if slo_ms <= 0:
        raise ValueError(f"slo_ms must be positive, got {slo_ms!r}")
    knee = None
    first_over = None
    over = 0
    for row in rows:
        p95 = row["e2e_p95_ms"]
        misses = p95 is None or p95 > slo_ms
        if misses:
            over += 1
            if first_over is None:
                first_over = row["offered_qps"]
        elif first_over is None:
            knee = row["offered_qps"]
    return {"slo_ms": slo_ms, "knee_qps": knee, "first_over_qps": first_over,
            "meets_all": first_over is None, "rows_over": over}


def assert_degraded_not_collapsed(outcome: OpenLoopResult, *,
                                  baseline: FleetReport,
                                  max_pending: int | None = None,
                                  atol: float = 1e-9) -> dict:
    """Assert one run degraded within contract; returns the checked summary.

    The degradation contract of every chaos scenario and overload run:

    * **bounded queue growth** — the pending high-water mark never exceeded
      ``max_pending`` (when the router carries one);
    * **typed errors, full accounting** — every offered arrival is either
      completed or counted shed; nothing vanished;
    * **zero estimate drift** — every *completed* query's selectivity equals
      the unloaded ``baseline``'s at the same global index within ``atol``
      (estimates are keyed by ``(seed, index)`` alone, so chaos may cost
      latency, never correctness).

    Raises:
        AssertionError: The contract was violated; the message names the
            check and the numbers.
    """
    if max_pending is not None and outcome.peak_pending > max_pending:
        raise AssertionError(
            f"queue growth unbounded: peak pending {outcome.peak_pending} "
            f"exceeded max_pending {max_pending}")
    if outcome.completed != outcome.submitted:
        raise AssertionError(
            f"admitted queries vanished: {outcome.submitted} admitted but "
            f"only {outcome.completed} completed ({outcome.shed} were shed, "
            "typed and counted — the rest must all finish)")
    drift = 0.0
    for result in outcome.report.results:
        if result.from_result_cache:
            continue  # repeats serve their first occurrence, documented
        expected = baseline.results[result.index].selectivity
        drift = max(drift, abs(result.selectivity - expected))
    if drift > atol:
        raise AssertionError(
            f"estimate drift on completed queries: {drift:.3e} > {atol:.1e}")
    return {"completed": outcome.completed, "shed": outcome.shed,
            "peak_pending": outcome.peak_pending, "max_pending": max_pending,
            "max_estimate_drift": drift, "degraded_not_collapsed": True,
            "events": list(outcome.events)}


def run_kill_worker_drill(fleet, queries: Sequence[Query], *,
                          kill_after: int | None = None,
                          worker_id: int = 0) -> dict:
    """The cross-process chaos drill: SIGKILL a worker mid-stream.

    Submits the workload through a live
    :class:`~repro.serve.procfleet.ProcessFleet`, hard-kills ``worker_id``
    after ``kill_after`` submissions (half the workload by default), keeps
    submitting — the open-loop discipline: arrivals don't stop because a
    backend died — then collects.  The contract: the failure surfaces as a
    typed :class:`~repro.serve.procfleet.WorkerError` naming the dead worker
    within ``recv_timeout_s`` (never a hang), and ``close()`` still reaps
    every child.  The caller owns closing the fleet (and asserting no
    leaked children — see ``tests/test_serve_chaos.py``).

    Returns:
        ``{"killed_worker", "submitted", "error_type", "error_worker_id",
        "error_exit_code", "typed_error", "wall_s"}`` — ``typed_error`` is
        ``True`` exactly when the drill surfaced as :class:`WorkerError`.
    """
    from .procfleet import WorkerError
    if kill_after is None:
        kill_after = len(queries) // 2
    start = time.perf_counter()
    submitted = 0
    error: WorkerError | None = None
    killed = None
    try:
        for position, query in enumerate(queries):
            if position == kill_after:
                killed = fleet.kill_worker(worker_id)
            fleet.submit(query)
            submitted += 1
        fleet.flush()
        fleet.collect()
    except WorkerError as caught:
        error = caught
    wall_s = time.perf_counter() - start
    return {
        "killed_worker": worker_id,
        "killed_pid": getattr(killed, "pid", None),
        "kill_after": kill_after,
        "submitted": submitted,
        "typed_error": error is not None,
        "error_type": type(error).__name__ if error is not None else None,
        "error_worker_id": error.worker_id if error is not None else None,
        "error_exit_code": error.exit_code if error is not None else None,
        "wall_s": wall_s,
    }
