"""Async streaming submission and SLO-aware adaptive batching.

This module is the *streaming* face of the serving stack.  Everything below
it — :class:`~repro.serve.engine.EstimationEngine`,
:class:`~repro.serve.router.FleetRouter`, :class:`~repro.serve.router
.ReplicaGroup` — answers workloads handed over as a list; here queries arrive
**one at a time**, from any number of asyncio producers, and are answered
through futures:

* :class:`AsyncFleetClient` — ``submit()`` one query, get an
  :class:`asyncio.Future` back; the future resolves with the query's
  :class:`~repro.serve.router.RoutedResult` the moment its micro-batch
  dispatches (or immediately, on a result-cache hit).  Pure asyncio: the
  engines stay single-threaded and synchronous underneath, no OS threads are
  spawned, and producers coordinate through the event loop alone.
* :class:`StreamingRouter` — a :class:`~repro.serve.router.FleetRouter` whose
  per-relation micro-batch sizes are *adaptive*: an
  :class:`AdaptiveBatchController` per replica group tracks a latency EWMA
  and grows/shrinks the group's batch size within
  ``[min_batch, batch_size]`` to keep the observed latency under a p95 SLO
  (router-wide ``slo_ms``, overridable per relation via
  :meth:`repro.serve.registry.ModelRegistry.register_table`'s ``slo_ms``).
  The controller steers **end-to-end** latency by default
  (``slo_scope="e2e"``: queueing delay plus dispatch — what a caller
  observes); ``slo_scope="dispatch"`` restores the dispatch-only accounting
  that lets a query sitting in a partially filled batch accrue unbounded,
  unmeasured wait.  A flush deadline (``flush_after_ms``, router-wide or
  per-relation) bounds that wait deterministically: ticks dispatch any batch
  whose oldest query has exceeded it.

Determinism is inherited, not re-implemented: every query's random stream is
keyed by ``(seed, global submission index)`` alone, so **streaming ≡ batch
for any arrival order**.  A producer that numbers its queries up front can
submit them in whatever order they happen to arrive — out-of-order, bursty,
interleaved across tasks — and each query's estimate is identical (to float
round-off) to what :meth:`FleetRouter.run` returns for the in-order workload,
at any batch size and any replica count.  Adaptive batching preserves the
same contract for free: batch boundaries never change the numbers, so the
controller may retune them as aggressively as the SLO demands.

One deliberate exception, inherited from the result cache's documented
semantics: with ``result_cache=True`` and a workload containing *exact
repeats*, a repeat serves the stored estimate of its earliest **dispatched**
occurrence — and arrival order decides which occurrence dispatches first, so
repeats may serve a different occurrence's estimate than the in-order run's.
Workloads of distinct queries (an exact-match cache cannot hit otherwise)
keep the full arrival-order guarantee.
"""

from __future__ import annotations

import asyncio
from collections import deque

from ..query.predicates import Query
from .router import AdmissionError, FleetReport, FleetRouter, ReplicaGroup, RoutedResult
from .registry import ModelRegistry

__all__ = ["AdaptiveBatchController", "StreamingRouter", "AsyncFleetClient",
           "stream_workload"]


class AdaptiveBatchController:
    """AIMD controller keeping a replica group's batch latency under an SLO.

    The controller watches every micro-batch dispatch of one relation's
    replica group and maintains an exponentially weighted moving average
    (EWMA) of the observed latency — the dispatch latency alone, or the
    batch's worst end-to-end latency (queue wait + dispatch) when the
    streaming router runs with ``slo_scope="e2e"``; the controller itself is
    metric-agnostic.  Batch latency grows roughly linearly in
    the batch's query count (the batched sampler stacks one code-matrix row
    per sample path per query), so batch size is the control knob:

    * **shrink** — when the EWMA exceeds the operating target
      (``slo_ms * headroom``), the batch size is halved (multiplicative
      decrease).  Sustained violation shrinks monotonically down to
      ``min_batch``; it never grows while the target is exceeded.
    * **grow** — when the EWMA sits below ``grow_below`` of the target, the
      batch size is incremented (additive increase) up to ``max_batch``,
      clawing back throughput once the burst has passed.

    The ``headroom`` factor (default 0.8) is what turns a *mean* tracker into
    a *p95* target: holding the average at 80% of the SLO leaves the tail
    room to stay under it.  With ``slo_ms=None`` the controller is disabled
    and behaves exactly like a fixed batch size (``observe`` still records
    the trace, but never changes the size) — the "disabled ≡ fixed" contract
    the unit tests pin down.

    Parameters
    ----------
    slo_ms:
        Target p95 dispatch latency in milliseconds; ``None`` disables
        adaptation.
    max_batch:
        Upper clamp of the batch size (typically the router's configured
        ``batch_size``); also the initial size unless ``initial`` is given.
    min_batch:
        Lower clamp (default 1 — a batch of one always remains admissible).
    alpha:
        EWMA smoothing coefficient in ``(0, 1]``; higher reacts faster.
    headroom:
        Fraction of the SLO the EWMA is steered to stay under.
    grow_below:
        Grow only while the EWMA is below this fraction of the operating
        target, so the controller does not oscillate around it.
    initial:
        Starting batch size (defaults to ``max_batch``).
    trace_limit:
        Upper bound on the retained batch-size trace (a controller outlives
        workload scopes, so an unbounded trace would grow — and bloat every
        JSON report — for as long as the router serves).  The cumulative
        ``shrinks``/``grows`` counters are never truncated.
    """

    def __init__(self, *, slo_ms: float | None = None, max_batch: int = 32,
                 min_batch: int = 1, alpha: float = 0.3,
                 headroom: float = 0.8, grow_below: float = 0.5,
                 initial: int | None = None, trace_limit: int = 4096) -> None:
        if slo_ms is not None and slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {slo_ms}")
        if min_batch < 1:
            raise ValueError("min_batch must be at least 1")
        if max_batch < min_batch:
            raise ValueError(f"max_batch ({max_batch}) must be >= min_batch "
                             f"({min_batch})")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        if not 0.0 < grow_below < 1.0:
            raise ValueError("grow_below must be in (0, 1)")
        if trace_limit < 1:
            raise ValueError("trace_limit must be at least 1")
        self.slo_ms = slo_ms
        self.min_batch = min_batch
        self.max_batch = max_batch
        self.alpha = alpha
        self.headroom = headroom
        self.grow_below = grow_below
        self.batch_size = initial if initial is not None else max_batch
        if not min_batch <= self.batch_size <= max_batch:
            raise ValueError(f"initial batch size {self.batch_size} outside "
                             f"[{min_batch}, {max_batch}]")
        self.ewma_ms: float | None = None
        #: Batch-size decision after every observed dispatch (element 0 is
        #: the initial size until ``trace_limit`` truncates the oldest
        #: entries).  Lifetime of the controller, like cache counters — it
        #: is not reset per workload scope, only bounded; per-scope reports
        #: slice it (see :meth:`StreamingRouter._batch_traces`).
        self.trace: deque[int] = deque([self.batch_size], maxlen=trace_limit)
        #: Total dispatches ever observed (never truncated, unlike ``trace``).
        self.observations = 0
        self.shrinks = 0
        self.grows = 0

    @property
    def enabled(self) -> bool:
        """Whether the controller adapts at all (``False`` = fixed batch)."""
        return self.slo_ms is not None

    @property
    def target_ms(self) -> float | None:
        """The EWMA operating ceiling: ``slo_ms * headroom`` (``None`` off)."""
        return self.slo_ms * self.headroom if self.slo_ms is not None else None

    def observe(self, latency_ms: float) -> int:
        """Fold one observed latency into the EWMA; returns the new batch size.

        Args:
            latency_ms: Observed latency of the dispatched micro-batch — the
                dispatch time, or the batch's worst end-to-end latency under
                e2e scoping.

        Returns:
            The batch size every engine of the group should use for its next
            micro-batch (unchanged when the controller is disabled).
        """
        self.observations += 1
        if self.ewma_ms is None:
            self.ewma_ms = float(latency_ms)
        else:
            self.ewma_ms = (self.alpha * float(latency_ms)
                            + (1.0 - self.alpha) * self.ewma_ms)
        if self.enabled:
            target = self.target_ms
            if self.ewma_ms > target:
                shrunk = max(self.min_batch, self.batch_size // 2)
                if shrunk < self.batch_size:
                    self.batch_size = shrunk
                    self.shrinks += 1
            elif (self.ewma_ms < self.grow_below * target
                  and self.batch_size < self.max_batch):
                self.batch_size += 1
                self.grows += 1
        self.trace.append(self.batch_size)
        return self.batch_size

    def as_dict(self) -> dict:
        """Plain-dict snapshot of the controller, ready for JSON reports."""
        return {
            "slo_ms": self.slo_ms,
            "ewma_ms": self.ewma_ms,
            "batch_size": self.batch_size,
            "min_batch": self.min_batch,
            "max_batch": self.max_batch,
            "observations": self.observations,
            "shrinks": self.shrinks,
            "grows": self.grows,
            "trace": list(self.trace),
        }

    def __repr__(self) -> str:
        slo = f"{self.slo_ms:.1f}ms" if self.slo_ms is not None else "off"
        return (f"AdaptiveBatchController(slo={slo}, batch={self.batch_size} "
                f"in [{self.min_batch}, {self.max_batch}])")


class StreamingRouter(FleetRouter):
    """A fleet router whose per-relation micro-batch sizes chase a latency SLO.

    Identical to :class:`~repro.serve.router.FleetRouter` in everything that
    determines *what* is answered — routing, replica hashing, admission
    control, caching, the ``(seed, global index)`` random-stream keying — and
    different only in *when* micro-batches dispatch: each replica group gets
    one :class:`AdaptiveBatchController` (shared by its replicas, so the
    whole relation converges on one batch size) that observes every dispatch
    through the engines' ``batch_hook`` and retunes the group's batch size
    within ``[min_batch, batch_size]``.

    The effective SLO of a relation is its registry-level ``slo_ms`` when
    set (see :meth:`~repro.serve.registry.ModelRegistry.register_table`),
    falling back to the router-wide ``slo_ms``; a relation with neither is
    served at the fixed configured batch size.  Controllers — like the
    conditional caches — live for the router's lifetime and carry their
    learned batch size across workload scopes.

    Parameters
    ----------
    registry:
        The model fleet (as for :class:`~repro.serve.router.FleetRouter`).
    slo_ms:
        Router-wide target p95 latency in milliseconds (measured per
        ``slo_scope``); ``None`` defers entirely to per-relation SLOs.
    adaptive:
        ``True`` forces adaptation on (relations without any SLO stay
        fixed), ``False`` disables it everywhere (the router then behaves
        exactly like a plain fleet router — the baseline mode of the
        ``serve_stream`` benchmark), and ``None`` (default) enables it
        exactly where an SLO exists.
    slo_scope:
        What latency the SLO is stated against.  ``"e2e"`` (default) feeds
        each controller the batch's worst **end-to-end** latency — the
        oldest query's queueing delay plus the dispatch — so the SLO covers
        what a submitter actually waits; ``"dispatch"`` feeds the dispatch
        latency alone (the pre-fix accounting, kept for comparison: it lets
        queueing delay in partially filled batches go unsteered).
    min_batch:
        Lower clamp of every controller (default 1).
    ewma_alpha / headroom / grow_below:
        Controller tuning, see :class:`AdaptiveBatchController`.
    **router_kwargs:
        Everything :class:`~repro.serve.router.FleetRouter` accepts
        (``batch_size`` doubles as each controller's ``max_batch``;
        ``flush_after_ms`` bounds queueing delay, which e2e scoping makes
        visible).
    """

    #: Valid ``slo_scope`` values.
    SLO_SCOPES = ("dispatch", "e2e")

    def __init__(self, registry: ModelRegistry, *, slo_ms: float | None = None,
                 adaptive: bool | None = None, slo_scope: str = "e2e",
                 min_batch: int = 1,
                 ewma_alpha: float = 0.3, headroom: float = 0.8,
                 grow_below: float = 0.5, **router_kwargs) -> None:
        if slo_ms is not None and slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {slo_ms}")
        if slo_scope not in self.SLO_SCOPES:
            raise ValueError(f"slo_scope must be one of {self.SLO_SCOPES}, "
                             f"got {slo_scope!r}")
        super().__init__(registry, **router_kwargs)
        if min_batch < 1 or min_batch > self.batch_size:
            raise ValueError(f"min_batch must be in [1, {self.batch_size}], "
                             f"got {min_batch}")
        self.slo_ms = slo_ms
        self.adaptive = adaptive
        self.slo_scope = slo_scope
        self.min_batch = min_batch
        self.ewma_alpha = ewma_alpha
        self.headroom = headroom
        self.grow_below = grow_below
        # Fail fast on bad tuning: the controller's constructor is the one
        # source of truth for the knob invariants, so probe it now instead of
        # letting the first routed query crash mid-serve.
        AdaptiveBatchController(slo_ms=slo_ms, max_batch=self.batch_size,
                                min_batch=min_batch, alpha=ewma_alpha,
                                headroom=headroom, grow_below=grow_below)
        self._controllers: dict[str, AdaptiveBatchController] = {}
        #: Route -> controller.observations at the current scope's start;
        #: lets reports slice the lifetime trace down to this scope.
        self._scope_marks: dict[str, int] = {}

    def effective_slo(self, route: str) -> float | None:
        """The SLO a route's controller targets: registry override, then router."""
        registry_slo = self.registry.slo_ms(route)
        return registry_slo if registry_slo is not None else self.slo_ms

    def controller(self, route: str) -> AdaptiveBatchController:
        """The adaptive controller of one route (materialised with its group)."""
        self.group(route)
        return self._controllers[route]

    def _group_created(self, route: str, group: ReplicaGroup) -> None:
        """Attach one shared controller to the freshly materialised group.

        A route rebuilt after an epoch bump (see
        :meth:`repro.serve.router.FleetRouter._begin_scope`) keeps the
        controller it already converged — a data refresh invalidates cached
        *answers*, not the learned batch size — so only the hook is re-wired
        onto the new engines, which also start at the converged size.
        """
        controller = self._controllers.get(route)
        if controller is None:
            # adaptive=False freezes every controller; adaptive=None/True
            # leave it to the SLO (no SLO anywhere -> disabled controller,
            # fixed batch).
            slo = self.effective_slo(route)
            if self.adaptive is False:
                slo = None
            controller = AdaptiveBatchController(
                slo_ms=slo, max_batch=self.batch_size, min_batch=self.min_batch,
                alpha=self.ewma_alpha, headroom=self.headroom,
                grow_below=self.grow_below)
            self._controllers[route] = controller
            self._scope_marks[route] = controller.observations
        else:
            for engine in group.engines:
                engine.batch_size = controller.batch_size

        def hook(record, group=group, controller=controller):
            # e2e scope steers on the batch's worst submission-to-result
            # latency, so queueing delay in partially filled batches shrinks
            # the batch size exactly like slow dispatches do.
            observed = (record.max_e2e_ms if self.slo_scope == "e2e"
                        else record.latency_ms)
            size = controller.observe(observed)
            for engine in group.engines:
                engine.batch_size = size

        for engine in group.engines:
            engine.batch_hook = hook

    def _begin_scope(self) -> None:
        """Start a fresh scope; mark where each controller's trace stands.

        Controllers themselves are lifetime state (like the caches): the
        converged batch size carries over.  The marks make each scope's
        report slice the trace to its own dispatches.
        """
        super()._begin_scope()
        for route, controller in self._controllers.items():
            self._scope_marks[route] = controller.observations

    def _batch_traces(self) -> dict[str, list[int]]:
        """Every materialised route's batch-size trace for the current scope.

        Element 0 is the batch size in force when the scope began (the
        configured maximum on a fresh router, the converged size on a warm
        one), followed by one entry per dispatch observed this scope — so
        ``len(trace) - 1`` equals the scope's dispatch count, up to
        ``trace_limit`` truncation.
        """
        traces: dict[str, list[int]] = {}
        for route, controller in self._controllers.items():
            since_mark = controller.observations - self._scope_marks.get(route, 0)
            lifetime = list(controller.trace)
            traces[route] = lifetime[max(0, len(lifetime) - since_mark - 1):]
        return traces

    def controllers_report(self) -> dict[str, dict]:
        """Per-route controller snapshots (EWMA, bounds, shrink/grow counts)."""
        return {route: controller.as_dict()
                for route, controller in self._controllers.items()}


class AsyncFleetClient:
    """Asynchronous streaming frontend: submit one query, await its result.

    The client layers futures over a (streaming or plain) fleet router.  The
    engines underneath stay synchronous and single-threaded — resolution
    happens inline, on whichever ``submit()`` or ``flush()`` call causes a
    micro-batch to dispatch — so there are no OS threads, no locks and no
    cross-thread hand-offs; asyncio is purely the coordination surface
    between producers.

    Usage::

        async def serve(router, queries):
            client = AsyncFleetClient(router)
            futures = [client.submit(query) for query in queries]
            report = await client.drain()      # flush + settle every future
            return [future.result() for future in futures], report

    Determinism: a query's estimate is keyed by ``(seed, global submission
    index)``.  By default the client numbers queries in arrival order; a
    producer that assigned indices up front may pass ``index=`` explicitly
    and submit in *any* order — the estimates equal the in-order batch run's
    (the invariance suite asserts this under shuffled asyncio arrival).

    Two asyncio conveniences layer on top of the synchronous router:

    * **Awaitable backpressure** — ``await client.submit_async(query)``
      suspends the producer while the query's replica group is at
      ``max_pending`` and resumes it once capacity frees, replacing
      per-submit :class:`~repro.serve.router.AdmissionError` storms (and the
      ``block`` policy's forced early dispatch) with cooperative queueing.
    * **Wall-clock flush driver** — when the router carries a flush deadline
      (``flush_after_ms``), a background task sleeps until the earliest
      deadline and ticks the router, so a lone query in a partially filled
      batch is dispatched within the bound even if no further submissions
      ever arrive.

    Parameters
    ----------
    router:
        The :class:`~repro.serve.router.FleetRouter` (or
        :class:`StreamingRouter`) to stream into.  The client chains onto
        the router's ``on_result`` observer; any previously installed
        observer keeps firing first.
    flush_driver:
        Whether to run the wall-clock flush driver: a background asyncio
        task that sleeps until the router's earliest flush deadline and
        ticks it, so a partially filled micro-batch dispatches within its
        ``flush_after_ms`` even when no further submissions arrive.
        ``None`` (default) starts the driver exactly when the router carries
        any flush deadline; ``False`` disables it (the caller ticks the
        router itself — what :func:`stream_workload` does to stay
        deterministic under a virtual clock); ``True`` forces it on.
    clock:
        The clock :meth:`pace` paces arrivals against.  ``None`` (default)
        uses the router's own clock, so arrival pacing and flush deadlines
        read the same timeline; inject a
        :class:`~repro.serve.engine.VirtualClock` here to replay a recorded
        arrival trace deterministically under test (a frozen clock makes
        :meth:`pace` advance virtual time instead of sleeping).
    """

    def __init__(self, router: FleetRouter, *,
                 flush_driver: bool | None = None, clock=None) -> None:
        self.router = router
        #: The arrival-pacing clock (see :meth:`pace`); callable -> seconds.
        self.clock = clock if clock is not None else router.clock
        self._futures: dict[int, asyncio.Future] = {}
        #: Every index this client ever submitted: uniqueness is enforced for
        #: the client's whole lifetime, not just while a future is pending —
        #: reusing a dispatched index would silently share a random stream.
        self._used: set[int] = set()
        self._flush_driver = flush_driver
        self._driver_task: asyncio.Task | None = None
        self._wakeup: asyncio.Event | None = None
        #: Route -> producers suspended in :meth:`acquire`, woken (to re-check
        #: capacity) whenever one of the route's results resolves.
        self._admission_waiters: dict[str, list[asyncio.Future]] = {}
        self._prior_on_result = router.on_result
        # Pin one bound-method object: attribute access creates a fresh one
        # each time, so close() must compare against exactly what it installed.
        self._installed = self._resolve
        router.on_result = self._installed

    # ------------------------------------------------------------------ #
    @property
    def outstanding(self) -> int:
        """Futures submitted but not yet resolved (their batch is pending)."""
        return len(self._futures)

    def _resolve(self, result: RoutedResult) -> None:
        """Router observer: settle the future registered under the index."""
        if self._prior_on_result is not None:
            self._prior_on_result(result)
        future = self._futures.pop(result.index, None)
        if future is not None and not future.cancelled():
            future.set_result(result)
        # A resolved result means its micro-batch dispatched: the route's
        # pending count dropped, so suspended producers may now be admitted.
        waiters = self._admission_waiters.pop(result.route, None)
        if waiters:
            for waiter in waiters:
                if not waiter.done():
                    waiter.set_result(None)

    def submit(self, query: Query, index: int | None = None) -> asyncio.Future:
        """Stream one query in; returns the future of its routed result.

        Must be called from within a running asyncio event loop.  The future
        resolves when the query's micro-batch dispatches — which may be
        during this very call (batch full, admission-forced early dispatch,
        or a result-cache hit), so the returned future can already be done.

        Args:
            query: The (table-qualified) query to estimate.
            index: Explicit global submission index; ``None`` (default)
                numbers queries in arrival order.  Indices key the per-query
                random streams and must be unique — the client enforces
                uniqueness across its whole lifetime (a dispatched index is
                just as used as a pending one).

        Returns:
            An :class:`asyncio.Future` resolving to the query's
            :class:`~repro.serve.router.RoutedResult`.

        Raises:
            RoutingError: The query names no servable relation (nothing is
                enqueued and no index is consumed).
            AdmissionError: The target replica group is full under the
                ``shed`` overflow policy (ditto).
            ValueError: ``index`` was already submitted through this client.
        """
        loop = asyncio.get_running_loop()
        if index is None:
            index = self.router.next_index
        if index in self._used:
            raise ValueError(f"submission index {index} was already used by "
                             "this client; every query needs its own index")
        future = loop.create_future()
        self._futures[index] = future
        self._used.add(index)
        try:
            self.router.submit(query, index=index)
        except BaseException:
            self._futures.pop(index, None)
            self._used.discard(index)
            raise
        # Start the flush driver only after a successful submission: a
        # submit that dies in the router (unroutable query, failing
        # registry, refused admission) must not leave a driver task running
        # with nothing to drive — the teardown-leak regression in
        # tests/test_serve_procfleet_lifecycle.py pins this down.
        self._ensure_driver(loop)
        if self._wakeup is not None:
            self._wakeup.set()  # a new pending batch may move the deadline
        return future

    async def acquire(self, query: Query) -> str:
        """Suspend until the query's replica group has admission capacity.

        Awaitable backpressure: instead of the submit-time ``block`` early
        dispatch or a ``shed`` :class:`AdmissionError`, a producer awaits
        here and is resumed once the group's pending count drops below
        ``max_pending`` (capacity frees when a micro-batch dispatches — by
        filling up, by a flush deadline, or by another producer's flush).
        Returns the resolved route; a group without a ``max_pending`` bound
        admits immediately.

        When the route carries **no flush deadline — or no flush driver is
        running to fire one** — nothing would ever dispatch a partially
        filled batch while every producer is suspended, so rather than
        deadlock, the fullest replica is flushed early (exactly the
        ``block`` policy's behaviour, made awaitable).

        Raises:
            RoutingError: The query names no servable relation.
        """
        route = self.router.resolve_route(query)
        group = self.router.group(route)
        loop = asyncio.get_running_loop()
        self._ensure_driver(loop)
        while group.max_pending is not None \
                and group.pending >= group.max_pending:
            # Waiting is only safe when something will actually fire the
            # route's flush deadline: a *running* driver.  A configured
            # deadline with no driver (flush_driver=False, or auto mode
            # skipping a frozen virtual clock) would park every producer
            # with nothing left to tick — deadlock, not backpressure.
            driver_alive = (self._driver_task is not None
                            and not self._driver_task.done())
            if not driver_alive or not any(
                    engine.flush_after_ms is not None
                    for engine in group.engines):
                fullest = max(group.engines,
                              key=lambda engine: engine.pending)
                fullest.flush()
                continue
            waiter = loop.create_future()
            self._admission_waiters.setdefault(route, []).append(waiter)
            try:
                await waiter
            finally:
                pending = self._admission_waiters.get(route)
                if pending and waiter in pending:
                    pending.remove(waiter)
        return route

    async def submit_async(self, query: Query,
                           index: int | None = None) -> asyncio.Future:
        """Backpressure-aware :meth:`submit`: suspends until admitted.

        Semantically ``await acquire(query)`` followed by :meth:`submit` —
        the call returns (with the query's result future) only once the
        query has been admitted to its replica group, so concurrent
        producers throttle to the fleet's capacity instead of racing into
        per-submit :class:`AdmissionError` storms under the ``shed`` policy.

        Args:
            query: The (table-qualified) query to estimate.
            index: Explicit global submission index, as for :meth:`submit`.

        Returns:
            The query's result future (possibly already done).

        Raises:
            RoutingError: The query names no servable relation.
            ValueError: ``index`` was already submitted through this client.
        """
        await self.acquire(query)
        # No awaits sit between acquire()'s capacity re-check and this
        # synchronous submit, so on a cooperative event loop the freed slot
        # cannot be lost to a racing producer: the submit is admitted.  (A
        # retry here would also double-count the group's shed tally, since
        # ReplicaGroup.submit counts before raising.)
        return self.submit(query, index=index)

    async def pace(self, until: float) -> None:
        """Suspend until the client's clock reads at least ``until`` seconds.

        The arrival-pacing primitive of the open-loop load generator
        (:mod:`repro.serve.loadgen`): a producer replaying an arrival trace
        paces each submission with ``await client.pace(start + t_i)``.  On a
        real or hybrid clock this sleeps the remaining wall time (one
        clock-second is one real second).  On a **frozen**
        :class:`~repro.serve.engine.VirtualClock` — ``advance()`` with no
        real-time base — sleeping can never make the deadline arrive, so the
        clock is advanced to ``until`` directly (after a zero-sleep yield,
        keeping producer interleaving): trace replay becomes a pure function
        of the trace, byte-stable run after run.

        A deadline already in the past returns immediately — open-loop
        pacing never *delays* an overdue arrival, it only spaces out early
        ones.
        """
        frozen = (hasattr(self.clock, "advance")
                  and getattr(self.clock, "base", None) is None)
        while True:
            remaining = until - self.clock()
            if remaining <= 0:
                return
            if frozen:
                await asyncio.sleep(0)  # yield: interleave like real producers
                self.clock.advance(remaining)
            else:
                await asyncio.sleep(remaining)

    # ------------------------------------------------------------------ #
    def _ensure_driver(self, loop: asyncio.AbstractEventLoop) -> None:
        """Start the wall-clock flush driver once, if it is wanted.

        In auto mode (``flush_driver=None``) the driver starts exactly when
        the router carries a flush deadline *and* its clock moves with real
        time — a fully virtual clock (a :class:`VirtualClock` with no
        ``base``) can never make a deadline due by sleeping, so auto mode
        leaves ticking to the caller there instead of spinning a task that
        would wake forever for nothing.
        """
        if self._driver_task is not None:
            return
        wanted = self._flush_driver
        if wanted is None:
            frozen_clock = (hasattr(self.router.clock, "advance")
                            and getattr(self.router.clock, "base", None) is None)
            wanted = self.router.has_flush_timeouts and not frozen_clock
        if not wanted:
            return
        self._wakeup = asyncio.Event()
        self._driver_task = loop.create_task(self._drive_flushes())

    def _abort(self, error: BaseException) -> None:
        """Fail every unresolved future and suspended producer with ``error``.

        The flush driver calls this when a timeout dispatch raises: the
        error must surface through the futures awaiters already hold — a
        dead driver with silently pending futures is exactly the hang class
        :meth:`close` exists to prevent.
        """
        outstanding, self._futures = self._futures, {}
        for future in outstanding.values():
            if not future.done():
                future.set_exception(error)
        waiters, self._admission_waiters = self._admission_waiters, {}
        for route_waiters in waiters.values():
            for waiter in route_waiters:
                if not waiter.done():
                    waiter.set_exception(error)

    async def _drive_flushes(self) -> None:
        """Background task: sleep until the earliest flush deadline, tick it.

        Every loop iteration ticks the router (dispatching whatever is
        overdue) and then sleeps until the next deadline — or until a new
        submission moves it.  With no deadline outstanding the task parks on
        the wake-up event, so an idle client costs nothing.  If a timeout
        dispatch raises, the error is propagated into every outstanding
        future (see :meth:`_abort`) and the driver stops.
        """
        while True:
            try:
                deadline = self.router.tick()
            except Exception as error:
                self._abort(error)
                # Clear the handle so the next submission can start a fresh
                # driver: a dead driver left registered would silently void
                # the flush-timeout guarantee for the rest of the client's
                # life.
                self._driver_task = None
                return
            if deadline is None:
                await self._wakeup.wait()
                self._wakeup.clear()
                continue
            delay = deadline - self.router.clock()
            if delay > 0:
                try:
                    await asyncio.wait_for(self._wakeup.wait(), timeout=delay)
                    self._wakeup.clear()
                except asyncio.TimeoutError:
                    pass  # deadline reached: the next tick() fires it

    def flush(self) -> None:
        """Dispatch every partially filled micro-batch, settling its futures."""
        self.router.flush()

    async def drain(self) -> FleetReport:
        """Flush everything, await every outstanding future, return the report.

        An empty stream (nothing ever submitted) returns a well-formed empty
        report: zero queries, zeroed latency percentiles.
        """
        self.router.flush()
        if self._futures:
            await asyncio.gather(*list(self._futures.values()))
        return self.router.report()

    def close(self) -> None:
        """Detach from the router and fail everything still unresolved.

        Restores the router's previous result observer, stops the flush
        driver, **cancels every outstanding result future** and every
        producer suspended in :meth:`acquire` — a closed client must never
        leave an awaiter suspended forever (the queries themselves may still
        be pending inside the router; ``router.flush()`` dispatches them,
        their results simply no longer resolve through this client).
        Idempotent.
        """
        if self.router.on_result is self._installed:
            self.router.on_result = self._prior_on_result
        if self._driver_task is not None:
            self._driver_task.cancel()
            self._driver_task = None
        outstanding, self._futures = self._futures, {}
        for future in outstanding.values():
            if not future.done():
                future.cancel("AsyncFleetClient closed with the query's "
                              "micro-batch still in flight")
        waiters, self._admission_waiters = self._admission_waiters, {}
        for route_waiters in waiters.values():
            for waiter in route_waiters:
                if not waiter.done():
                    waiter.cancel("AsyncFleetClient closed while awaiting "
                                  "admission")

    async def __aenter__(self) -> "AsyncFleetClient":
        """Enter the streaming scope; starts the flush driver if wanted."""
        self._ensure_driver(asyncio.get_running_loop())
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Drain outstanding futures (on clean exit) and detach.

        On the exception path the drain is skipped — the queries of an
        aborted scope are not worth finishing — and :meth:`close` cancels
        every unresolved future instead, so concurrent awaiters observe
        :class:`asyncio.CancelledError` rather than deadlocking on futures
        nothing will ever resolve.
        """
        try:
            if exc_type is None:
                await self.drain()
        finally:
            self.close()


def stream_workload(router: FleetRouter, queries: list[Query], *,
                    arrival_order: list[int] | None = None,
                    advance_ms: float | None = None) -> FleetReport:
    """Serve a workload through :class:`AsyncFleetClient` in a private loop.

    One-call bridge from list-shaped workloads to the streaming path, used by
    the CLI's ``--stream`` mode, the ``serve_stream`` benchmark and the
    invariance tests.  Each query keeps its *workload position* as its
    submission index, so the returned report is comparable element-for-element
    with :meth:`FleetRouter.run` on the same list — even when
    ``arrival_order`` submits the queries in a different (e.g. shuffled)
    order.  Producers yield to the event loop between submissions, so
    arrivals interleave like independent asyncio tasks.

    The router is ticked after every submission, so flush deadlines
    (``flush_after_ms``) fire inline on this call stack — there is no
    background task, which keeps the batch pattern a pure function of the
    clock.  With a wall clock that pattern depends on host timing (the
    estimates never do); pass ``advance_ms`` with a
    :class:`repro.serve.engine.VirtualClock` on the router to script the
    timeline exactly — each submission then advances virtual time by that
    many milliseconds before the tick, and timeout-triggered flushes land on
    byte-stable batch boundaries, run after run.

    Args:
        router: The fleet router (or streaming router) to serve through.
        queries: The workload; element ``i`` is submitted with index ``i``.
        arrival_order: Permutation of ``range(len(queries))`` giving the
            order in which queries *arrive*; ``None`` = in order.
        advance_ms: Milliseconds of *virtual* inter-arrival time: the
            router's clock (which must expose ``advance()``, i.e. be a
            :class:`~repro.serve.engine.VirtualClock`) is advanced by this
            much after each submission.  ``None`` (default) leaves the clock
            alone — real time, real deadlines.

    Returns:
        The merged :class:`~repro.serve.router.FleetReport`, results in
        global index order.  Queries shed by the admission controller are
        skipped and counted per route in the report, like ``run()`` — with
        one indexing difference: indices here are *positions*, so a shed
        query's index is simply left unused (under ``run()`` the next query
        inherits it).  Position-keyed indices are what make the estimates
        independent of the arrival order, shed or not.
    """
    order = list(arrival_order) if arrival_order is not None \
        else list(range(len(queries)))
    if sorted(order) != list(range(len(queries))):
        raise ValueError("arrival_order must be a permutation of "
                         "range(len(queries))")
    if advance_ms is not None:
        if advance_ms < 0:
            raise ValueError(f"advance_ms must be non-negative, "
                             f"got {advance_ms}")
        if not hasattr(router.clock, "advance"):
            raise ValueError("advance_ms needs an advanceable router clock "
                             "(pass clock=VirtualClock() to the router)")
    router._begin_scope()

    async def main() -> FleetReport:
        # Deadlines are ticked inline below, not from a background driver:
        # the flush pattern stays a deterministic function of the clock.
        client = AsyncFleetClient(router, flush_driver=False)
        ticking = router.has_flush_timeouts
        try:
            for position in order:
                try:
                    client.submit(queries[position], index=position)
                except AdmissionError:
                    pass  # counted in the group's shed tally, like run()
                if advance_ms is not None:
                    router.clock.advance(advance_ms / 1000.0)
                if ticking:
                    router.tick()
                await asyncio.sleep(0)  # yield: interleave like real producers
            return await client.drain()
        finally:
            client.close()

    return asyncio.run(main())
