"""LRU caching for the serving layer: conditionals and whole results.

Two cache families live here, layered at different depths of the serve stack:

* **Conditional-probability caching** — progressive sampling asks the model
  the same question over and over: the conditional ``P(X_i | x_<i)`` depends
  only on the *prefix* of the sample path, and prefixes repeat heavily —
  every path shares the empty prefix at the first column, early columns have
  tiny domains, and concurrent queries over the same table walk overlapping
  regions.  :class:`CachedConditionalModel` exploits this by memoising
  per-prefix distributions in an LRU map keyed on
  ``(column, prefix_codes_bytes)``, so repeated prefixes inside a micro-batch
  and across micro-batches hit memory instead of re-running the network.

  The wrapper implements the same protocol as
  :class:`repro.core.made.AutoregressiveModel` (``conditional_probs``,
  ``log_prob``, ``domain_sizes``, ``order``), so it can be dropped in front
  of any model — neural or oracle — without the sampler noticing.

* **Result caching** — above all the models, the fleet router can memoise
  finished *selectivities* in a :class:`ResultCache` keyed on the
  canonicalised query (:func:`canonical_query_key`): an exact repeat of an
  already answered query — a replayed workload, a dashboard refreshing the
  same filter — costs a dictionary lookup instead of a sampler run.  The key
  is canonical, not textual: predicate order, ``IN``-list order and duplicate
  ``IN`` values do not produce distinct entries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..query.predicates import DNFQuery, Operator, Query

__all__ = ["CacheStats", "ConditionalProbCache", "PackedConditionalCache",
           "CachedConditionalModel", "ResultCacheStats", "ResultCache",
           "canonical_query_key"]


@dataclass
class CacheStats:
    """Hit/miss accounting of one conditional-probability cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Rows whose distribution was served from memory instead of the model.
    rows_served_from_cache: int = 0
    #: Rows actually pushed through the model (after prefix deduplication).
    rows_evaluated: int = 0

    @property
    def lookups(self) -> int:
        """Total prefix lookups: hits plus misses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of prefix lookups answered from memory (0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """Plain-dict form of the counters, ready for JSON serialisation."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "rows_served_from_cache": self.rows_served_from_cache,
            "rows_evaluated": self.rows_evaluated,
        }


class ConditionalProbCache:
    """Bounded LRU map from ``(column, prefix bytes)`` to a distribution.

    Parameters
    ----------
    max_entries:
        Maximum number of cached distributions; the least recently used entry
        is evicted once the bound is exceeded.  ``0`` disables caching (every
        lookup misses and nothing is stored).
    """

    def __init__(self, max_entries: int = 262144) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = max_entries
        self.stats = CacheStats()
        #: Data epoch the cached distributions were computed at (see
        #: :meth:`invalidate`); informational — the cache holds entries of
        #: exactly one epoch at a time.
        self.epoch: int = 0
        self._entries: OrderedDict[tuple[int, bytes], np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple[int, bytes]) -> np.ndarray | None:
        """Look up one distribution, updating LRU order and counters."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: tuple[int, bytes], distribution: np.ndarray) -> None:
        """Insert one distribution, evicting the LRU entry when full."""
        if self.max_entries == 0:
            return
        self._entries[key] = distribution
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every cached distribution (counters are left untouched)."""
        self._entries.clear()

    def invalidate(self, epoch: int) -> None:
        """Atomically drop every entry and stamp the cache with a new epoch.

        Called when the served relation's data epoch moves (rows were
        ingested): every cached distribution was computed by the previous
        model/data version, so the whole store is dropped in one sweep —
        afterwards ``len(cache) == 0`` and no stale distribution can ever be
        served.  Counters are left untouched (the scope report still covers
        the pre-bump traffic).
        """
        self.clear()
        self.epoch = int(epoch)


class PackedConditionalCache:
    """Vectorized conditional store keyed on packed prefix codes.

    The deduplicating progressive sampler hands the serving layer batches
    that are already one row per *distinct* prefix, with every prefix
    packable into a single int64 (mixed-radix over the visible columns).
    This store exploits that shape: per column it keeps a sorted int64 key
    array with an aligned ``(entries, domain)`` value matrix, so a
    thousand-row lookup is one :func:`numpy.searchsorted` and a bulk insert
    is one merge-and-argsort — a handful of C calls where the
    :class:`ConditionalProbCache` pays a Python dict dance per row.  On the
    serving hot path that bookkeeping, not the model, was the dominant cost.

    Capacity is generational, not LRU: once the total number of stored
    distributions exceeds ``max_entries``, entries older than the median
    insertion batch are dropped in one vectorized sweep.  True LRU would
    reintroduce per-row bookkeeping on every hit, which is exactly the cost
    this store exists to avoid; dropping the older half approximates it well
    for workloads whose hot prefixes recur (they are re-inserted on the next
    miss).

    Parameters
    ----------
    max_entries:
        Maximum total number of cached distributions across all columns.
        ``0`` disables storage (every lookup misses and nothing is kept).
    """

    def __init__(self, max_entries: int = 262144) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = max_entries
        self.stats = CacheStats()
        #: Data epoch the cached distributions were computed at (see
        #: :meth:`invalidate`).
        self.epoch: int = 0
        self._keys: dict[int, np.ndarray] = {}
        self._values: dict[int, np.ndarray] = {}
        self._stamps: dict[int, np.ndarray] = {}
        self._clock = 0

    def __len__(self) -> int:
        return sum(keys.size for keys in self._keys.values())

    def bulk_get(self, column: int, packed: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Look up an array of packed prefixes of one column at once.

        Returns ``(found, values)`` where ``found`` is a boolean mask over
        ``packed`` and ``values`` holds the cached distributions of the found
        keys in order (``None`` when nothing was found).
        """
        keys = self._keys.get(column)
        if keys is None or keys.size == 0:
            self.stats.misses += packed.size
            return np.zeros(packed.size, dtype=bool), None
        positions = np.searchsorted(keys, packed)
        positions[positions == keys.size] = 0  # out-of-range probes can't match
        found = keys[positions] == packed
        hits = int(np.count_nonzero(found))
        self.stats.hits += hits
        self.stats.misses += packed.size - hits
        if hits == 0:
            return found, None
        return found, self._values[column][positions[found]]

    def bulk_put(self, column: int, packed: np.ndarray,
                 distributions: np.ndarray) -> None:
        """Insert distinct packed prefixes with their distribution rows.

        Callers must not re-insert keys already stored for ``column`` (the
        wrapper only inserts rows that just missed); violating this wastes
        memory but stays correct — lookups resolve to one of the duplicates.
        """
        if self.max_entries == 0 or packed.size == 0:
            return
        stamps = np.full(packed.size, self._clock, dtype=np.int64)
        self._clock += 1
        keys = self._keys.get(column)
        if keys is None:
            order = np.argsort(packed, kind="stable")
            self._keys[column] = packed[order]
            # Fancy indexing copies — the cache never aliases caller memory.
            self._values[column] = np.asarray(distributions)[order]
            self._stamps[column] = stamps
        else:
            # Sorted-merge by insertion: the store is already sorted, so the
            # new keys' slots come from one binary search and the splice is a
            # C-level memmove — no re-sort of the whole column.
            order = np.argsort(packed, kind="stable")
            sorted_new = packed[order]
            positions = np.searchsorted(keys, sorted_new)
            self._keys[column] = np.insert(keys, positions, sorted_new)
            self._values[column] = np.insert(self._values[column], positions,
                                             np.asarray(distributions)[order],
                                             axis=0)
            self._stamps[column] = np.insert(self._stamps[column], positions,
                                             stamps)
        while len(self) > self.max_entries:
            self._evict_old()

    def _evict_old(self) -> None:
        """Drop entries older than the median insertion batch, every column."""
        cutoff = np.median(np.concatenate(list(self._stamps.values())))
        for column in list(self._keys):
            keep = self._stamps[column] > cutoff
            dropped = int(keep.size - np.count_nonzero(keep))
            if dropped == 0:
                continue
            self.stats.evictions += dropped
            self._keys[column] = self._keys[column][keep]
            self._values[column] = self._values[column][keep]
            self._stamps[column] = self._stamps[column][keep]

    def clear(self) -> None:
        """Drop every cached distribution (counters are left untouched)."""
        self._keys.clear()
        self._values.clear()
        self._stamps.clear()

    def invalidate(self, epoch: int) -> None:
        """Atomically drop every entry and stamp the cache with a new epoch.

        The packed store holds distributions of exactly one data/model
        version; when the served relation's epoch moves the whole store is
        dropped in one sweep (``len(cache) == 0`` afterwards), so a bumped
        epoch can never serve a stale distribution.  Counters are left
        untouched — the scope report still covers the pre-bump traffic.
        """
        self.clear()
        self.epoch = int(epoch)


class CachedConditionalModel:
    """Drop-in model wrapper that memoises ``conditional_probs`` per prefix.

    For each requested batch the wrapper (1) projects every row onto the
    columns that precede ``column_index`` in the autoregressive order — the
    only inputs ``conditional_probs`` may depend on, see the batch contract on
    :meth:`repro.core.made.AutoregressiveModel.conditional_probs` — (2)
    deduplicates the projected prefixes, (3) serves known prefixes from the
    LRU cache and (4) evaluates the model once on the representative rows of
    the unknown prefixes, caching their distributions for later batches.

    Consulting the map costs a Python-level lookup per *distinct* prefix, so
    for batches whose prefixes are almost all distinct (late columns of wide
    tables) the bookkeeping would outweigh the saved network rows; when the
    distinct-prefix fraction exceeds ``bypass_fraction`` the wrapper therefore
    skips the map and only deduplicates the batch, which is pure numpy.

    Parameters
    ----------
    model:
        Any model implementing the autoregressive protocol.
    cache:
        Shared :class:`ConditionalProbCache`; a private one is created from
        ``max_entries`` when omitted.
    max_entries:
        Capacity of the private cache when ``cache`` is not supplied.
    bypass_fraction:
        Skip the LRU map (but still deduplicate) for batches where
        ``distinct prefixes > bypass_fraction * rows``.  ``1.0`` never
        bypasses.
    chunk_rows:
        Evaluate the model at most this many rows at a time.  Micro-batched
        serving can stack tens of thousands of sample paths into one request;
        chunking keeps each forward pass inside the CPU caches, which is
        several times faster per row than one huge pass.
    assume_unique:
        Promise that every batch already carries *distinct* prefixes — the
        contract of the prefix-deduplicating progressive sampler
        (:class:`repro.core.progressive.ProgressiveSampler` with ``dedup``
        on).  The wrapper then skips its own deduplication pass and always
        consults the LRU map (``bypass_fraction`` is ignored: with all-unique
        batches the distinct fraction is always 1, which would otherwise
        bypass the map and destroy warm-cache reuse across micro-batches).
    """

    def __init__(self, model,
                 cache: ConditionalProbCache | PackedConditionalCache | None = None,
                 max_entries: int = 262144, bypass_fraction: float = 0.5,
                 chunk_rows: int = 4096, assume_unique: bool = False) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")
        if isinstance(cache, PackedConditionalCache) and not assume_unique:
            raise ValueError("PackedConditionalCache requires assume_unique "
                             "batches (the deduplicating sampler contract)")
        self.model = model
        if cache is None:
            cache = (PackedConditionalCache(max_entries) if assume_unique
                     else ConditionalProbCache(max_entries))
        self.cache = cache
        self.bypass_fraction = bypass_fraction
        self.chunk_rows = chunk_rows
        self.assume_unique = assume_unique
        #: Rows this wrapper pushed through the model.  Unlike
        #: ``stats.rows_evaluated`` (which lives on the cache and is shared by
        #: every replica of a group) this counter is wrapper-local, so each
        #: engine can report its own model work without double counting.
        self.rows_evaluated = 0
        self.order = list(model.order)
        self._prefix_columns = {
            column: self.order[:position]
            for position, column in enumerate(self.order)
        }
        # Mixed-radix packing of each column's prefix into one int64, used to
        # deduplicate with a fast scalar sort instead of a row-wise one.  Falls
        # back to row-wise deduplication when the radix product overflows.
        domain_sizes = model.domain_sizes()
        self._prefix_radix: dict[int, np.ndarray | None] = {}
        for column, prefix in self._prefix_columns.items():
            sizes = [domain_sizes[c] for c in prefix]
            if sizes and float(np.prod([float(s) for s in sizes])) < 2.0 ** 62:
                radix = np.ones(len(sizes), dtype=np.int64)
                for position in range(len(sizes) - 2, -1, -1):
                    radix[position] = radix[position + 1] * sizes[position + 1]
                self._prefix_radix[column] = radix
            else:
                self._prefix_radix[column] = None

    # -- protocol delegation ------------------------------------------- #
    @property
    def stats(self) -> CacheStats:
        """Hit/miss counters of the underlying conditional cache."""
        return self.cache.stats

    def domain_sizes(self) -> list[int]:
        """Per-column domain sizes of the wrapped model (protocol delegate)."""
        return self.model.domain_sizes()

    def log_prob(self, codes: np.ndarray) -> np.ndarray:
        """Joint log-likelihood of encoded rows (protocol delegate, uncached)."""
        return self.model.log_prob(codes)

    def _evaluate(self, column_index: int, codes: np.ndarray) -> np.ndarray:
        """Run the wrapped model in CPU-cache-sized chunks."""
        num_rows = codes.shape[0]
        if num_rows <= self.chunk_rows:
            return self.model.conditional_probs(column_index, codes)
        chunks = [self.model.conditional_probs(column_index, codes[start:start + self.chunk_rows])
                  for start in range(0, num_rows, self.chunk_rows)]
        return np.concatenate(chunks, axis=0)

    # ------------------------------------------------------------------ #
    def conditional_probs(self, column_index: int, codes: np.ndarray) -> np.ndarray:
        """Per-row distributions of one column, served through the prefix cache.

        Args:
            column_index: The column (in storage order) being distributed.
            codes: ``(rows, columns)`` dictionary-encoded inputs; only the
                columns preceding ``column_index`` in the autoregressive
                order may influence the result.

        Returns:
            ``(rows, domain_size)`` array of conditional probabilities, equal
            to the wrapped model's output (cache hits are exact, never
            approximations).
        """
        codes = np.asarray(codes, dtype=np.int64)
        num_rows = codes.shape[0]
        domain = self.model.domain_sizes()[column_index]
        if num_rows == 0:
            return np.empty((0, domain))
        prefix_columns = self._prefix_columns[column_index]

        if not prefix_columns:
            # Single shared prefix (the empty one): at most one model row.
            if isinstance(self.cache, PackedConditionalCache):
                probe = np.zeros(1, dtype=np.int64)
                found, values = self.cache.bulk_get(column_index, probe)
                distribution = values[0] if found[0] else None
            else:
                distribution = self.cache.get((column_index, b""))
            if distribution is None:
                distribution = self.model.conditional_probs(column_index, codes[:1])[0]
                if isinstance(self.cache, PackedConditionalCache):
                    self.cache.bulk_put(column_index, probe, distribution[None, :])
                else:
                    self.cache.put((column_index, b""), distribution)
                self.stats.rows_evaluated += 1
                self.rows_evaluated += 1
                self.stats.rows_served_from_cache += num_rows - 1
            else:
                self.stats.rows_served_from_cache += num_rows
            return np.broadcast_to(distribution, (num_rows, domain)).copy()

        prefixes = np.ascontiguousarray(codes[:, prefix_columns])
        radix = self._prefix_radix[column_index]

        if self.assume_unique:
            # Rows are already one-per-prefix (deduplicating sampler): key
            # them directly — no unique pass, no inverse scatter — and always
            # consult the store so prefixes recur across micro-batches for
            # free.
            if isinstance(self.cache, PackedConditionalCache):
                if radix is None:
                    # Prefix too wide to pack into one int64 — the rows are
                    # already deduplicated, so just evaluate them uncached.
                    fresh = self._evaluate(column_index, codes)
                    self.stats.misses += num_rows
                    self.stats.rows_evaluated += num_rows
                    self.rows_evaluated += num_rows
                    return fresh
                packed = prefixes @ radix
                table = np.empty((num_rows, domain))
                found, values = self.cache.bulk_get(column_index, packed)
                if values is not None:
                    table[found] = values
                missing_rows = np.flatnonzero(~found)
                if missing_rows.size:
                    fresh = self._evaluate(column_index, codes[missing_rows])
                    table[missing_rows] = fresh
                    self.cache.bulk_put(column_index, packed[missing_rows], fresh)
                    self.stats.rows_evaluated += missing_rows.size
                    self.rows_evaluated += missing_rows.size
                self.stats.rows_served_from_cache += num_rows - missing_rows.size
                return table
            if radix is not None:
                keys = [(column_index, int(value)) for value in prefixes @ radix]
            else:
                keys = [(column_index, prefixes[row].tobytes())
                        for row in range(num_rows)]
            table = np.empty((num_rows, domain))
            missing: list[int] = []
            for row, key in enumerate(keys):
                cached = self.cache.get(key)
                if cached is None:
                    missing.append(row)
                else:
                    table[row] = cached
            if missing:
                fresh = self._evaluate(column_index, codes[missing])
                for position, row in enumerate(missing):
                    table[row] = fresh[position]
                    self.cache.put(keys[row], fresh[position].copy())
                self.stats.rows_evaluated += len(missing)
                self.rows_evaluated += len(missing)
            self.stats.rows_served_from_cache += num_rows - len(missing)
            return table

        if radix is not None:
            packed = prefixes @ radix
            unique, first_rows, inverse = np.unique(packed, return_index=True,
                                                    return_inverse=True)
        else:
            unique, first_rows, inverse = np.unique(prefixes, axis=0,
                                                    return_index=True,
                                                    return_inverse=True)
        num_unique = unique.shape[0]

        if num_unique > self.bypass_fraction * num_rows:
            # Mostly-distinct prefixes: the per-prefix map bookkeeping would
            # cost more than it saves — deduplicate only.
            fresh = self._evaluate(column_index, codes[first_rows])
            self.stats.rows_evaluated += num_unique
            self.rows_evaluated += num_unique
            self.stats.rows_served_from_cache += num_rows - num_unique
            return fresh[inverse]

        table = np.empty((num_unique, domain))
        missing: list[int] = []
        if radix is not None:
            keys = [(column_index, int(value)) for value in unique]
        else:
            keys = [(column_index, unique[group].tobytes())
                    for group in range(num_unique)]
        for group, key in enumerate(keys):
            cached = self.cache.get(key)
            if cached is None:
                missing.append(group)
            else:
                table[group] = cached
        if missing:
            representatives = codes[first_rows[missing]]
            fresh = self._evaluate(column_index, representatives)
            # Copies, not views: a view would pin the whole freshly evaluated
            # array for as long as any single row of it survives in the LRU,
            # so eviction would stop bounding memory.
            for position, group in enumerate(missing):
                table[group] = fresh[position]
                self.cache.put(keys[group], fresh[position].copy())
            self.stats.rows_evaluated += len(missing)
            self.rows_evaluated += len(missing)
        self.stats.rows_served_from_cache += num_rows - len(missing)
        return table[inverse]


# --------------------------------------------------------------------------- #
# Fleet-wide result caching (exact-match on canonicalised queries)
# --------------------------------------------------------------------------- #
def _canonical_scalar(value: object) -> object:
    """One JSON-ish scalar: numpy scalars unwrap so ``3 == np.int64(3)``."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def _canonical_value(operator: Operator, value: object) -> object:
    """Hashable canonical form of one predicate literal.

    ``IN`` lists deduplicate and sort (membership is a set test, so order and
    repeats must not produce distinct cache entries); ``BETWEEN`` pairs become
    plain tuples; everything else unwraps numpy scalars.
    """
    if operator is Operator.IN:
        items = {_canonical_scalar(item) for item in value}
        return tuple(sorted(items, key=lambda item: (str(type(item)), repr(item))))
    if operator is Operator.BETWEEN:
        low, high = value
        return (_canonical_scalar(low), _canonical_scalar(high))
    return _canonical_scalar(value)


def _canonical_predicates(query: Query) -> tuple:
    return tuple(sorted(
        ((predicate.column, predicate.operator.value,
          _canonical_value(predicate.operator, predicate.value))
         for predicate in query.predicates),
        # Type-aware ordering: two predicates on the same column and
        # operator may carry incomparable literal types (1 vs "x"), which
        # raw tuple comparison would crash on.
        key=lambda spec: (spec[0], spec[1], str(type(spec[2])), repr(spec[2]))))


def canonical_query_key(query: "Query | DNFQuery",
                        route: str | None = None) -> tuple:
    """Stable exact-match cache key of one query.

    Two queries map to the same key iff they filter the same relation
    (``route`` wins over the query's own qualifier — the router passes the
    *resolved* route so default-routed and explicitly qualified forms of the
    same query share an entry) with the same predicate structure, regardless
    of predicate order or ``IN``-list order.  DNF keys are canonical over the
    *set* of branches (order-free, duplicates collapse), and a single-branch
    DNF query keys identically to the equivalent plain conjunction — the two
    forms produce bit-identical estimates, so they share a cache entry.
    """
    relation = route if route is not None else query.table
    if isinstance(query, DNFQuery):
        branch_keys = sorted({_canonical_predicates(branch)
                              for branch in query.branches}, key=repr)
        if len(branch_keys) == 1:
            return (relation, branch_keys[0])
        return (relation, ("dnf",) + tuple(branch_keys))
    return (relation, _canonical_predicates(query))


@dataclass
class ResultCacheStats:
    """Hit/miss accounting of the fleet-wide result cache.

    The plain counters (``hits``/``misses``/``evictions``/``stale_rejects``)
    cover the current *epoch scope* — traffic since the last
    :meth:`reset_scope` — so ``hit_rate`` never mixes pre- and
    post-invalidation traffic.  The ``lifetime_*`` counters roll completed
    scopes up; lifetime totals are the sum of both.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Lookups that found an entry stored under a *different* data epoch; the
    #: entry is dropped and the lookup counts as a miss, so a stale result is
    #: never served.
    stale_rejects: int = 0
    #: Rollup of the counters of completed epoch scopes (see
    #: :meth:`reset_scope`); excludes the current scope.
    lifetime_hits: int = 0
    lifetime_misses: int = 0
    lifetime_evictions: int = 0
    lifetime_stale_rejects: int = 0

    @property
    def lookups(self) -> int:
        """Total result lookups of the current scope: hits plus misses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of this scope's lookups answered from memory (0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def reset_scope(self) -> None:
        """Fold the current scope's counters into the lifetime rollup and zero them.

        Called by :meth:`ResultCache.clear` so the hit rate reported after an
        epoch invalidation describes post-invalidation traffic only, while
        the lifetime rollup keeps the full history.
        """
        self.lifetime_hits += self.hits
        self.lifetime_misses += self.misses
        self.lifetime_evictions += self.evictions
        self.lifetime_stale_rejects += self.stale_rejects
        self.hits = self.misses = self.evictions = self.stale_rejects = 0

    def as_dict(self) -> dict:
        """Plain-dict form of the counters, ready for JSON serialisation."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "stale_rejects": self.stale_rejects,
            "lifetime": {
                "hits": self.lifetime_hits + self.hits,
                "misses": self.lifetime_misses + self.misses,
                "evictions": self.lifetime_evictions + self.evictions,
                "stale_rejects": self.lifetime_stale_rejects + self.stale_rejects,
            },
        }


class ResultCache:
    """Bounded LRU map from a canonical query key to a finished selectivity.

    Layered *above* the per-model conditional-probability caches: a hit skips
    routing a query into any micro-batch at all.  Entries are selectivities
    (not cardinalities), so a cached answer stays valid under a pure
    ``set_row_count``-style rescaling of the serving relation — but **not**
    under data changes: the moment rows are appended (or the serving model is
    swapped) the cached selectivity itself is wrong.  Every entry is therefore
    stamped with the epoch it was computed at, and :meth:`get` refuses —
    drops, counts as :attr:`ResultCacheStats.stale_rejects` and reports a
    miss — any entry whose stored epoch differs from the requested one, so a
    bumped epoch invalidates the cache with zero stale hits by construction.

    Parameters
    ----------
    max_entries:
        Maximum number of cached results; the least recently used entry is
        evicted once the bound is exceeded.  ``0`` disables storage (every
        lookup misses and nothing is kept).
    """

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = max_entries
        self.stats = ResultCacheStats()
        self._entries: OrderedDict[tuple, tuple[float, object]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def epoch_of(self, key: tuple) -> object | None:
        """The epoch one entry was stored at (``None`` when absent, no counters)."""
        entry = self._entries.get(key)
        return None if entry is None else entry[1]

    def get(self, key: tuple, epoch: object = 0) -> float | None:
        """Look up one selectivity, updating LRU order and counters.

        An entry stored under any epoch other than ``epoch`` is stale: it is
        dropped, counted in :attr:`ResultCacheStats.stale_rejects` and the
        lookup reports a miss — the caller recomputes against the current
        model/data version.
        """
        try:
            selectivity, stored_epoch = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return None
        if stored_epoch != epoch:
            del self._entries[key]
            self.stats.stale_rejects += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return selectivity

    def put(self, key: tuple, selectivity: float, epoch: object = 0) -> None:
        """Insert one result stamped with its epoch, evicting LRU when full."""
        if self.max_entries == 0:
            return
        self._entries[key] = (float(selectivity), epoch)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every cached result and start a fresh stats scope.

        The scope counters fold into the lifetime rollup (see
        :meth:`ResultCacheStats.reset_scope`), so the hit rate reported after
        an invalidation never mixes pre- and post-epoch traffic.
        """
        self._entries.clear()
        self.stats.reset_scope()
