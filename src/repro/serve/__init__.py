"""Serving layer: batched, cached multi-query estimation (``repro.serve``).

The core package answers one query per call; this subpackage is the
deployment-facing front-end that answers *workloads*.  It exists because the
dominant cost of progressive sampling (§5, Algorithm 1) is the per-column
model forward pass, and that cost is almost perfectly shareable across
concurrent queries: the engine stacks the sample paths of a whole micro-batch
into one code matrix per column, skips columns every in-flight query leaves
unconstrained, drops zero-weight paths, and memoises per-prefix conditionals
in an LRU cache that persists across batches.

Serving workloads
-----------------
The typical loop — build an estimator once, then stream queries through an
:class:`EstimationEngine`::

    from repro.core import NaruConfig, NaruEstimator
    from repro.data import make_census
    from repro.query import WorkloadGenerator
    from repro.serve import EstimationEngine

    table = make_census(num_rows=5_000)
    naru = NaruEstimator(table, NaruConfig(epochs=5))
    naru.fit()

    engine = EstimationEngine(naru, batch_size=16, num_samples=200)
    queries = WorkloadGenerator(table, seed=7).generate(64)
    report = engine.run(queries)

    for result in report.results[:3]:
        print(result.query, "->", result.cardinality)
    print(f"{report.stats.queries_per_second:.0f} queries/s, "
          f"cache hit rate {report.stats.cache['hit_rate']:.0%}")

Three properties matter for operating it:

* **Determinism** — every query owns a random stream derived from
  ``(seed, query index)``, so estimates do not depend on how the workload was
  chopped into micro-batches; ``batch_size=1`` reproduces the sequential
  sampler's numbers.
* **Observability** — the report carries per-batch latencies and the cache's
  hit/miss/eviction counters, the numbers to watch when sizing
  ``batch_size`` and ``cache_entries``.
* **Replayability** — workloads can be written to and replayed from JSON
  files (:func:`save_workload` / :func:`load_workload`), which is what the
  ``python -m repro.serve`` command line does; see ``--save-workload`` and
  ``--workload``.

For a quick capacity check, ``python -m repro.serve --num-queries 64
--compare-sequential`` trains a small model, serves a generated workload both
batched and sequentially, and prints the throughput ratio; the CI bench-smoke
job runs the same comparison via ``benchmarks/test_serve_throughput.py``.

Serving many relations
----------------------
One engine fronts one model over one relation.  To serve a *fleet* — several
base tables plus join relations, the way the paper's §4.1 treats a join result
exactly like a base table — register everything in a
:class:`ModelRegistry` and front it with a :class:`FleetRouter`, which routes
each query by its ``Query.table`` qualifier, keeps per-model micro-batches and
per-model LRU caches under one shared ``cache_entries`` budget, and merges the
per-model reports into one :class:`FleetReport`::

    from repro.data import JoinSpec, make_sessions, make_users
    from repro.serve import FleetRouter, ModelRegistry

    registry = ModelRegistry(default_config=NaruConfig(epochs=5))
    registry.register_table(make_users(500))
    registry.register_table(make_sessions(8_000))
    registry.register_join(JoinSpec("sessions", "users", "user_id", "user_id"))
    registry.fit_all()

    router = FleetRouter(registry, batch_size=16, cache_entries=98_304)
    report = router.run(mixed_workload)          # queries carry .table
    for route, stats in report.stats.routes.items():
        print(route, stats["queries_per_second"])

Unroutable queries (unknown relation, or unqualified with several models and
no default route) raise :class:`RoutingError` at submission — they never
silently vanish from the report.  ``python -m repro.serve --tables users
sessions --join sessions:users:user_id:user_id`` is the command-line form.

Query language and estimator ensembles
--------------------------------------
Queries are not limited to conjunctions: ``LIKE 'x%'`` string prefixes and
disjunctions of conjunctive branches
(:class:`~repro.query.predicates.DNFQuery`) are part of the language, and
each estimator declares which shapes it can answer
(:meth:`~repro.estimators.base.CardinalityEstimator.capabilities`).  Naru
serves small disjunctions natively by inclusion–exclusion over batched
conjunctive expansion terms; a relation can register a *fallback* estimator
(``register_table(..., fallback=...)``) for everything past the primary's
capabilities — e.g. many-branch disjunctions past
``NaruConfig.max_dnf_branches``.  The router picks the ensemble member per
query by shape (:meth:`FleetRouter.resolve_serving`); conjunctive traffic
always lands on the primary, bit for bit unchanged.  Reports carry
per-estimator columns (``stats.estimators``,
:meth:`FleetReport.accuracy_by_estimator`);
:func:`generate_shape_workload` builds mixed-shape workloads and the
``serve_ensemble`` benchmark measures the ensemble against extended-executor
ground truth.  ``python -m repro.serve --tables users sessions --fallback
sampling --dnf-fraction 0.2 --like-fraction 0.2`` is the command-line form;
``docs/serving.md`` ("Query language & estimator ensemble") walks it.

Replication and admission control
---------------------------------
A hot relation can be *replicated*: ``register_table(..., replicas=N)`` makes
the router materialise N engine replicas over the relation's one trained
model, each with its own micro-batch queue and its own slice of the shared
cache budget.  Queries land on a replica by a deterministic hash of
``(relation, global workload index)``, and because every query's random
stream is keyed by ``(seed, global index)`` alone, ``replicas=1`` and
``replicas=N`` return the same estimates.  Each replica group bounds its
undispatched queries at ``max_pending``; overflow either forces an early
dispatch (``overflow="block"``, backpressure) or refuses the query with a
typed :class:`AdmissionError` (``overflow="shed"``, counted per route in the
report).  The whole fleet can additionally be fronted by an exact-match
result cache on canonicalised queries (``result_cache=True``)::

    registry.register_table(make_sessions(8_000), replicas=4)
    router = FleetRouter(registry, batch_size=16, max_pending=32,
                         overflow="shed", result_cache=True)
    report = router.run(hot_workload)
    print(report.stats.shed, report.stats.result_cache["hit_rate"])

``python -m repro.serve --tables users sessions --replicas 4 --max-pending 32
--result-cache`` is the command-line form, and the ``serve_replicated``
benchmark measures the hot-relation throughput claim.

Streaming submission and latency SLOs
-------------------------------------
Workloads do not have to arrive as lists.  :class:`AsyncFleetClient` streams
queries in one at a time from asyncio producers and resolves each through a
future; :class:`StreamingRouter` adds SLO-aware adaptive batching — one
:class:`AdaptiveBatchController` per relation watches a latency EWMA
(**end-to-end** — queue wait + dispatch — by default, dispatch-only via
``slo_scope="dispatch"``) and grows/shrinks the relation's micro-batch size
within ``[min_batch, batch_size]`` to keep the p95 under a target
(router-wide ``slo_ms``, or per-relation via
``register_table(..., slo_ms=...)``).  Every submission is stamped on
arrival, so reports carry queueing-delay and end-to-end percentiles; a
flush timeout (``flush_after_ms``) bounds how long a partially filled batch
may linger, and ``await client.submit_async(...)`` suspends producers at
``max_pending`` instead of shedding.  Because estimates are keyed by
``(seed, global submission index)`` alone, streaming ≡ batch for any
arrival order, and neither adaptive batch boundaries nor timeout flushes
ever change a number::

    import asyncio
    from repro.serve import AsyncFleetClient, StreamingRouter

    router = StreamingRouter(registry, batch_size=32, slo_ms=50.0)

    async def producer(client, queries):
        futures = [client.submit(query) for query in queries]
        report = await client.drain()
        return futures, report

    futures, report = asyncio.run(producer(AsyncFleetClient(router), queries))
    print(report.stats.latency_ms["p95"],
          report.stats.routes["sessions"]["batch_trace"])

``python -m repro.serve --tables users sessions --stream --adaptive
--slo-ms 50`` is the command-line form; the ``serve_stream`` benchmark
compares fixed vs adaptive batching under bursty arrivals
(:func:`generate_bursty_workload`).

Cross-process serving
---------------------
Everything above shares one Python process and therefore one GIL.
:class:`ProcessFleet` is the scale-out tier: it spawns N OS worker
processes, ships each trained model to its workers via
:mod:`repro.nn.serialization`, and serves the same routing contract —
queries route to a relation, then to a replica by the same deterministic
crc32 hash, then to whichever worker hosts that replica
(:meth:`ModelRegistry.worker_assignments`).  Because estimates depend only
on ``(seed, global index, num_samples)``, the worker count is invisible in
the numbers: ``workers=1 ≡ workers=N``, bit for bit.  Micro-batches and
results travel over ``multiprocessing`` pipes, results keep the
arrival-stamped ``queue_wait_ms``/``e2e_ms`` accounting, the merged
:class:`FleetReport` gains a per-worker ``stats.workers`` breakdown, a
crashed worker surfaces as a typed :class:`WorkerError` (never a hang), and
:meth:`ProcessFleet.close` is an idempotent graceful drain::

    from repro.serve import ProcessFleet

    with ProcessFleet(registry, workers=4, log_dir="procfleet-logs") as fleet:
        report = fleet.run(mixed_workload)
    print(report.stats.workers["0"]["busy_cpu_ms"])

``python -m repro.serve --tables users sessions --workers 4 --log-dir logs``
is the command-line form (SIGTERM triggers the same graceful drain); the
``serve_procfleet`` benchmark measures the scale-out claim and
``docs/operations.md`` is the operator's handbook.

Live refresh and epochs
-----------------------
Data does not stand still.  :meth:`ModelRegistry.ingest` appends rows to a
relation and bumps its monotonic **data epoch**; every cache layer is keyed
on the epoch, so a bump invalidates cached answers atomically with zero
stale hits — while the fleet keeps *serving* from the stale model (at its
old row count) until a refresh swaps the next version in.
:class:`RefreshController` runs that loop: it scores each ingest's **drift**
(excess bits per tuple under the current model), flags a relation once it
exceeds the staleness bound or drift threshold, fine-tunes the existing
model on the grown relation and re-registers it with ``replace=True`` —
stamping ``model_epoch = data_epoch``, so routers rebuild the relation's
replica group (fresh conditional caches included) at their next scope
boundary.  Reports expose ``stats.epochs`` and ``stats.max_staleness``; a
:class:`ProcessFleet`, whose workers hold npz-copied models no parent-side
bump can reach, refuses a moved epoch with a typed
:class:`StaleEpochError` instead of serving frozen models::

    from repro.serve import RefreshController

    controller = RefreshController(registry, max_staleness=1)
    record = controller.ingest("sessions", new_rows)   # epoch bump + drift
    if record["refresh_due"]:
        controller.refresh("sessions")                 # atomic model swap
    report = router.run(workload)                      # rebuilt, zero stale
    print(report.stats.epochs["sessions"], report.stats.max_staleness)

The ``serve_refresh`` benchmark replays a partitioned ingest against the
fleet and shows stale-model Q-error degrading under drift and recovering
after refresh; ``docs/serving.md`` ("Live refresh & epochs") walks the loop.

Load testing and chaos drills
-----------------------------
Every harness above is closed-loop: the next query waits for the previous
batch.  :mod:`repro.serve.loadgen` is the open-loop complement — arrivals at
a configured *offered* rate regardless of completion rate, which is the only
way overload is observable.  Poisson, diurnal and flash-crowd arrival
processes (all averaging exactly the requested rate) feed
:func:`run_open_loop`, which paces an :class:`AsyncFleetClient` against a
real clock — or replays a recorded :class:`ArrivalTrace` deterministically
under a frozen :class:`VirtualClock` (trace files are byte-stable for a
given seed).  :func:`sweep_offered_load` produces the
latency-vs-offered-load curve and :func:`locate_knee` the offered rate where
e2e p95 leaves the SLO; chaos scenarios (:class:`SlowReplica`,
:class:`CacheWipe`, :func:`run_kill_worker_drill`) inject faults mid-run,
and :func:`assert_degraded_not_collapsed` pins the degradation contract —
bounded queue growth, typed errors, zero estimate drift on everything that
completed::

    from repro.serve import (
        ArrivalTrace, assert_degraded_not_collapsed, run_open_loop,
        run_fleet_sequential)

    trace = ArrivalTrace.record("poisson", rate_qps=200.0, duration_s=2.0,
                                seed=7)
    trace.save("arrivals.json")                    # byte-stable, replayable
    outcome = run_open_loop(router, workload, ArrivalTrace.load("arrivals.json"))
    baseline = run_fleet_sequential(registry, workload_expanded, seed=0)
    assert_degraded_not_collapsed(outcome, baseline=baseline, max_pending=32)

``python -m repro.serve --tables users sessions --arrivals poisson
--offered-qps 200 --duration-s 2`` is the command-line form (``--arrivals
trace --trace-file arrivals.json`` replays, ``--scenario slow_replica``
injects); the ``serve_loadgen`` benchmark sweeps the offered-load ladder
into ``results/serve_loadgen.{json,txt}`` and ``docs/operations.md`` ("Load
testing & chaos drills") is the operator's drill book.
"""

from .cache import (
    CachedConditionalModel,
    CacheStats,
    ConditionalProbCache,
    PackedConditionalCache,
    ResultCache,
    ResultCacheStats,
    canonical_query_key,
)
from .engine import (
    BatchRecord,
    EngineReport,
    EngineStats,
    EstimateResult,
    EstimationEngine,
    VirtualClock,
    query_rng,
    run_sequential,
    term_rng,
)
from .loadgen import (
    ARRIVAL_PROCESSES,
    SCENARIOS,
    ArrivalTrace,
    CacheWipe,
    ChaosScenario,
    OpenLoopResult,
    SlowReplica,
    assert_degraded_not_collapsed,
    diurnal_arrivals,
    flash_arrivals,
    generate_arrivals,
    locate_knee,
    poisson_arrivals,
    run_kill_worker_drill,
    run_open_loop,
    sweep_offered_load,
)
from .procfleet import (
    ProcessFleet,
    StaleEpochError,
    WorkerError,
    WorkerInfo,
    export_relation,
    restore_estimator,
)
from .refresh import RefreshController
from .registry import ModelRegistry
from .router import (
    AdmissionError,
    FleetReport,
    FleetRouter,
    FleetStats,
    ReplicaGroup,
    RoutedResult,
    RoutingError,
    latency_percentiles,
    replica_for,
    resolve_route,
    run_fleet_sequential,
)
from .stream import (
    AdaptiveBatchController,
    AsyncFleetClient,
    StreamingRouter,
    stream_workload,
)
from .workload import (
    generate_bursty_workload,
    generate_mixed_workload,
    generate_shape_workload,
    load_workload,
    save_workload,
)

__all__ = [
    "EstimationEngine",
    "EstimateResult",
    "EngineReport",
    "EngineStats",
    "BatchRecord",
    "run_sequential",
    "query_rng",
    "term_rng",
    "VirtualClock",
    "ConditionalProbCache",
    "PackedConditionalCache",
    "CachedConditionalModel",
    "CacheStats",
    "ResultCache",
    "ResultCacheStats",
    "canonical_query_key",
    "ModelRegistry",
    "FleetRouter",
    "FleetReport",
    "FleetStats",
    "ReplicaGroup",
    "RoutedResult",
    "RoutingError",
    "AdmissionError",
    "run_fleet_sequential",
    "latency_percentiles",
    "replica_for",
    "resolve_route",
    "ProcessFleet",
    "WorkerError",
    "WorkerInfo",
    "StaleEpochError",
    "RefreshController",
    "export_relation",
    "restore_estimator",
    "AdaptiveBatchController",
    "StreamingRouter",
    "AsyncFleetClient",
    "stream_workload",
    "ARRIVAL_PROCESSES",
    "ArrivalTrace",
    "ChaosScenario",
    "SlowReplica",
    "CacheWipe",
    "SCENARIOS",
    "OpenLoopResult",
    "poisson_arrivals",
    "diurnal_arrivals",
    "flash_arrivals",
    "generate_arrivals",
    "run_open_loop",
    "sweep_offered_load",
    "locate_knee",
    "assert_degraded_not_collapsed",
    "run_kill_worker_drill",
    "generate_mixed_workload",
    "generate_bursty_workload",
    "generate_shape_workload",
    "load_workload",
    "save_workload",
]
