"""Live refresh of a serving fleet: drift watching and atomic model swaps.

Everything below the registry proves its estimates are frozen-in-time
correct; this module owns the *time* axis.  A
:class:`~repro.serve.registry.ModelRegistry` stamps each relation with a
monotonic **data epoch** (bumped by :meth:`~repro.serve.registry
.ModelRegistry.ingest`) and records the epoch its serving model was fitted
at; the gap between the two is the relation's **staleness**.
:class:`RefreshController` turns those counters into an operating loop, the
protocol of the paper's data-shift study (§6.7.3 / Table 8):

1. **Ingest** — new rows are appended through the controller, which scores
   their *drift*: the cross-entropy (in bits) of the incoming tuples under
   the current model, minus the model's cross-entropy on the data it was
   trained on (:func:`repro.core.training.cross_entropy_bits`).  Rows the
   model already explains score near zero; a shifted partition scores high.
2. **Stale serving under a bound** — the fleet keeps answering from the
   stale model (routers key their caches on the epoch pair, so nothing
   *cached* before the ingest is ever served again).  The controller flags
   the relation ``refresh_due`` once its staleness exceeds ``max_staleness``
   or its drift exceeds ``drift_threshold_bits``.
3. **Refresh and atomic swap** — :meth:`RefreshController.refresh`
   fine-tunes the existing model on the grown relation
   (:meth:`repro.core.estimator.NaruEstimator.refresh`, with the *original*
   dictionaries via :func:`repro.data.shift.encode_with_dictionaries`),
   updates its serving row count and re-registers it with ``replace=True`` —
   stamping the model epoch to the data epoch in one step, so routers pick
   the new version up atomically at their next scope boundary.  Values the
   old dictionaries cannot encode force a cold rebuild instead of a
   fine-tune.
"""

from __future__ import annotations

import numpy as np

from ..core.estimator import NaruEstimator
from ..core.training import cross_entropy_bits
from ..data.shift import encode_with_dictionaries
from ..data.table import Table
from ..estimators.base import CardinalityEstimator
from .registry import ModelRegistry

__all__ = ["RefreshController"]


class RefreshController:
    """Watches drift on a registry's relations and swaps refreshed models in.

    Parameters
    ----------
    registry:
        The fleet to manage; the controller never bypasses it — every swap
        goes through ``register_table(..., replace=True)`` so epoch stamps
        and router invalidation stay correct.
    max_staleness:
        How many ingests a relation's model may fall behind before the
        controller flags it ``refresh_due`` (default 1: serve one stale
        epoch, refresh before the second).  ``0`` flags after every ingest.
    drift_threshold_bits:
        Optional drift trigger: a single ingest whose rows score this many
        bits above the model's training-data cross-entropy flags a refresh
        immediately, regardless of the staleness bound.  ``None`` (default)
        disables the drift trigger.
    refresh_epochs:
        Fine-tuning passes over the grown relation per refresh.
    drift_sample_rows:
        Rows sampled (deterministically, from ``seed``) from the model's
        training data for the drift baseline; ``None`` uses every row.
    seed:
        Seed of the baseline sampling.
    """

    def __init__(self, registry: ModelRegistry, *, max_staleness: int = 1,
                 drift_threshold_bits: float | None = None,
                 refresh_epochs: int = 1,
                 drift_sample_rows: int | None = 2048, seed: int = 0) -> None:
        if max_staleness < 0:
            raise ValueError(f"max_staleness must be non-negative, "
                             f"got {max_staleness}")
        if drift_threshold_bits is not None and drift_threshold_bits <= 0:
            raise ValueError(f"drift_threshold_bits must be positive, "
                             f"got {drift_threshold_bits}")
        if refresh_epochs < 1:
            raise ValueError(f"refresh_epochs must be at least 1, "
                             f"got {refresh_epochs}")
        self.registry = registry
        self.max_staleness = max_staleness
        self.drift_threshold_bits = drift_threshold_bits
        self.refresh_epochs = refresh_epochs
        self.drift_sample_rows = drift_sample_rows
        self.seed = seed
        #: Relation -> drift (bits) of its most recent ingest (``None`` when
        #: no model was built yet, or the estimator exposes no likelihood).
        self.last_drift_bits: dict[str, float | None] = {}
        #: Relation -> completed refresh count.
        self.refreshes: dict[str, int] = {}
        self._baselines: dict[str, tuple[int, float]] = {}

    # ------------------------------------------------------------------ #
    # Drift signals
    # ------------------------------------------------------------------ #
    def _baseline_bits(self, name: str, estimator: NaruEstimator) -> float:
        """Cross-entropy of (a sample of) the model's own training data.

        Cached per model version: a refresh moves the model epoch, which
        invalidates the cached baseline.
        """
        version = self.registry.model_epoch(name)
        cached = self._baselines.get(name)
        if cached is not None and cached[0] == version:
            return cached[1]
        codes = estimator.table.encoded()
        if (self.drift_sample_rows is not None
                and self.drift_sample_rows < codes.shape[0]):
            rng = np.random.default_rng(self.seed)
            codes = codes[rng.integers(0, codes.shape[0],
                                       size=self.drift_sample_rows)]
        bits = cross_entropy_bits(estimator.model, codes)
        self._baselines[name] = (version, bits)
        return bits

    def drift_bits(self, name: str, rows: Table) -> float | None:
        """Excess bits per tuple the current model spends on ``rows``.

        ``cross_entropy(rows) - cross_entropy(training data)`` under the
        relation's serving model: near zero for rows the model already
        explains, large for a shifted partition, ``inf`` when the rows hold
        values outside the model's dictionaries (a fine-tune cannot absorb
        them — only a rebuild can).  ``None`` when the relation has no built
        likelihood model to score with.
        """
        if not self.registry.is_fitted(name):
            return None
        estimator = self.registry.estimator(name, fit=False)
        if not isinstance(estimator, NaruEstimator):
            return None
        codes = encode_with_dictionaries(estimator.table, rows)
        if codes is None:
            return float("inf")
        return (cross_entropy_bits(estimator.model, codes)
                - self._baseline_bits(name, estimator))

    # ------------------------------------------------------------------ #
    # The ingest -> stale-serve -> refresh loop
    # ------------------------------------------------------------------ #
    def ingest(self, name: str, rows: Table, *,
               auto_refresh: bool = False) -> dict:
        """Score, append and epoch-bump one batch of rows; returns a record.

        The drift score is computed *before* the append (it describes the
        incoming rows against the current model), then the rows are ingested
        through :meth:`~repro.serve.registry.ModelRegistry.ingest` — bumping
        the data epoch, so every epoch-keyed cache entry for the relation is
        dead from this moment on.  With ``auto_refresh=True`` a flagged
        relation is refreshed immediately; otherwise the fleet serves stale
        until the caller acts on ``refresh_due``.

        Returns:
            ``{"relation", "data_epoch", "staleness", "drift_bits",
            "refresh_due", "refreshed"}``.
        """
        drift = self.drift_bits(name, rows)
        self.last_drift_bits[name] = drift
        epoch = self.registry.ingest(name, rows)
        due = self.refresh_due(name)
        refreshed = False
        if due and auto_refresh:
            self.refresh(name)
            refreshed = True
        return {
            "relation": name,
            "data_epoch": epoch,
            "staleness": self.registry.staleness(name),
            "drift_bits": drift,
            "refresh_due": due,
            "refreshed": refreshed,
        }

    def refresh_due(self, name: str) -> bool:
        """Whether the relation's model has exceeded its stale-serving bound."""
        if self.registry.staleness(name) > self.max_staleness:
            return True
        drift = self.last_drift_bits.get(name)
        return (self.drift_threshold_bits is not None and drift is not None
                and drift >= self.drift_threshold_bits)

    def due(self) -> list[str]:
        """Every registered relation currently flagged for a refresh."""
        return [name for name in self.registry.names if self.refresh_due(name)]

    def refresh(self, name: str, *,
                epochs: int | None = None) -> CardinalityEstimator:
        """Produce the relation's next model version and swap it in atomically.

        Fine-tunes the existing Naru model on the grown relation encoded with
        its *original* dictionaries (the §6.7.3 protocol), updates the
        serving row count, and re-registers it with ``replace=True`` — which
        stamps ``model_epoch = data_epoch``, so routers rebuild the
        relation's replica group (with fresh conditional caches) at their
        next scope boundary and result-cache lookups move to the new epoch
        key.  Falls back to a cold rebuild when the relation has no
        fine-tunable model or the grown data no longer fits the old
        dictionaries.  Returns the serving estimator.
        """
        table = self.registry.relation(name)
        estimator = (self.registry.estimator(name, fit=False)
                     if self.registry.is_fitted(name) else None)
        codes = (encode_with_dictionaries(estimator.table, table)
                 if isinstance(estimator, NaruEstimator) else None)
        if codes is None:
            # Cold rebuild: drop the old model and let the registry build a
            # fresh one on the relation's current table and dictionaries.
            self.registry.register_table(table, name=name, replace=True)
            refreshed = self.registry.estimator(name)
        else:
            estimator.refresh(codes,
                              epochs=epochs if epochs is not None
                              else self.refresh_epochs)
            estimator.set_row_count(table.num_rows)
            self.registry.register_table(table, name=name, estimator=estimator,
                                         replace=True)
            refreshed = estimator
        self.refreshes[name] = self.refreshes.get(name, 0) + 1
        return refreshed

    def __repr__(self) -> str:
        threshold = (f"{self.drift_threshold_bits:.2f}b"
                     if self.drift_threshold_bits is not None else "off")
        return (f"RefreshController({len(self.registry)} relations, "
                f"max_staleness={self.max_staleness}, drift={threshold})")
