"""Saving and replaying workload files.

A workload file is a small JSON document holding the predicate lists of the
queries produced by :mod:`repro.query.generator` (or written by hand), so a
serving run can be replayed bit-for-bit later or on another machine::

    {
      "version": 1,
      "table": "census",
      "queries": [
        [["age", "<=", 40], ["sex", "=", "sex_0"]],
        ...
      ]
    }

Values are stored as plain JSON scalars; ``IN`` predicates store a list of
values and ``BETWEEN`` predicates store a two-element ``[low, high]`` list.
"""

from __future__ import annotations

import json

import numpy as np

from ..query.predicates import Operator, Predicate, Query

__all__ = ["save_workload", "load_workload", "queries_to_specs", "specs_to_queries"]

_FORMAT_VERSION = 1


def _json_value(value: object) -> object:
    """Convert numpy scalars (and containers of them) to JSON-native types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple, set, frozenset, np.ndarray)):
        return [_json_value(item) for item in value]
    return value


def queries_to_specs(queries: list[Query]) -> list[list[list]]:
    """Plain-data representation of a list of queries."""
    return [[[predicate.column, predicate.operator.value, _json_value(predicate.value)]
             for predicate in query]
            for query in queries]


def specs_to_queries(specs: list[list[list]]) -> list[Query]:
    """Rebuild queries from their plain-data representation."""
    queries = []
    for spec in specs:
        predicates = []
        for column, operator, value in spec:
            operator = Operator(operator)
            if operator is Operator.BETWEEN:
                low, high = value
                value = (low, high)
            predicates.append(Predicate(column, operator, value))
        queries.append(Query(predicates))
    return queries


def save_workload(path: str, queries: list[Query],
                  table_name: str | None = None) -> None:
    """Write a workload file that :func:`load_workload` can replay."""
    document = {
        "version": _FORMAT_VERSION,
        "table": table_name,
        "queries": queries_to_specs(queries),
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")


def load_workload(path: str, expected_table: str | None = None) -> list[Query]:
    """Read the queries of a workload file written by :func:`save_workload`.

    Parameters
    ----------
    path:
        The workload file.
    expected_table:
        When given and the file records the table it was generated against,
        a mismatch raises ``ValueError`` instead of letting the queries fail
        (or silently estimate) against the wrong relation.
    """
    with open(path) as handle:
        document = json.load(handle)
    version = document.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported workload file version {version!r}")
    recorded = document.get("table")
    if expected_table is not None and recorded is not None \
            and recorded != expected_table:
        raise ValueError(
            f"workload file {path!r} was generated against table "
            f"{recorded!r}, not {expected_table!r}")
    return specs_to_queries(document["queries"])
