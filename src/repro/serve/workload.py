"""Saving and replaying workload files.

A workload file is a small JSON document holding the queries produced by
:mod:`repro.query.generator` (or written by hand), so a serving run can be
replayed bit-for-bit later or on another machine.  Two formats are understood:

* **Version 1** (single relation) stores each query as a bare predicate
  list; an optional document-level ``"table"`` records which relation the
  workload was generated against::

      {
        "version": 1,
        "table": "census",
        "queries": [
          [["age", "<=", 40], ["sex", "=", "sex_0"]],
          ...
        ]
      }

* **Version 2** (multi relation) stores each query as an object with an
  explicit ``"table"`` qualifier, so one file can mix queries against many
  registered relations (base tables *and* joins) and be replayed through a
  :class:`repro.serve.FleetRouter`::

      {
        "version": 2,
        "table": "census",            # optional default for unqualified queries
        "queries": [
          {"table": "dmv", "predicates": [["state", "=", "state_3"]]},
          {"predicates": [["age", "<=", 40]]},   # falls back to the default
          ...
        ]
      }

* **Version 3** (query shapes) extends the version-2 object form with
  disjunctive queries: a :class:`~repro.query.predicates.DNFQuery`
  serialises as an object with a ``"branches"`` list (one predicate list
  per conjunctive branch) instead of ``"predicates"``.  ``LIKE`` prefix
  predicates need no structural change — they are ordinary
  ``[column, "like", "prefix%"]`` triples — but their presence also
  promotes a file to version 3, so older readers fail loudly on a format
  they cannot replay rather than silently mis-parsing it::

      {
        "version": 3,
        "queries": [
          {"table": "dmv", "branches": [[["state", "=", "state_3"]],
                                        [["color", "like", "bl%"]]]},
          {"table": "census", "predicates": [["age", "<=", 40]]},
          ...
        ]
      }

:func:`save_workload` writes version 1 when no query carries a qualifier
(bit-identical to the files older releases wrote), version 2 when queries
are qualified, and version 3 only when a disjunction or a ``LIKE`` appears;
:func:`load_workload` reads all three.  Values are stored as plain JSON
scalars; ``IN`` predicates store a canonically sorted list of values (so
equal queries serialise byte-identically regardless of the set iteration
order they were built with) and ``BETWEEN`` predicates store a two-element
``[low, high]`` list.
"""

from __future__ import annotations

import json
from typing import Mapping

import numpy as np

from ..data.table import Table
from ..query.generator import WorkloadGenerator
from ..query.predicates import (DNFQuery, Operator, Predicate, Query,
                                canonical_in_values)

__all__ = ["save_workload", "load_workload", "queries_to_specs",
           "specs_to_queries", "generate_mixed_workload",
           "generate_bursty_workload", "generate_shape_workload"]

_FORMAT_VERSION = 1
_MULTI_FORMAT_VERSION = 2
_SHAPE_FORMAT_VERSION = 3


def _json_value(value: object) -> object:
    """Convert numpy scalars (and containers of them) to JSON-native types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple, set, frozenset, np.ndarray)):
        return [_json_value(item) for item in value]
    return value


def _predicate_specs(query: Query) -> list[list]:
    specs = []
    for predicate in query.predicates:
        value = predicate.value
        if predicate.operator is Operator.IN:
            # Canonical order: IN values are built from sets, whose
            # iteration order varies across processes — sorting here makes
            # equal queries serialise byte-identically on every run.
            value = canonical_in_values(value)
        specs.append([predicate.column, predicate.operator.value,
                      _json_value(value)])
    return specs


def queries_to_specs(queries: list["Query | DNFQuery"]) -> list:
    """Plain-data representation of a list of queries.

    Unqualified conjunctive queries serialise to the version-1
    predicate-list form; a query with a ``table`` qualifier serialises to
    the version-2 object form; a :class:`DNFQuery` serialises to the
    version-3 ``"branches"`` object form.
    """
    specs = []
    for query in queries:
        if isinstance(query, DNFQuery):
            spec = {}
            if query.table is not None:
                spec["table"] = query.table
            spec["branches"] = [_predicate_specs(branch)
                                for branch in query.branches]
            specs.append(spec)
        elif query.table is not None:
            specs.append({"table": query.table,
                          "predicates": _predicate_specs(query)})
        else:
            specs.append(_predicate_specs(query))
    return specs


def _parse_predicates(predicate_specs: list) -> list[Predicate]:
    predicates = []
    for column, operator, value in predicate_specs:
        operator = Operator(operator)
        if operator is Operator.BETWEEN:
            low, high = value
            value = (low, high)
        predicates.append(Predicate(column, operator, value))
    return predicates


def specs_to_queries(specs: list,
                     default_table: str | None = None) -> list["Query | DNFQuery"]:
    """Rebuild queries from their plain-data representation.

    Accepts all three spec forms: a bare predicate list (version 1), an
    object with ``"table"`` and ``"predicates"`` keys (version 2) and an
    object with a ``"branches"`` list of predicate lists (version 3, a
    :class:`DNFQuery`).  ``default_table`` qualifies the queries whose spec
    does not name a relation itself.
    """
    queries: list[Query | DNFQuery] = []
    for spec in specs:
        if isinstance(spec, dict):
            table = spec.get("table") or default_table
            if "branches" in spec:
                queries.append(DNFQuery(
                    [Query(_parse_predicates(branch))
                     for branch in spec["branches"]], table=table))
                continue
            predicate_specs = spec["predicates"]
        else:
            table = default_table
            predicate_specs = spec
        queries.append(Query(_parse_predicates(predicate_specs), table=table))
    return queries


def _apportion(num_queries: int, names: list[str],
               weights: Mapping[str, float] | None) -> list[int]:
    """Split ``num_queries`` across relations by weight (largest remainder).

    With no weights the split is as even as possible, the remainder going to
    the earliest relations — the historical behaviour.  With weights, each
    relation's share is proportional; fractional remainders are handed out
    largest-first (ties break in registration order), so the counts always
    sum to ``num_queries`` and no query is silently dropped.
    """
    if weights is None:
        base, remainder = divmod(num_queries, len(names))
        return [base + (1 if offset < remainder else 0)
                for offset in range(len(names))]
    unknown = sorted(set(weights) - set(names))
    if unknown:
        raise ValueError(
            f"workload weights name unknown relations: {', '.join(unknown)} "
            f"(known: {', '.join(names)})")
    total = 0.0
    shares = []
    for name in names:
        weight = float(weights.get(name, 0.0))
        if weight < 0.0:
            raise ValueError(f"negative workload weight for {name!r}: {weight}")
        shares.append(weight)
        total += weight
    if total <= 0.0:
        raise ValueError("workload weights must sum to a positive value")
    exact = [num_queries * share / total for share in shares]
    counts = [int(value) for value in exact]
    leftovers = sorted(range(len(names)),
                       key=lambda offset: (-(exact[offset] - counts[offset]),
                                           offset))
    for offset in leftovers[:num_queries - sum(counts)]:
        counts[offset] += 1
    return counts


def generate_mixed_workload(relations: Mapping[str, Table], num_queries: int, *,
                            min_filters: int = 2, max_filters: int = 5,
                            seed: int = 0,
                            weights: Mapping[str, float] | None = None) -> list[Query]:
    """Generate a table-qualified workload spread across many relations.

    ``num_queries`` is split over the relations — evenly by default, or
    proportionally to ``weights`` (relation name -> relative share; missing
    names get zero), which is how the ``serve_replicated`` benchmark builds
    hot-relation workloads — and the per-relation workloads are interleaved
    *proportionally*: each relation's queries are spread evenly over the whole
    workload by fractional position (plain round-robin when the shares are
    equal), so every micro-batch window of a fleet run mixes routes and a hot
    relation never arrives as one unbroken tail burst.  Each relation draws
    from its own deterministic generator seeded with ``seed`` plus its
    position, so adding or re-weighting relations never changes another
    relation's queries.  This is the one workload builder shared by the
    multi-model CLI, the serving benchmarks and the examples.
    """
    if num_queries < 0:
        raise ValueError("num_queries must be non-negative")
    names = list(relations)
    if not names:
        raise ValueError("at least one relation is required")
    counts = _apportion(num_queries, names, weights)
    per_relation = []
    for offset, name in enumerate(names):
        relation = relations[name]
        generator = WorkloadGenerator(
            relation, min_filters=min(min_filters, relation.num_columns),
            max_filters=min(max_filters, relation.num_columns),
            seed=seed + offset)
        per_relation.append([query.qualified(name)
                             for query in generator.generate(counts[offset])])
    # Merge by fractional position: query i of a bundle of n sits at
    # (i + 0.5) / n, ties breaking in registration order — which reduces to
    # exact round-robin for equal bundles and evenly dilutes a hot
    # relation's majority share through the whole workload otherwise.
    slots = sorted(
        ((position + 0.5) / len(bundle), offset, position)
        for offset, bundle in enumerate(per_relation)
        for position in range(len(bundle)))
    return [per_relation[offset][position] for _, offset, position in slots]


def generate_bursty_workload(relations: Mapping[str, Table], num_queries: int, *,
                             hot: str, burst_size: int = 8,
                             min_filters: int = 2, max_filters: int = 5,
                             seed: int = 0,
                             weights: Mapping[str, float] | None = None) -> list[Query]:
    """Generate a workload whose hot relation arrives in back-to-back bursts.

    The *queries* are exactly those of :func:`generate_mixed_workload` with
    the same ``relations``/``num_queries``/``weights``/``seed`` (each
    relation draws from its own deterministic generator, so the two builders
    produce the same multiset) — only the **arrival order** differs.  Where
    the mixed builder dilutes every relation evenly through the workload,
    this one clusters the hot relation's queries into uninterrupted runs of
    ``burst_size``, each burst followed by a thin trickle of the other
    relations: the adversarial arrival pattern for a fixed large micro-batch,
    which fills instantly during a burst and pays a full-batch dispatch
    latency on every one.  The ``serve_stream`` benchmark feeds this to a
    fixed-batch and an SLO-adaptive router and compares their p95 dispatch
    latencies.

    Args:
        relations: Name -> :class:`~repro.data.table.Table` of every
            relation, as for :func:`generate_mixed_workload`.
        num_queries: Total query count, split across relations evenly or by
            ``weights``.
        hot: Name of the bursting relation (must be in ``relations``).
        burst_size: Queries per uninterrupted hot-relation run (>= 1).
        min_filters / max_filters: Per-query predicate count bounds.
        seed: Base seed; relation ``i`` draws from ``seed + i`` exactly like
            the mixed builder.
        weights: Optional relation -> relative share of ``num_queries``;
            give the hot relation a majority share to make the bursts long.

    Returns:
        The table-qualified workload in arrival order.

    Raises:
        ValueError: Unknown ``hot`` relation or non-positive ``burst_size``.
    """
    if hot not in relations:
        raise ValueError(f"hot relation {hot!r} is not one of "
                         f"{', '.join(relations)}")
    if burst_size < 1:
        raise ValueError("burst_size must be at least 1")
    mixed = generate_mixed_workload(relations, num_queries,
                                    min_filters=min_filters,
                                    max_filters=max_filters, seed=seed,
                                    weights=weights)
    hot_queries = [query for query in mixed if query.table == hot]
    cold_queries = [query for query in mixed if query.table != hot]
    # Interleave bursts with a trickle: after each full burst of the hot
    # relation, emit a proportional slice of the cold queries so every
    # relation still finishes by the end of the workload.
    bursts = [hot_queries[start:start + burst_size]
              for start in range(0, len(hot_queries), burst_size)]
    arranged: list[Query] = []
    cold_cursor = 0
    for position, burst in enumerate(bursts):
        arranged.extend(burst)
        cold_until = round(len(cold_queries) * (position + 1) / len(bursts)) \
            if bursts else 0
        arranged.extend(cold_queries[cold_cursor:cold_until])
        cold_cursor = cold_until
    arranged.extend(cold_queries[cold_cursor:])
    return arranged


def generate_shape_workload(relations: Mapping[str, Table], num_queries: int, *,
                            dnf_fraction: float = 0.25,
                            like_fraction: float = 0.25,
                            dnf_branches: int | tuple[int, ...] = 2,
                            min_filters: int = 2, max_filters: int = 5,
                            seed: int = 0,
                            weights: Mapping[str, float] | None = None
                            ) -> list["Query | DNFQuery"]:
    """Generate a mixed-shape workload: conjunctions, disjunctions, prefixes.

    Starts from :func:`generate_mixed_workload` (same relations, counts,
    interleave and per-relation determinism) and rewrites deterministic,
    evenly spread positions into the widened query language:

    * a ``dnf_fraction`` share becomes :class:`DNFQuery` disjunctions — the
      original conjunction as the first branch plus extra branches drawn
      from an auxiliary per-relation generator, so the branch predicates
      are real domain values;
    * a ``like_fraction`` share becomes single-predicate ``LIKE 'x%'``
      prefix queries over a sampled categorical value of a string column
      (positions over relations without string columns keep their original
      conjunction — the share is a target, not a guarantee, and the
      ``serve_ensemble`` benchmark reports the realised mix).

    ``dnf_branches`` fixes the branch count, or, given a tuple, draws it
    per query — mixing counts on both sides of
    ``NaruConfig.max_dnf_branches`` is how the ensemble benchmark exercises
    inclusion–exclusion and fallback routing in one workload.  Everything is
    keyed off ``seed`` alone, so a workload is reproducible from its knobs.
    """
    for name, fraction in (("dnf_fraction", dnf_fraction),
                           ("like_fraction", like_fraction)):
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {fraction}")
    if dnf_fraction + like_fraction > 1.0:
        raise ValueError("dnf_fraction + like_fraction must not exceed 1")
    branch_counts = ((dnf_branches,) if isinstance(dnf_branches, int)
                     else tuple(dnf_branches))
    if not branch_counts or min(branch_counts) < 2:
        raise ValueError(f"dnf_branches must be >= 2 (a one-branch DNF is a "
                         f"conjunction), got {dnf_branches!r}")
    base = generate_mixed_workload(relations, num_queries,
                                   min_filters=min_filters,
                                   max_filters=max_filters, seed=seed,
                                   weights=weights)
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(0x5AFE,)))
    positions = rng.permutation(len(base))
    num_dnf = round(len(base) * dnf_fraction)
    num_like = round(len(base) * like_fraction)
    dnf_positions = set(positions[:num_dnf].tolist())
    like_positions = set(positions[num_dnf:num_dnf + num_like].tolist())
    names = list(relations)
    # Extra DNF branches come from a second, independently seeded generator
    # per relation, so they never perturb the base workload's draws.
    aux_generators: dict[str, WorkloadGenerator] = {}

    def extra_branch(table_name: str) -> Query:
        generator = aux_generators.get(table_name)
        if generator is None:
            relation = relations[table_name]
            generator = WorkloadGenerator(
                relation, min_filters=1,
                max_filters=min(2, relation.num_columns),
                seed=seed + 7919 + names.index(table_name))
            aux_generators[table_name] = generator
        return generator.generate(1)[0]

    workload: list[Query | DNFQuery] = []
    for position, query in enumerate(base):
        if position in dnf_positions:
            count = int(rng.choice(branch_counts))
            branches = [Query(query.predicates)] + \
                [extra_branch(query.table) for _ in range(count - 1)]
            workload.append(DNFQuery(branches, table=query.table))
            continue
        if position in like_positions:
            relation = relations[query.table]
            string_columns = [column for column in relation.columns
                              if not column.is_numeric]
            if string_columns:
                column = string_columns[int(rng.integers(len(string_columns)))]
                value = str(column.domain[int(rng.integers(column.domain_size))])
                prefix = value[:int(rng.integers(1, len(value) + 1))]
                workload.append(Query(
                    [Predicate(column.name, Operator.LIKE, prefix + "%")],
                    table=query.table))
                continue
        workload.append(query)
    return workload


def save_workload(path: str, queries: list["Query | DNFQuery"],
                  table_name: str | None = None) -> None:
    """Write a workload file that :func:`load_workload` can replay.

    ``table_name`` records the default relation of the workload.  The file is
    written in the version-1 single-relation format unless at least one query
    carries its own ``table`` qualifier (version 2) or uses the widened query
    language — a disjunction or a ``LIKE`` prefix — which promotes the file
    to version 3.  Workloads older releases could write therefore keep their
    old version numbers byte for byte.
    """
    shaped = any(
        isinstance(query, DNFQuery)
        or any(predicate.operator is Operator.LIKE for predicate in query)
        for query in queries)
    multi = any(query.table is not None for query in queries)
    if shaped:
        version = _SHAPE_FORMAT_VERSION
    elif multi:
        version = _MULTI_FORMAT_VERSION
    else:
        version = _FORMAT_VERSION
    document = {
        "version": version,
        "table": table_name,
        "queries": queries_to_specs(queries),
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")


def load_workload(path: str, expected_table: str | None = None) -> list[Query]:
    """Read the queries of a workload file written by :func:`save_workload`.

    Parameters
    ----------
    path:
        The workload file.
    expected_table:
        When given and the file records the table it was generated against,
        a mismatch raises ``ValueError`` instead of letting the queries fail
        (or silently estimate) against the wrong relation.  Version-2 files
        may still qualify individual queries with other relations; the check
        covers the document-level default only.

    Returns
    -------
    list[Query]
        Queries qualified with their recorded table: per-query qualifiers in
        version-2 files, falling back to the document-level ``"table"`` in
        both formats (``None`` when the file records no table at all).  The
        qualifier is ignored by single-model serving and lets a
        :class:`repro.serve.FleetRouter` replay any workload file against
        the right relation.
    """
    with open(path) as handle:
        document = json.load(handle)
    version = document.get("version")
    if version not in (_FORMAT_VERSION, _MULTI_FORMAT_VERSION,
                       _SHAPE_FORMAT_VERSION):
        raise ValueError(f"unsupported workload file version {version!r}")
    recorded = document.get("table")
    if expected_table is not None and recorded is not None \
            and recorded != expected_table:
        raise ValueError(
            f"workload file {path!r} was generated against table "
            f"{recorded!r}, not {expected_table!r}")
    return specs_to_queries(document["queries"], default_table=recorded)
