"""Cross-process sharded serving: a fleet of OS worker processes.

Everything the serve stack shipped so far — replicas, caches, streaming,
SLOs — lives in one Python process and is therefore GIL-bound.
:class:`ProcessFleet` is the scale-out tier: it spawns N OS worker processes,
each hosting one or more ``(relation, replica)`` engines with its own
:class:`~repro.serve.engine.EstimationEngine` and conditional caches, and
speaks the *same routing contract* as :class:`~repro.serve.router.FleetRouter`:

* **Placement survives the process boundary.**  A query routes to its
  relation (:func:`repro.serve.router.resolve_route`, shared code, not a
  copy), then to a replica by the same deterministic
  ``crc32("relation:index")`` hash (:func:`repro.serve.router.replica_for`),
  and only *then* to whichever worker hosts that replica
  (:meth:`repro.serve.registry.ModelRegistry.worker_assignments`).  Because
  every per-query random stream is keyed by ``(seed, global index)`` and
  every ``(relation, replica)`` engine sees the exact same micro-batch
  sequence regardless of which process it runs in, ``workers=1`` and
  ``workers=N`` return **bit-identical** estimates — the invariance grid in
  ``tests/test_serve_invariance.py`` proves it.
* **Models ship, they are not retrained.**  :func:`export_relation` snapshots
  a trained estimator into a picklable payload (table + config + ``.npz``
  weight bytes via :mod:`repro.nn.serialization`); :func:`restore_estimator`
  rebuilds it in the worker, loads the weights and puts the model in eval
  mode.  Payloads are built *before* any process is spawned, so a failing
  registry fails fast with no children left behind.
* **Micro-batches travel over pipes.**  The parent keeps the per-replica
  pending queues (with parent-clock arrival stamps) and ships a batch the
  moment it fills — workers compute while the parent keeps submitting.
  Results come back as ``(index, selectivity)`` pairs plus the worker-side
  dispatch latency and busy-CPU time; the parent reconstructs full
  :class:`~repro.serve.engine.EstimateResult` records, computes the same
  arrival-stamped ``queue_wait_ms``/``e2e_ms`` accounting the single-process
  fleet reports, and merges everything through the router's own
  ``_merge_reports`` into a :class:`~repro.serve.router.FleetReport` whose
  ``stats.workers`` carries the per-worker breakdown.
* **Failures surface, they do not hang.**  A worker that dies mid-batch (or
  reports a remote exception) raises a typed :class:`WorkerError` naming the
  worker, its exit code and its log file within ``recv_timeout_s`` — never an
  indefinite ``recv()``.  :meth:`ProcessFleet.close` is an idempotent
  graceful drain: pending micro-batches are flushed, in-flight results
  collected, workers told to stop, and stragglers terminated.

See ``docs/operations.md`` for the operator's view: launching, per-worker log
layout, drain semantics and a troubleshooting table.
"""

from __future__ import annotations

import io
import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass
from multiprocessing import connection as mp_connection

from ..core.estimator import NaruEstimator
from ..nn.serialization import load_state_dict, save_state_dict
from ..query.predicates import Query
from .engine import (BatchRecord, EngineReport, EngineStats, EstimateResult,
                     EstimationEngine)
from .registry import ModelRegistry
from .router import (FleetReport, _merge_reports, replica_for, resolve_route)

__all__ = ["WorkerError", "WorkerInfo", "StaleEpochError", "ProcessFleet",
           "export_relation", "restore_estimator", "worker_main"]

#: Granularity of the parent's liveness checks while waiting on workers.
_POLL_S = 0.05


# --------------------------------------------------------------------- #
# Model shipping
# --------------------------------------------------------------------- #
def export_relation(registry: ModelRegistry, name: str) -> dict:
    """Snapshot one relation's trained estimator into a picklable payload.

    Builds and fits the estimator if the registry has not yet (so all
    training happens in the parent, before any worker exists), then captures
    everything a worker needs to serve the relation: the table, the model
    config, the trained weights as in-memory ``.npz`` bytes
    (:func:`repro.nn.serialization.save_state_dict`) and the serving row
    count.  Raises ``TypeError`` for estimators that do not expose a config
    and a state-dict model — only registry-built Naru estimators can cross a
    process boundary.
    """
    estimator = registry.estimator(name)
    model = getattr(estimator, "model", None)
    config = getattr(estimator, "config", None)
    if model is None or config is None or not hasattr(model, "state_dict"):
        raise TypeError(
            f"relation {name!r} is served by {type(estimator).__name__}, "
            "which does not expose a config and a state-dict model; "
            "ProcessFleet can only ship Naru-style estimators to workers")
    buffer = io.BytesIO()
    save_state_dict(model.state_dict(), buffer)
    return {"name": name, "table": estimator.table, "config": config,
            "weights": buffer.getvalue(), "num_rows": estimator.num_rows}


def restore_estimator(payload: dict):
    """Rebuild a served estimator from an :func:`export_relation` payload.

    The constructor deterministically rebuilds the architecture from
    ``(table, config)``; the shipped weights overwrite the fresh parameters
    in place and the model is put in eval mode, exactly matching the parent's
    post-``fit()`` state — a restored estimator answers bit-identically to
    the one it was exported from.
    """
    estimator = NaruEstimator(payload["table"], payload["config"])
    estimator.model.load_state_dict(load_state_dict(io.BytesIO(payload["weights"])))
    estimator.model.eval()
    estimator._fitted = True
    if payload["num_rows"] != estimator.num_rows:
        estimator.set_row_count(payload["num_rows"])
    return estimator


# --------------------------------------------------------------------- #
# Errors and worker identity
# --------------------------------------------------------------------- #
class WorkerError(RuntimeError):
    """A worker process died, misbehaved or timed out.

    Raised in the *parent* whenever a worker cannot answer: the process
    exited (``exit_code`` carries its code), its pipe hit EOF, it reported a
    remote exception (``remote_traceback`` carries the formatted worker-side
    traceback) or it failed to answer within the fleet's ``recv_timeout_s``.
    Carries ``worker_id`` and ``log_path`` so an operator knows exactly which
    log file to read — see the troubleshooting table in
    ``docs/operations.md``.
    """

    def __init__(self, worker_id: int, message: str, *,
                 exit_code: int | None = None,
                 log_path: str | None = None,
                 remote_traceback: str | None = None) -> None:
        details = [message]
        if exit_code is not None:
            details.append(f"exit code {exit_code}")
        if log_path is not None:
            details.append(f"log: {log_path}")
        super().__init__(f"worker {worker_id}: " + "; ".join(details)
                         + (f"\n--- worker traceback ---\n{remote_traceback}"
                            if remote_traceback else ""))
        self.worker_id = worker_id
        self.exit_code = exit_code
        self.log_path = log_path
        self.remote_traceback = remote_traceback


class StaleEpochError(RuntimeError):
    """The registry's epoch moved past the models a fleet's workers hold.

    Worker processes serve from npz-copied model snapshots frozen at fleet
    construction; a parent-side :meth:`~repro.serve.registry.ModelRegistry
    .ingest` or refresh swap can never reach them.  Rather than silently
    serving frozen models against moved data, the fleet refuses with this
    typed error — the remedy is to build a new :class:`ProcessFleet` (which
    re-exports the registry's current models) after closing this one.
    """

    def __init__(self, route: str, fleet_epoch: tuple[int, int],
                 registry_epoch: tuple[int, int]) -> None:
        super().__init__(
            f"relation {route!r} was exported at epoch "
            f"(data={fleet_epoch[0]}, model={fleet_epoch[1]}) but the "
            f"registry is now at (data={registry_epoch[0]}, "
            f"model={registry_epoch[1]}); the workers' npz-copied models are "
            "stale — close this fleet and build a new ProcessFleet to "
            "re-export the current models")
        self.route = route
        self.fleet_epoch = fleet_epoch
        self.registry_epoch = registry_epoch


@dataclass(frozen=True)
class WorkerInfo:
    """Identity of one live worker: id, OS pid, log file and hosted engines."""

    worker_id: int
    pid: int
    log_path: str | None
    #: The ``(relation, replica)`` engines this worker hosts.
    keys: tuple[tuple[str, int], ...]


# --------------------------------------------------------------------- #
# The worker side
# --------------------------------------------------------------------- #
class _WorkerLog:
    """Append-only per-worker log file (no-op when the fleet runs log-less)."""

    def __init__(self, path: str | None, worker_id: int) -> None:
        self._handle = open(path, "a", encoding="utf-8") if path else None
        self._worker_id = worker_id

    def write(self, message: str) -> None:
        """Append one timestamped line and flush (logs must survive a crash)."""
        if self._handle is None:
            return
        stamp = time.strftime("%Y-%m-%dT%H:%M:%S")
        self._handle.write(f"{stamp} worker-{self._worker_id} {message}\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file, if any."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def worker_main(worker_id: int, conn, spec: dict) -> None:
    """Entry point of one worker process: serve micro-batches until told to stop.

    The protocol over ``conn`` (one duplex pipe to the parent) is strictly
    request/response and FIFO:

    * ``("batch", batch_id, route, replica, [(index, query), ...])`` — answer
      the micro-batch on the ``(route, replica)`` engine (built lazily from
      the shipped payload on first use) and reply ``("result", worker_id,
      batch_id, [(index, selectivity), ...], latency_ms, busy_cpu_ms)``,
      where ``latency_ms`` is the engine's dispatch latency and
      ``busy_cpu_ms`` the CPU time (:func:`time.process_time`) the dispatch
      consumed — the quantity the bench's capacity accounting aggregates.
    * ``("reset",)`` — start a fresh workload scope on every engine (caches
      survive, exactly like the single-process fleet).
    * ``("report",)`` — reply ``("report", worker_id, {key: {"cache":
      cache_stats, "counters": scope_counters}})`` carrying each engine's
      conditional-cache counters and its row-accounting scope deltas
      (:meth:`~repro.serve.engine.EstimationEngine.scope_counters`).
    * ``("stop",)`` — reply ``("stopped", worker_id)`` and exit.

    Any worker-side exception is formatted and sent up as ``("error",
    worker_id, traceback)`` before the process exits, so the parent can raise
    a typed :class:`WorkerError` instead of hanging.  EOF on the pipe means
    the parent is gone; the worker exits quietly.
    """
    import signal
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent owns Ctrl-C
    log = _WorkerLog(spec.get("log_path"), worker_id)
    engine_config = spec["engine"]
    estimators: dict[str, object] = {}
    engines: dict[tuple[str, int], EstimationEngine] = {}
    sink: list[EstimateResult] = []
    records: list[BatchRecord] = []

    def engine_for(route: str, replica: int) -> EstimationEngine:
        key = (route, replica)
        engine = engines.get(key)
        if engine is None:
            estimator = estimators.get(route)
            if estimator is None:
                build_start = time.perf_counter()
                estimator = restore_estimator(spec["payloads"][route])
                estimators[route] = estimator
                log.write(f"restored model {route!r} in "
                          f"{(time.perf_counter() - build_start) * 1000:.1f}ms")
            engine = EstimationEngine(
                estimator, batch_size=1,
                num_samples=engine_config["num_samples"],
                use_cache=engine_config["use_cache"],
                cache_entries=engine_config["cache_entries"],
                seed=engine_config["seed"],
                result_sink=sink.append, batch_hook=records.append)
            engines[key] = engine
            log.write(f"engine up for {route!r} replica {replica}")
        return engine

    try:
        log.write(f"ready pid={os.getpid()} "
                  f"keys={sorted(spec['keys'])}")
        conn.send(("ready", worker_id, os.getpid()))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "batch":
                _, batch_id, route, replica, items = message
                engine = engine_for(route, replica)
                # The parent owns batching: dispatch exactly this batch.
                engine.batch_size = max(len(items), 1)
                del sink[:]
                del records[:]
                busy_start = time.process_time()
                for index, query in items:
                    engine.submit(query, index=index)
                engine.flush()
                busy_cpu_ms = (time.process_time() - busy_start) * 1000.0
                record = records[-1]
                conn.send(("result", worker_id, batch_id,
                           [(result.index, result.selectivity)
                            for result in sink],
                           record.latency_ms, busy_cpu_ms))
                log.write(f"batch {batch_id} {route!r}/{replica} "
                          f"n={len(items)} latency={record.latency_ms:.2f}ms "
                          f"busy_cpu={busy_cpu_ms:.2f}ms")
            elif kind == "reset":
                for engine in engines.values():
                    engine.reset()
                log.write("reset (new workload scope)")
            elif kind == "report":
                conn.send(("report", worker_id,
                           {key: {"cache": engine.cache_stats,
                                  "counters": engine.scope_counters()}
                            for key, engine in engines.items()}))
            elif kind == "stop":
                log.write("stopping (graceful drain complete)")
                conn.send(("stopped", worker_id))
                return
            else:
                raise ValueError(f"unknown message kind {kind!r}")
    except EOFError:
        log.write("parent pipe closed; exiting")
    except Exception:
        formatted = traceback.format_exc()
        log.write("error\n" + formatted)
        try:
            conn.send(("error", worker_id, formatted))
        except Exception:
            pass
    finally:
        log.close()


# --------------------------------------------------------------------- #
# The parent side
# --------------------------------------------------------------------- #
class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("worker_id", "process", "conn", "log_path", "stopped")

    def __init__(self, worker_id, process, conn, log_path) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.log_path = log_path
        self.stopped = False


class _Inflight:
    """One micro-batch shipped to a worker and awaiting its results."""

    __slots__ = ("route", "replica", "worker_id", "batch_index", "items",
                 "arrivals", "timeout_flush")

    def __init__(self, route, replica, worker_id, batch_index, items,
                 arrivals, timeout_flush) -> None:
        self.route = route
        self.replica = replica
        self.worker_id = worker_id
        self.batch_index = batch_index
        self.items = items            # [(index, query), ...] in ship order
        self.arrivals = arrivals      # parent-clock submit stamp per query
        self.timeout_flush = timeout_flush


class ProcessFleet:
    """Serve a model fleet from N OS worker processes.

    Behaves like :class:`~repro.serve.router.FleetRouter` from the caller's
    side — ``submit``/``flush``/``tick``/``run``/``report`` with the same
    routing, placement and determinism contract — but each ``(relation,
    replica)`` engine lives in a worker process chosen by the registry's
    deterministic round-robin assignment.  Estimates depend only on ``(seed,
    global index, num_samples)``; the worker count is invisible in the
    numbers (``workers=1 ≡ workers=N``, bit for bit).

    Parameters
    ----------
    registry:
        The model fleet.  Every relation is built, fitted and snapshotted in
        the parent *before* any worker spawns, so a failing registry raises
        here with no child processes left behind.
    workers:
        Number of OS worker processes to spawn.
    replicas:
        Optional fleet-wide replica override (``None`` reads each relation's
        registered count).  More replicas than workers is fine (workers host
        several engines); more workers than engines leaves workers idle.
    batch_size:
        Per-replica micro-batch capacity, applied in the parent: a replica's
        batch ships to its worker the moment it fills.
    num_samples, use_cache, cache_entries, seed:
        Engine knobs with :class:`~repro.serve.router.FleetRouter` semantics.
        The ``cache_entries`` budget is split evenly across all replica
        engines; worker-side caches are per-engine (process boundaries make
        the router's group-shared cache impossible), so with ``replicas > 1``
        cache hit patterns — never estimates beyond float round-off — may
        differ from the single-process fleet.
    default_route:
        Relation serving unqualified queries (defaults to the registry's
        only relation when it has exactly one).
    flush_after_ms:
        Parent-side flush deadline: :meth:`tick` ships any partially filled
        batch whose oldest query has waited this long.
    log_dir:
        Directory for per-worker log files (``worker-<id>.log``, created if
        missing); ``None`` disables worker logging.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default;
        ``"spawn"`` is supported — payloads travel as pickled process
        arguments, not inherited memory).
    recv_timeout_s:
        How long the parent waits on a worker before raising
        :class:`WorkerError` — the bound that turns a crash into a typed
        error instead of a hang.
    clock:
        Zero-argument seconds callable stamping arrivals and receipts
        (``time.perf_counter`` by default); injectable for deterministic
        accounting tests.
    """

    def __init__(self, registry: ModelRegistry, *, workers: int = 2,
                 replicas: int | None = None, batch_size: int = 32,
                 num_samples: int | None = None, use_cache: bool = True,
                 cache_entries: int = 262144, seed: int = 0,
                 default_route: str | None = None,
                 flush_after_ms: float | None = None,
                 log_dir: str | None = None,
                 start_method: str | None = None,
                 recv_timeout_s: float = 120.0, clock=None) -> None:
        if len(registry) == 0:
            raise ValueError("the registry has no relations to serve")
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if replicas is not None and replicas < 1:
            raise ValueError(f"replicas must be at least 1, got {replicas}")
        if flush_after_ms is not None and flush_after_ms <= 0:
            raise ValueError(f"flush_after_ms must be positive, got "
                             f"{flush_after_ms}")
        if default_route is not None and default_route not in registry:
            raise ValueError(f"default route {default_route!r} is not a "
                             f"registered relation ({', '.join(registry.names)})")
        if default_route is None and len(registry) == 1:
            default_route = registry.names[0]
        self.registry = registry
        self.num_workers = workers
        self.batch_size = batch_size
        self.num_samples = num_samples
        self.use_cache = use_cache
        self.cache_entries = cache_entries
        self.seed = seed
        self.default_route = default_route
        self.flush_after_ms = flush_after_ms
        self.recv_timeout_s = recv_timeout_s
        self.clock = clock if clock is not None else time.perf_counter

        self._replica_counts = {
            name: (replicas if replicas is not None
                   else registry.replicas(name))
            for name in registry.names}
        engines_total = sum(self._replica_counts.values())
        self.cache_entries_per_model = max(
            1, cache_entries // max(engines_total if use_cache else 0, 1))
        self._assignment = registry.worker_assignments(
            workers, replicas=self._replica_counts)

        # Train + snapshot every model BEFORE spawning anything: a broken
        # registry must fail fast with no children to clean up.
        payloads = {name: export_relation(registry, name)
                    for name in registry.names}
        self._rows = {name: registry.serving_rows(name)
                      for name in registry.names}
        # Epoch snapshot of the exported models: a later parent-side ingest
        # or refresh can never reach the workers' npz copies, so any epoch
        # mismatch at serve time raises StaleEpochError instead of silently
        # answering from frozen models.
        self._epochs = {name: registry.serving_epoch(name)
                        for name in registry.names}
        self._samples_by_route = {
            name: (num_samples
                   or getattr(payloads[name]["config"], "progressive_samples",
                              None) or 1000)
            for name in registry.names}

        if log_dir is not None:
            os.makedirs(log_dir, exist_ok=True)
        self.log_dir = log_dir

        self._pending: dict[tuple[str, int], list] = {}
        self._inflight: dict[int, _Inflight] = {}
        self._batch_counters: dict[tuple[str, int], int] = {}
        self._results: dict[tuple[str, int], list[EstimateResult]] = {}
        self._records: dict[tuple[str, int], list[BatchRecord]] = {}
        self._engine_stats: dict[tuple[str, int], dict] = {}
        self._worker_tallies: dict[int, dict] = {}
        self._next_index = 0
        self._next_batch_id = 0
        self._closed = False

        context = mp.get_context(start_method)
        self._handles: dict[int, _WorkerHandle] = {}
        self._infos: dict[int, WorkerInfo] = {}
        try:
            for worker_id in range(workers):
                keys = sorted(key for key, wid in self._assignment.items()
                              if wid == worker_id)
                spec = {
                    "keys": keys,
                    "payloads": {route: payloads[route]
                                 for route, _ in keys},
                    "engine": {
                        "num_samples": num_samples,
                        "use_cache": use_cache,
                        "cache_entries": self.cache_entries_per_model,
                        "seed": seed,
                    },
                    "log_path": (os.path.join(log_dir,
                                              f"worker-{worker_id}.log")
                                 if log_dir is not None else None),
                }
                self._handles[worker_id] = self._start_worker(
                    worker_id, context, spec)
            for worker_id, handle in self._handles.items():
                self._infos[worker_id] = self._await_ready(handle)
        except BaseException:
            # Partial construction must not leak children: terminate whatever
            # was already spawned, then re-raise the original failure.
            self._shutdown(timeout_s=5.0, graceful=False)
            self._closed = True
            raise

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _start_worker(self, worker_id: int, context, spec: dict) -> _WorkerHandle:
        """Spawn one worker process and return its parent-side handle."""
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=worker_main, name=f"procfleet-worker-{worker_id}",
            args=(worker_id, child_conn, spec), daemon=True)
        process.start()
        child_conn.close()  # the worker owns its end now
        return _WorkerHandle(worker_id, process, parent_conn,
                             spec.get("log_path"))

    def _await_ready(self, handle: _WorkerHandle) -> WorkerInfo:
        """Block until one worker reports ready (or fail with WorkerError)."""
        deadline = self.clock() + self.recv_timeout_s
        while not handle.conn.poll(_POLL_S):
            if not handle.process.is_alive():
                raise self._worker_failure(
                    handle.worker_id, "died before reporting ready")
            if self.clock() > deadline:
                raise WorkerError(
                    handle.worker_id,
                    f"did not report ready within {self.recv_timeout_s:.0f}s",
                    log_path=handle.log_path)
        message = handle.conn.recv()
        if message[0] == "error":
            raise WorkerError(handle.worker_id, "failed during startup",
                              log_path=handle.log_path,
                              remote_traceback=message[2])
        if message[0] != "ready":
            raise WorkerError(handle.worker_id,
                              f"spoke out of turn during startup: {message[0]!r}",
                              log_path=handle.log_path)
        keys = sorted(key for key, wid in self._assignment.items()
                      if wid == handle.worker_id)
        return WorkerInfo(worker_id=handle.worker_id, pid=message[2],
                          log_path=handle.log_path, keys=tuple(keys))

    @property
    def workers(self) -> list[WorkerInfo]:
        """Identity of every worker (id, pid, log file, hosted engines)."""
        return [self._infos[worker_id] for worker_id in sorted(self._infos)]

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed (submissions are refused)."""
        return self._closed

    @property
    def next_index(self) -> int:
        """The global index :meth:`submit` will assign to its next query."""
        return self._next_index

    @property
    def pending(self) -> int:
        """Queries accepted but not yet shipped to a worker."""
        return sum(len(items) for items in self._pending.values())

    @property
    def in_flight(self) -> int:
        """Queries shipped to workers whose results have not returned yet."""
        return sum(len(entry.items) for entry in self._inflight.values())

    def kill_worker(self, worker_id: int) -> WorkerInfo:
        """Hard-kill one worker (SIGKILL) — a failure-injection drill hook.

        The next :meth:`collect`/:meth:`run` touching the dead worker raises
        :class:`WorkerError` within ``recv_timeout_s``; ``docs/operations.md``
        and the :func:`repro.serve.loadgen.run_kill_worker_drill` chaos drill
        use this to demonstrate crash handling.

        Args:
            worker_id: Which worker to kill, ``0 <= worker_id < workers``.

        Returns:
            The killed worker's :class:`WorkerInfo` snapshot (id, pid, log
            path, hosted engine keys) — what the drill report records.

        Raises:
            ValueError: ``worker_id`` names no worker of this fleet.
            RuntimeError: The fleet is closed (nothing left to kill).
        """
        if self._closed:
            raise RuntimeError("the fleet is closed; no workers to kill")
        if worker_id not in self._handles:
            raise ValueError(
                f"no worker {worker_id!r} in this fleet (workers: "
                f"{sorted(self._handles)})")
        info = self._infos[worker_id]
        self._handles[worker_id].process.kill()
        return info

    def __enter__(self) -> "ProcessFleet":
        """Context-manager entry: the fleet itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: graceful drain via :meth:`close`."""
        self.close()

    def close(self, timeout_s: float = 10.0) -> None:
        """Gracefully drain and stop the fleet; idempotent.

        Flushes every pending micro-batch, collects in-flight results (so a
        later :meth:`report` still covers them), snapshots worker cache
        stats, then asks each worker to stop and joins it — terminating any
        straggler after ``timeout_s``.  Errors during the drain (e.g. a
        worker already dead) are swallowed: ``close()`` is teardown, and the
        typed :class:`WorkerError` surfaced on the serving path that got
        here first.
        """
        if self._closed:
            return
        try:
            self.flush()
            self._drain(block=True)
            self._refresh_engine_stats()
        except Exception:
            pass  # best-effort drain; the hard stop below always runs
        finally:
            self._closed = True
            self._shutdown(timeout_s=timeout_s, graceful=True)

    def _shutdown(self, *, timeout_s: float, graceful: bool) -> None:
        """Stop every worker: politely when ``graceful``, else terminate."""
        for handle in self._handles.values():
            if handle.stopped:
                continue
            if graceful and handle.process.is_alive():
                try:
                    handle.conn.send(("stop",))
                except Exception:
                    pass
        for handle in self._handles.values():
            if handle.stopped:
                continue
            handle.process.join(timeout_s if graceful else 0.1)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
            try:
                handle.conn.close()
            except Exception:
                pass
            handle.stopped = True

    def _worker_failure(self, worker_id: int, reason: str) -> WorkerError:
        """Build the typed error for one failed worker."""
        handle = self._handles[worker_id]
        # A freshly killed child may not be reapable the instant its pipe
        # EOFs; give it a bounded moment so the typed error carries the real
        # exit code (e.g. -9 for SIGKILL) instead of a racy None.
        handle.process.join(timeout=1.0)
        return WorkerError(worker_id, reason,
                           exit_code=handle.process.exitcode,
                           log_path=handle.log_path)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def submit(self, query: Query, index: int | None = None) -> str:
        """Route and enqueue one query; returns the relation it was assigned.

        Same contract as :meth:`FleetRouter.submit
        <repro.serve.router.FleetRouter.submit>`: the replica is the
        deterministic crc32 hash of ``(relation, global index)``, the worker
        is whichever process hosts that replica, and a full micro-batch ships
        immediately.  Raises :class:`~repro.serve.router.RoutingError` for
        unroutable queries (without consuming an index) and ``RuntimeError``
        after :meth:`close`.
        """
        if self._closed:
            raise RuntimeError("the fleet is closed; no further submissions")
        route = resolve_route(self.registry, query, self.default_route)
        self._check_epoch(route)
        if index is None:
            index = self._next_index
        replica = replica_for(route, index, self._replica_counts[route])
        key = (route, replica)
        self._pending.setdefault(key, []).append((index, query, self.clock()))
        self._next_index = max(self._next_index, index + 1)
        if len(self._pending[key]) >= self.batch_size:
            self._ship(key)
        self._drain(block=False)  # keep the result pipes from backing up
        return route

    def _ship(self, key: tuple[str, int], *, timeout_flush: bool = False) -> None:
        """Send one replica's pending micro-batch to its worker."""
        items = self._pending.pop(key)
        route, replica = key
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        batch_index = self._batch_counters.get(key, 0)
        self._batch_counters[key] = batch_index + 1
        worker_id = self._assignment[key]
        handle = self._handles[worker_id]
        payload = [(index, query) for index, query, _ in items]
        try:
            handle.conn.send(("batch", batch_id, route, replica, payload))
        except (OSError, ValueError, BrokenPipeError) as error:
            raise self._worker_failure(
                worker_id, "went away while a batch was being sent") from error
        self._inflight[batch_id] = _Inflight(
            route=route, replica=replica, worker_id=worker_id,
            batch_index=batch_index, items=payload,
            arrivals={index: arrival for index, _, arrival in items},
            timeout_flush=timeout_flush)

    def flush(self) -> None:
        """Ship every partially filled micro-batch to its worker."""
        for key in list(self._pending):
            self._ship(key)

    def tick(self, now: float | None = None) -> float | None:
        """Ship overdue partial batches; returns the earliest remaining deadline.

        The parent owns the pending queues, so flush deadlines are enforced
        here (not in the workers): any batch whose oldest query has waited
        past ``flush_after_ms`` ships immediately, flagged ``timeout_flush``
        in the report exactly like the single-process fleet's.
        """
        if self.flush_after_ms is None or not self._pending:
            return None
        if now is None:
            now = self.clock()
        horizon = self.flush_after_ms / 1000.0
        next_deadline: float | None = None
        for key in list(self._pending):
            oldest = self._pending[key][0][2]
            deadline = oldest + horizon
            if deadline <= now:
                self._ship(key, timeout_flush=True)
            elif next_deadline is None or deadline < next_deadline:
                next_deadline = deadline
        return next_deadline

    def collect(self) -> None:
        """Block until every in-flight micro-batch has returned its results.

        Raises :class:`WorkerError` (within ``recv_timeout_s``) if a worker
        dies or stops answering while results are outstanding.
        """
        self._drain(block=True)

    def _drain(self, *, block: bool) -> None:
        """Receive worker messages: one sweep when not blocking, else all."""
        deadline = self.clock() + self.recv_timeout_s
        while self._inflight:
            conns = {handle.conn: worker_id
                     for worker_id, handle in self._handles.items()
                     if not handle.stopped}
            ready = mp_connection.wait(list(conns),
                                       timeout=_POLL_S if block else 0)
            for conn in ready:
                worker_id = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError) as error:
                    raise self._worker_failure(
                        worker_id, "pipe closed with results outstanding"
                    ) from error
                self._handle_message(message)
            if not block:
                return
            if not ready:
                self._check_liveness()
                if self.clock() > deadline:
                    raise WorkerError(
                        min(entry.worker_id
                            for entry in self._inflight.values()),
                        f"no results within {self.recv_timeout_s:.0f}s with "
                        f"{self.in_flight} queries in flight")

    def _check_liveness(self) -> None:
        """Raise for any dead worker that still owes in-flight results."""
        owing = {entry.worker_id for entry in self._inflight.values()}
        for worker_id in owing:
            if not self._handles[worker_id].process.is_alive():
                raise self._worker_failure(
                    worker_id, "died with results outstanding")

    def _handle_message(self, message: tuple) -> None:
        """Fold one worker message into the parent-side accounting."""
        kind = message[0]
        if kind == "result":
            _, worker_id, batch_id, pairs, latency_ms, busy_cpu_ms = message
            entry = self._inflight.pop(batch_id)
            received = self.clock()
            key = (entry.route, entry.replica)
            num_rows = self._rows[entry.route]
            queries = dict(entry.items)
            waits: list[float] = []
            results = self._results.setdefault(key, [])
            for index, selectivity in pairs:
                e2e_ms = max(0.0, (received - entry.arrivals[index]) * 1000.0)
                wait_ms = max(0.0, e2e_ms - latency_ms)
                waits.append(wait_ms)
                results.append(EstimateResult(
                    index=index, query=queries[index],
                    selectivity=selectivity,
                    cardinality=selectivity * num_rows,
                    batch_index=entry.batch_index,
                    queue_wait_ms=wait_ms, e2e_ms=e2e_ms))
            self._records.setdefault(key, []).append(BatchRecord(
                batch_index=entry.batch_index, num_queries=len(pairs),
                latency_ms=latency_ms, queue_wait_ms=tuple(waits),
                timeout_flush=entry.timeout_flush))
            tally = self._worker_tallies.setdefault(
                worker_id, {"num_queries": 0, "num_batches": 0,
                            "busy_cpu_ms": 0.0, "latency_ms": 0.0})
            tally["num_queries"] += len(pairs)
            tally["num_batches"] += 1
            tally["busy_cpu_ms"] += busy_cpu_ms
            tally["latency_ms"] += latency_ms
        elif kind == "error":
            _, worker_id, remote = message
            handle = self._handles[worker_id]
            raise WorkerError(worker_id, "raised while serving",
                              exit_code=handle.process.exitcode,
                              log_path=handle.log_path,
                              remote_traceback=remote)
        # "report"/"stopped" replies are consumed by their request sites;
        # anything else arriving here is a stale message and is dropped.

    # ------------------------------------------------------------------ #
    # Scopes and reporting
    # ------------------------------------------------------------------ #
    def run(self, queries: list[Query]) -> FleetReport:
        """Serve a whole mixed workload and return the merged fleet report.

        Same scope semantics as :meth:`FleetRouter.run
        <repro.serve.router.FleetRouter.run>`: indices restart at zero, the
        report covers only this call, worker-side conditional caches carry
        over.
        """
        self._begin_scope()
        ticking = self.flush_after_ms is not None
        for query in queries:
            self.submit(query)
            if ticking:
                self.tick()
        self.flush()
        self.collect()
        return self.report()

    def _check_epoch(self, route: str) -> None:
        """Refuse to serve a route whose registry epoch moved past the export."""
        snapshot = self._epochs.get(route)
        if snapshot is None:
            return  # registered after construction; no worker hosts it anyway
        current = self.registry.serving_epoch(route)
        if current != snapshot:
            raise StaleEpochError(route, snapshot, current)

    def _begin_scope(self) -> None:
        """Start a fresh workload scope: reset indices and worker engines."""
        if self._pending or self._inflight:
            raise RuntimeError("submitted queries are still pending or in "
                               "flight; call flush() and collect() before "
                               "run()")
        for route in self._epochs:
            self._check_epoch(route)
        for handle in self._handles.values():
            if not handle.stopped:
                try:
                    handle.conn.send(("reset",))
                except (OSError, ValueError, BrokenPipeError) as error:
                    raise self._worker_failure(
                        handle.worker_id, "went away during scope reset"
                    ) from error
        self._results = {}
        self._records = {}
        self._batch_counters = {}
        self._worker_tallies = {}
        self._next_index = 0

    def _refresh_engine_stats(self) -> None:
        """Pull per-engine cache counters and scope deltas from live workers."""
        for worker_id, handle in self._handles.items():
            if handle.stopped or not handle.process.is_alive():
                continue
            handle.conn.send(("report",))
            deadline = self.clock() + self.recv_timeout_s
            while True:
                if handle.conn.poll(_POLL_S):
                    message = handle.conn.recv()
                    if message[0] == "report":
                        self._engine_stats.update(message[2])
                        break
                    self._handle_message(message)  # stray result, fold it in
                elif not handle.process.is_alive():
                    raise self._worker_failure(
                        worker_id, "died during a cache-stats snapshot")
                elif self.clock() > deadline:
                    raise WorkerError(
                        worker_id, "cache-stats snapshot timed out",
                        log_path=handle.log_path)

    def worker_stats(self) -> dict[str, dict]:
        """Per-worker serving tallies for the current workload scope.

        Keyed by stringified worker id (JSON-friendly); each entry carries
        the worker's pid, log path, hosted engines, query/batch counts and
        the summed worker-side dispatch latency and busy-CPU time.  The
        busy-CPU column is what the ``serve_procfleet`` bench's capacity
        accounting is built from: CPU seconds are immune to time-slicing, so
        the fleet's critical path is ``max`` over workers even on a
        single-core host.
        """
        stats: dict[str, dict] = {}
        for worker_id in sorted(self._infos):
            info = self._infos[worker_id]
            tally = self._worker_tallies.get(
                worker_id, {"num_queries": 0, "num_batches": 0,
                            "busy_cpu_ms": 0.0, "latency_ms": 0.0})
            stats[str(worker_id)] = {
                "pid": info.pid,
                "log_path": info.log_path,
                "engines": [f"{route}/{replica}"
                            for route, replica in info.keys],
                **tally,
            }
        return stats

    def report(self) -> FleetReport:
        """Merged snapshot of the current scope, in global submission order.

        Collects any in-flight results first, then builds the same
        per-replica :class:`~repro.serve.engine.EngineReport` structure the
        single-process fleet produces — the worker boundary is invisible in
        the report except for the extra ``stats.workers`` breakdown.
        """
        if not self._closed:
            self.collect()
            self._refresh_engine_stats()
        route_reports: dict[str, list[EngineReport]] = {}
        served = {route for route, _ in
                  set(self._results) | set(self._records)}
        for route in self.registry.names:
            if route not in served:
                continue
            reports = []
            for replica in range(self._replica_counts[route]):
                key = (route, replica)
                entry = self._engine_stats.get(key) or {}
                results = sorted(self._results.get(key, []),
                                 key=lambda result: result.index)
                records = list(self._records.get(key, []))
                elapsed_s = sum(record.latency_ms
                                for record in records) / 1000.0
                stats = EngineStats(
                    num_queries=len(results), num_batches=len(records),
                    elapsed_s=elapsed_s,
                    num_samples=self._samples_by_route[route],
                    batch_size=self.batch_size,
                    timeout_flushes=sum(record.timeout_flush
                                        for record in records),
                    cache=entry.get("cache"),
                    **entry.get("counters", {}))
                reports.append(EngineReport(results=results, batches=records,
                                            stats=stats))
            route_reports[route] = reports
        return _merge_reports(
            route_reports, num_models=len(self.registry),
            cache_entries_total=self.cache_entries,
            cache_entries_per_model=self.cache_entries_per_model,
            workers=self.worker_stats(),
            epochs={
                name: {
                    "data_epoch": self.registry.data_epoch(name),
                    "model_epoch": self.registry.model_epoch(name),
                    "staleness": self.registry.staleness(name),
                }
                for name in self.registry.names
            })

    def __repr__(self) -> str:
        state = "closed" if self._closed else "live"
        return (f"ProcessFleet({len(self.registry)} relations, "
                f"{self.num_workers} workers, "
                f"{sum(self._replica_counts.values())} engines, {state})")
