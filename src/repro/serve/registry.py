"""Named fleet of estimators: one model per registered relation.

:class:`ModelRegistry` is the model-management half of multi-model serving.
It holds *named relations* — base tables and join results alike, following the
paper's §4.1 observation that a joined relation is served exactly like a base
table — and builds one estimator per relation on demand:

* :meth:`ModelRegistry.register_table` registers a base :class:`Table`;
  ``replicas=N`` marks the relation for replicated serving — the router
  materialises N engine replicas over the relation's one trained model, so a
  hot table stops bottlenecking the fleet (see
  :class:`repro.serve.router.ReplicaGroup`),
* :meth:`ModelRegistry.register_join` registers a
  :class:`repro.data.JoinSpec`, resolves its inputs against the already
  registered relations and materialises (or samples) the join result,
* :meth:`ModelRegistry.estimator` returns the relation's trained estimator,
  building and fitting it lazily on first use; :meth:`ModelRegistry.fit_all`
  trains every pending model eagerly (what a server does at startup so the
  first routed query does not pay the training cost),
* :meth:`ModelRegistry.size_bytes` / :meth:`ModelRegistry.size_report` roll
  the per-model storage budgets up to the fleet level, the quantity the
  paper's storage-budget comparisons cap per relation.

The registry is deliberately estimator-agnostic: pre-built, already trained
estimators (any :class:`repro.estimators.base.CardinalityEstimator`) can be
registered directly, and relations without one default to a :class:`repro.core
.NaruEstimator` built from the registry's default config and fitted by the
registry itself.  The routing half —
micro-batching queries per model and merging reports — lives in
:class:`repro.serve.router.FleetRouter`.
"""

from __future__ import annotations

from ..core.config import NaruConfig
from ..core.estimator import NaruEstimator
from ..data.joins import JoinSpec
from ..data.table import Table
from ..estimators.base import CardinalityEstimator
from ..query.predicates import DNFQuery, Query
from ..query.shapes import QueryShape, query_shape

__all__ = ["ModelRegistry"]


class ModelRegistry:
    """Registry of named relations and the estimators that serve them.

    Parameters
    ----------
    default_config:
        :class:`~repro.core.config.NaruConfig` used for relations registered
        without an explicit config or pre-built estimator.
    seed:
        Seed of the default config built when ``default_config`` is omitted
        (keeps a fleet reproducible from a single knob).
    """

    def __init__(self, *, default_config: NaruConfig | None = None,
                 seed: int = 0) -> None:
        self.default_config = default_config or NaruConfig(seed=seed)
        self.seed = seed
        self._relations: dict[str, Table] = {}
        self._configs: dict[str, NaruConfig] = {}
        self._estimators: dict[str, CardinalityEstimator] = {}
        #: Per-relation fallback estimators serving the query shapes the
        #: primary cannot (e.g. many-branch DNF beyond Naru's expansion
        #: budget); see :meth:`register_table` and :meth:`fallback`.
        self._fallbacks: dict[str, CardinalityEstimator] = {}
        self._fitted: set[str] = set()
        self._joins: dict[str, JoinSpec] = {}
        self._replicas: dict[str, int] = {}
        self._slos: dict[str, float] = {}
        self._flush_afters: dict[str, float] = {}
        #: Monotonic data epoch per relation: bumped by every :meth:`ingest`.
        self._epochs: dict[str, int] = {}
        #: Data epoch each relation's serving model was (re)fitted at.
        self._model_epochs: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register_table(self, table: Table, *, name: str | None = None,
                       config: NaruConfig | None = None,
                       estimator: CardinalityEstimator | None = None,
                       fallback: CardinalityEstimator | None = None,
                       replicas: int = 1,
                       slo_ms: float | None = None,
                       flush_after_ms: float | None = None,
                       replace: bool = False) -> str:
        """Register a base table as a named relation and return its name.

        Parameters
        ----------
        table:
            The relation to serve.
        name:
            Registry name; defaults to ``table.name``.
        config:
            Per-model config overriding the registry default (ignored when
            ``estimator`` is given).
        estimator:
            Pre-built estimator to serve this relation with instead of a
            lazily built Naru model.  It must arrive ready to serve (already
            trained): the registry only manages the fit lifecycle of models
            it builds itself — it cannot know what arguments an arbitrary
            estimator's ``fit`` needs (MSCN wants a training workload, the
            KDE variants want feedback, …).
        fallback:
            Optional second estimator serving the query shapes the primary
            cannot (see
            :meth:`repro.estimators.base.CardinalityEstimator.capabilities`) —
            typically a :class:`repro.estimators.SamplingEstimator`, whose
            row-level access unions DNF branches of any width.  Like
            ``estimator`` it must arrive trained and schema-matched; the
            router routes a query here only when the primary's
            ``can_serve`` refuses it.  Tune later with :meth:`set_fallback`.
        replicas:
            Number of serving-engine replicas the router materialises for
            this relation (default 1).  Replicas share the relation's one
            trained model — the estimate of a query depends only on
            ``(seed, global workload index)``, never on which replica served
            it — but each replica keeps its own micro-batch queue and its own
            slice of the fleet cache budget, so a hot relation stops
            head-of-line-blocking the fleet.  Tune later with
            :meth:`set_replicas`.
        slo_ms:
            Per-relation dispatch-latency SLO in milliseconds (``None`` =
            no relation-level target).  An adaptive
            :class:`repro.serve.stream.StreamingRouter` uses this as the
            relation's p95 target, overriding its router-wide ``slo_ms`` —
            so a latency-critical relation can run a tighter budget than the
            rest of the fleet.  Tune later with :meth:`set_slo`.
        flush_after_ms:
            Per-relation flush deadline in milliseconds (``None`` = defer to
            the router-wide ``flush_after_ms``).  A router serving this
            relation dispatches any partially filled micro-batch once its
            oldest query has waited this long, bounding the relation's
            queueing delay.  Tune later with :meth:`set_flush_after`.
        replace:
            Allow re-registering an already registered name — the atomic
            model-swap half of a live refresh (see
            :class:`repro.serve.refresh.RefreshController`).  The relation's
            data epoch, replica count, SLO and flush deadline are preserved;
            when an ``estimator`` is supplied its model epoch is stamped to
            the current data epoch, marking the relation fresh again.  With
            the default ``False`` a duplicate name raises.
        """
        name = name or table.name
        replacing = name in self._relations
        if replacing and not replace:
            raise ValueError(f"relation {name!r} is already registered")
        if replicas < 1:
            raise ValueError(f"replicas must be at least 1, got {replicas}")
        if slo_ms is not None and slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {slo_ms}")
        if flush_after_ms is not None and flush_after_ms <= 0:
            raise ValueError(f"flush_after_ms must be positive, got "
                             f"{flush_after_ms}")
        if estimator is not None:
            self._validate_prebuilt(name, estimator, table, "estimator")
        if fallback is not None:
            self._validate_prebuilt(name, fallback, table, "fallback estimator")
        self._relations[name] = table
        if not replacing:
            # A replacement swaps table + model only; replica/SLO/flush
            # settings (and the data epoch) survive — tune them with the
            # dedicated setters.
            self._replicas[name] = replicas
            if slo_ms is not None:
                self._slos[name] = float(slo_ms)
            if flush_after_ms is not None:
                self._flush_afters[name] = float(flush_after_ms)
        if estimator is not None:
            self._estimators[name] = estimator
            self._fitted.add(name)
            self._model_epochs[name] = self._epochs.get(name, 0)
        else:
            if replacing:
                # The old model summarises the old table: drop it so the next
                # estimator() call rebuilds (and restamps) on the new data.
                self._estimators.pop(name, None)
                self._fitted.discard(name)
            if config is not None:
                self._configs[name] = config
        if fallback is not None:
            self._fallbacks[name] = fallback
        # A replacement without an explicit fallback keeps the existing one,
        # mirroring how replica/SLO/flush settings survive a model swap.
        return name

    @staticmethod
    def _validate_prebuilt(name: str, estimator: CardinalityEstimator,
                           table: Table, role: str) -> None:
        # Structural, not identity: a live refresh legitimately rebuilds
        # the relation as a new equal-schema Table (concat re-derives the
        # dictionaries) while the refreshed estimator still points at the
        # Table it was trained on.  What must match is the schema.
        if estimator.table.column_names != table.column_names:
            raise ValueError(
                f"{role} for {name!r} was built against table "
                f"{estimator.table.name!r}, whose schema does not match "
                "the registered relation")
        if not getattr(estimator, "_fitted", True):
            raise ValueError(
                f"{role} for {name!r} is not fitted; train it before "
                "registering (the registry only fits models it builds)")

    def register_join(self, spec: JoinSpec, *,
                      config: NaruConfig | None = None,
                      replicas: int = 1,
                      slo_ms: float | None = None,
                      flush_after_ms: float | None = None) -> str:
        """Build a join relation from registered inputs and register it.

        The spec's ``left``/``right`` names are resolved against the
        relations registered so far; the resulting table (materialised or
        sampled, per ``spec.how``) becomes a first-class named relation that
        routes, budgets, replicates and carries a latency SLO exactly like a
        base table.  Returns the relation name.
        """
        name = spec.relation_name
        if name in self._relations:
            raise ValueError(f"relation {name!r} is already registered")
        table = spec.build(self._relations)
        self.register_table(table, name=name, config=config, replicas=replicas,
                            slo_ms=slo_ms, flush_after_ms=flush_after_ms)
        self._joins[name] = spec
        return name

    def set_replicas(self, name: str, replicas: int) -> None:
        """Change the replica count of an already registered relation.

        Routers built *after* the change pick up the new count; routers
        already serving keep the replica groups they materialised.  The
        relation's trained model is untouched — scaling a hot relation out
        (or back in) never retrains anything.
        """
        self.relation(name)  # raise uniformly for unknown names
        if replicas < 1:
            raise ValueError(f"replicas must be at least 1, got {replicas}")
        self._replicas[name] = replicas

    def set_slo(self, name: str, slo_ms: float | None) -> None:
        """Change (or clear, with ``None``) a relation's dispatch-latency SLO.

        Adaptive routers read the SLO when they materialise the relation's
        replica group; routers already serving the relation keep the
        controller they built.
        """
        self.relation(name)  # raise uniformly for unknown names
        if slo_ms is None:
            self._slos.pop(name, None)
            return
        if slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {slo_ms}")
        self._slos[name] = float(slo_ms)

    def set_fallback(self, name: str,
                     fallback: CardinalityEstimator | None) -> None:
        """Set (or clear, with ``None``) a relation's fallback estimator.

        The fallback serves queries whose shape the primary estimator
        refuses (see :meth:`can_serve`); it must arrive trained and
        schema-matched, exactly like a pre-built primary.  Routers pick the
        change up when they materialise the relation's serving group.
        """
        table = self.relation(name)
        if fallback is None:
            self._fallbacks.pop(name, None)
            return
        self._validate_prebuilt(name, fallback, table, "fallback estimator")
        self._fallbacks[name] = fallback

    def set_flush_after(self, name: str, flush_after_ms: float | None) -> None:
        """Change (or clear, with ``None``) a relation's flush deadline.

        Routers read the deadline when they materialise the relation's
        replica group; routers already serving the relation keep the bound
        their engines were built with.
        """
        self.relation(name)  # raise uniformly for unknown names
        if flush_after_ms is None:
            self._flush_afters.pop(name, None)
            return
        if flush_after_ms <= 0:
            raise ValueError(f"flush_after_ms must be positive, got "
                             f"{flush_after_ms}")
        self._flush_afters[name] = float(flush_after_ms)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self):
        return iter(self._relations)

    @property
    def names(self) -> list[str]:
        """Registered relation names, in registration order."""
        return list(self._relations)

    def relation(self, name: str) -> Table:
        """The table backing one registered relation."""
        try:
            return self._relations[name]
        except KeyError:
            known = ", ".join(self.names) or "none"
            raise KeyError(f"no relation named {name!r}; "
                           f"registered: {known}") from None

    def join_spec(self, name: str) -> JoinSpec | None:
        """The :class:`JoinSpec` a relation was built from (``None`` for base tables)."""
        self.relation(name)  # raise uniformly for unknown names
        return self._joins.get(name)

    def replicas(self, name: str) -> int:
        """Number of serving-engine replicas registered for one relation."""
        self.relation(name)
        return self._replicas.get(name, 1)

    def slo_ms(self, name: str) -> float | None:
        """The relation's latency SLO in ms (``None`` = unset)."""
        self.relation(name)
        return self._slos.get(name)

    def flush_after_ms(self, name: str) -> float | None:
        """The relation's flush deadline in ms (``None`` = defer to router)."""
        self.relation(name)
        return self._flush_afters.get(name)

    def data_epoch(self, name: str) -> int:
        """The relation's monotonic data epoch (0 until the first ingest)."""
        self.relation(name)
        return self._epochs.get(name, 0)

    def model_epoch(self, name: str) -> int:
        """The data epoch the relation's serving model was (re)fitted at."""
        self.relation(name)
        return self._model_epochs.get(name, 0)

    def staleness(self, name: str) -> int:
        """How many ingests the serving model is behind the data (0 = fresh)."""
        return self.data_epoch(name) - self.model_epoch(name)

    def serving_epoch(self, name: str) -> tuple[int, int]:
        """The ``(data_epoch, model_epoch)`` pair cached results are keyed on.

        A cached selectivity is valid only while *both* components stand
        still: an ingest changes the true answer, a model swap changes the
        served one.  Routers stamp :class:`repro.serve.cache.ResultCache`
        entries with this pair, so either kind of bump invalidates them.
        """
        return (self.data_epoch(name), self.model_epoch(name))

    def ingest(self, name: str, rows: Table) -> int:
        """Append rows to a relation and bump its data epoch; returns the epoch.

        The relation's backing table is replaced by the concatenation (same
        schema required, see :meth:`repro.data.Table.concat`); the serving
        estimator is deliberately left untouched — it keeps serving *stale*
        estimates at the old row count until a refresh swaps in the next
        model version (:class:`repro.serve.refresh.RefreshController`).
        Epoch-keyed caches reject their now-stale entries on the next lookup.
        """
        table = self.relation(name)
        self._relations[name] = table.concat(rows, name=table.name)
        self._epochs[name] = self._epochs.get(name, 0) + 1
        return self._epochs[name]

    def serving_rows(self, name: str) -> int:
        """The row count estimates for one relation scale by.

        The built estimator's (possibly refreshed via ``set_row_count``)
        count when a model exists, falling back to the raw relation's —
        so cardinalities derived from cached selectivities agree with the
        model-served path even after data-shift updates.
        """
        estimator = self._estimators.get(name)
        if estimator is not None:
            return estimator.num_rows
        return self.relation(name).num_rows

    @property
    def total_replicas(self) -> int:
        """Fleet-wide engine count: the sum of every relation's replicas."""
        return sum(self._replicas.get(name, 1) for name in self._relations)

    def worker_assignments(self, workers: int, *,
                           replicas: dict[str, int] | int | None = None
                           ) -> dict[tuple[str, int], int]:
        """Deterministic placement of every ``(relation, replica)`` engine.

        Round-robins the fleet's engines — relations in registration order,
        replicas in index order — across ``workers`` slots, so the mapping
        depends only on the registry's contents and the worker count, never
        on process identity or timing.  This is the sharding half of the
        cross-process routing contract: :class:`repro.serve.procfleet
        .ProcessFleet` routes a query to its replica first (same crc32 hash
        as the in-process router), then looks the replica's worker up here —
        which is why ``workers=1`` and ``workers=N`` serve identical numbers.

        Parameters
        ----------
        workers:
            Number of worker slots (at least 1).
        replicas:
            Replica-count override: ``None`` reads each relation's
            registered count, an ``int`` applies fleet-wide, a dict maps
            relation names to counts (missing names fall back to their
            registered counts).

        Returns:
            ``{(relation, replica): worker_slot}`` covering every engine.
        """
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if isinstance(replicas, int):
            counts = {name: replicas for name in self.names}
        elif replicas is None:
            counts = {name: self.replicas(name) for name in self.names}
        else:
            counts = {name: replicas.get(name, self.replicas(name))
                      for name in self.names}
        for name, count in counts.items():
            if count < 1:
                raise ValueError(f"replicas must be at least 1, got {count} "
                                 f"for relation {name!r}")
        assignment: dict[tuple[str, int], int] = {}
        slot = 0
        for name in self.names:
            for replica in range(counts[name]):
                assignment[(name, replica)] = slot % workers
                slot += 1
        return assignment

    def is_fitted(self, name: str) -> bool:
        """Whether the relation's estimator has been built and trained."""
        self.relation(name)
        return name in self._fitted

    def fallback(self, name: str) -> CardinalityEstimator | None:
        """The relation's fallback estimator (``None`` when unset)."""
        self.relation(name)
        return self._fallbacks.get(name)

    def capabilities(self, name: str) -> frozenset[QueryShape]:
        """Query shapes the relation's *primary* estimator can answer.

        Reads the built estimator when one exists; a relation still pending
        its lazy Naru build reports Naru's capability set — the envelope is
        derivable from the config alone, so introspection never triggers a
        model build.
        """
        estimator = self._estimators.get(name)
        if estimator is not None:
            return estimator.capabilities()
        self.relation(name)
        return frozenset({QueryShape.CONJUNCTIVE, QueryShape.PREFIX,
                          QueryShape.DISJUNCTIVE})

    def can_serve(self, name: str, query: "Query | DNFQuery") -> bool:
        """Whether the relation's primary estimator can answer the query.

        Like :meth:`capabilities` this never builds a model: an unbuilt
        relation applies Naru's rules (all shapes, disjunctions bounded by
        the config's ``max_dnf_branches``) from the config alone, so routing
        decisions are cheap and identical before and after the lazy build.
        """
        estimator = self._estimators.get(name)
        if estimator is not None:
            return estimator.can_serve(query)
        if query_shape(query) not in self.capabilities(name):
            return False
        if isinstance(query, DNFQuery) and len(query.branches) > 1:
            return len(query.branches) <= self._config_for(name).max_dnf_branches
        return True

    # ------------------------------------------------------------------ #
    # Estimator lifecycle
    # ------------------------------------------------------------------ #
    def _config_for(self, name: str) -> NaruConfig:
        return self._configs.get(name, self.default_config)

    def estimator(self, name: str, *, fit: bool = True) -> CardinalityEstimator:
        """The estimator serving one relation, built (and fitted) lazily.

        The first call builds the model; with ``fit=True`` (the default) it
        is also trained before being returned, so callers always receive a
        servable estimator.  Later calls return the same object.
        """
        table = self.relation(name)
        estimator = self._estimators.get(name)
        if estimator is None:
            estimator = NaruEstimator(table, self._config_for(name))
            self._estimators[name] = estimator
        if fit and name not in self._fitted:
            # Only registry-built Naru models reach this branch: pre-built
            # estimators are required to arrive fitted at registration.
            estimator.fit()
            self._fitted.add(name)
            self._model_epochs[name] = self._epochs.get(name, 0)
        return estimator

    def fit_all(self) -> dict[str, CardinalityEstimator]:
        """Build and train every registered model; returns ``name -> estimator``.

        Idempotent: already fitted models are returned as-is.
        """
        return {name: self.estimator(name) for name in self._relations}

    # ------------------------------------------------------------------ #
    # Budget accounting
    # ------------------------------------------------------------------ #
    def size_report(self) -> dict[str, dict]:
        """Per-relation budget accounting, rolled up by :meth:`size_bytes`.

        For each relation: the estimator's model size (0 until the model is
        built), the raw relation footprint, row/column counts, whether the
        model is trained, and whether the relation is a join.
        """
        report: dict[str, dict] = {}
        for name, table in self._relations.items():
            estimator = self._estimators.get(name)
            report[name] = {
                "model_bytes": estimator.size_bytes() if estimator is not None else 0,
                "relation_bytes": table.in_memory_bytes(),
                "num_rows": table.num_rows,
                "num_columns": table.num_columns,
                "fitted": name in self._fitted,
                "is_join": name in self._joins,
                "fallback": (self._fallbacks[name].name
                             if name in self._fallbacks else None),
                "fallback_bytes": (self._fallbacks[name].size_bytes()
                                   if name in self._fallbacks else 0),
                "replicas": self._replicas.get(name, 1),
                "slo_ms": self._slos.get(name),
                "flush_after_ms": self._flush_afters.get(name),
            }
        return report

    def size_bytes(self) -> int:
        """Total model storage of the fleet (built models only)."""
        return sum(entry["model_bytes"] for entry in self.size_report().values())

    def __repr__(self) -> str:
        return (f"ModelRegistry({len(self)} relations: "
                f"{', '.join(self.names) or 'empty'})")
