"""Command line for the serving layer: replay workloads through the engines.

Single-model usage (one table, one estimator)::

    # Generate a 64-query workload over the census table and serve it batched.
    python -m repro.serve --dataset census --num-queries 64

    # Persist the generated workload, then replay it later.
    python -m repro.serve --save-workload workload.json --num-queries 64
    python -m repro.serve --workload workload.json --compare-sequential

    # Write the machine-readable report for dashboards / CI artifacts.
    python -m repro.serve --num-queries 32 --json report.json

Multi-model usage (a registry of relations behind one router)::

    # Serve two base tables plus their join as three routed models.
    python -m repro.serve --tables users sessions \
        --join sessions:users:user_id:user_id --num-queries 48

    # Sample the join instead of materialising it, and save the mixed
    # (table-qualified) workload for replay.
    python -m repro.serve --tables users sessions \
        --join sessions:users:user_id:user_id:sess_users --join-sample 2000 \
        --save-workload mixed.json

    # Replicate every relation 4x, bound each replica group's pending queue,
    # and front the fleet with an exact-match result cache.
    python -m repro.serve --tables users sessions --replicas 4 \
        --max-pending 32 --overflow shed --result-cache --num-queries 96

    # Widen the query language: a quarter of the workload becomes
    # disjunctions (2 or 6 branches) and a quarter LIKE prefixes; 6-branch
    # disjunctions overflow Naru's inclusion–exclusion bound and route to
    # the per-relation sampling fallback estimator.
    python -m repro.serve --tables users sessions --fallback sampling \
        --dnf-fraction 0.25 --like-fraction 0.25 --dnf-branches 2 6 \
        --num-queries 96

    # Stream the workload query-by-query through the asyncio client, with
    # SLO-aware adaptive batching: micro-batches shrink whenever the
    # end-to-end latency EWMA (queue wait + dispatch) threatens the 50 ms
    # p95 target, and no partially filled batch waits past 20 ms.
    python -m repro.serve --tables users sessions --stream \
        --adaptive --slo-ms 50 --flush-after-ms 20 --num-queries 96

    # The pre-fix accounting, for comparison: steer on dispatch latency
    # alone (queueing delay is then reported but unsteered).
    python -m repro.serve --tables users sessions --stream \
        --adaptive --slo-ms 50 --slo-scope dispatch --num-queries 96

    # Cross-process serving: shard the fleet's replicas across 4 OS worker
    # processes (same estimates as --workers 1, bit for bit), with one log
    # file per worker.  SIGTERM triggers a graceful drain: pending
    # micro-batches flush and their results are collected before exit.
    python -m repro.serve --tables users sessions --workers 4 \
        --replicas 4 --log-dir procfleet-logs --num-queries 96

    # Open-loop load generation: offer 200 Poisson arrivals/s for 2 seconds
    # regardless of completion rate, record the arrival trace for replay,
    # and shed (typed, counted) whatever overflows the admission bound.
    python -m repro.serve --tables users sessions --arrivals poisson \
        --offered-qps 200 --duration-s 2 --save-trace arrivals.json \
        --max-pending 32 --overflow shed

    # Replay the exact same arrival sequence (byte-stable trace files),
    # with a chaos scenario injected mid-run: one replica turns slow.
    python -m repro.serve --tables users sessions --arrivals trace \
        --trace-file arrivals.json --scenario slow_replica

    # The cross-process chaos drill: SIGKILL a worker mid-stream and verify
    # the failure surfaces as a typed WorkerError, not a hang.
    python -m repro.serve --tables users sessions --workers 2 \
        --scenario kill_worker --num-queries 48
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from collections import Counter

import numpy as np

from ..core import NaruConfig, NaruEstimator
from ..data import (
    JoinSpec,
    make_census,
    make_conviva_a,
    make_dmv,
    make_sessions,
    make_users,
)
from ..estimators import SamplingEstimator
from ..query import WorkloadGenerator, true_selectivities
from ..query.metrics import q_error
from ..query.shapes import query_shape
from .cache import canonical_query_key
from .engine import EstimationEngine, run_sequential
from .loadgen import (
    ARRIVAL_PROCESSES,
    SCENARIOS,
    ArrivalTrace,
    run_kill_worker_drill,
    run_open_loop,
)
from .procfleet import ProcessFleet
from .registry import ModelRegistry
from .router import FleetRouter, RoutingError, run_fleet_sequential
from .stream import StreamingRouter, stream_workload
from .workload import (
    generate_mixed_workload,
    generate_shape_workload,
    load_workload,
    save_workload,
)

_DATASETS = {
    "census": make_census,
    "dmv": make_dmv,
    "conviva_a": make_conviva_a,
    # The users dimension table is sized at rows/8 so the sessions ⨝ users
    # join keeps realistic fan-out; both sides use the same user population.
    "users": lambda rows: make_users(max(rows // 8, 16)),
    "sessions": lambda rows: make_sessions(rows, num_users=max(rows // 8, 16)),
}


def parse_join_spec(text: str, sample_rows: int, seed: int) -> JoinSpec:
    """Parse a ``LEFT:RIGHT:LEFT_KEY:RIGHT_KEY[:NAME]`` command-line join."""
    parts = text.split(":")
    if len(parts) not in (4, 5):
        raise SystemExit(
            f"join spec {text!r} must be LEFT:RIGHT:LEFT_KEY:RIGHT_KEY[:NAME]")
    name = parts[4] if len(parts) == 5 else None
    how = "sample" if sample_rows > 0 else "materialise"
    return JoinSpec(parts[0], parts[1], parts[2], parts[3], name=name,
                    how=how, sample_rows=max(sample_rows, 1), seed=seed)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.serve`` argument parser (single + multi mode)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a query workload through the batched estimation engine")
    parser.add_argument("--dataset", choices=sorted(_DATASETS), default="census",
                        help="synthetic table to build and serve against "
                             "(single-model mode)")
    parser.add_argument("--tables", nargs="+", metavar="NAME",
                        choices=sorted(_DATASETS),
                        help="serve several tables behind one registry/router "
                             "(multi-model mode; overrides --dataset)")
    parser.add_argument("--join", action="append", default=[], metavar="SPEC",
                        help="register a join relation, as "
                             "LEFT:RIGHT:LEFT_KEY:RIGHT_KEY[:NAME]; repeatable "
                             "(requires --tables)")
    parser.add_argument("--join-sample", type=int, default=0, metavar="ROWS",
                        help="sample this many join tuples through JoinSampler "
                             "instead of materialising the join (0 = materialise)")
    parser.add_argument("--rows", type=int, default=4000,
                        help="number of rows of each synthetic table (the "
                             "'users' dimension table is built with rows/8 "
                             "users so the sessions join keeps realistic "
                             "fan-out)")
    parser.add_argument("--workload", metavar="PATH",
                        help="replay a workload file instead of generating one")
    parser.add_argument("--save-workload", metavar="PATH",
                        help="write the served workload to a JSON file")
    parser.add_argument("--num-queries", type=int, default=64,
                        help="number of generated queries, split across relations "
                             "in multi-model mode (ignored with --workload)")
    parser.add_argument("--min-filters", type=int, default=2)
    parser.add_argument("--max-filters", type=int, default=5)
    parser.add_argument("--dnf-fraction", type=float, default=0.0, metavar="F",
                        help="rewrite this fraction of generated queries into "
                             "DNF disjunctions (multi-model mode; fractions "
                             "must lie in [0, 1] and sum to at most 1)")
    parser.add_argument("--like-fraction", type=float, default=0.0, metavar="F",
                        help="rewrite this fraction of generated queries into "
                             "LIKE 'x%%' string-prefix queries (multi-model "
                             "mode; relations without string columns keep "
                             "their conjunction)")
    parser.add_argument("--dnf-branches", type=int, nargs="+", default=[2],
                        metavar="K",
                        help="branch counts cycled across the generated "
                             "disjunctions (each at least 2); counts above "
                             "the model's max_dnf_branches only serve when a "
                             "--fallback estimator is registered")
    parser.add_argument("--fallback", choices=("sampling",), default=None,
                        help="register a per-relation fallback estimator that "
                             "serves the query shapes the primary Naru model "
                             "refuses, e.g. many-branch disjunctions "
                             "(multi-model mode)")
    parser.add_argument("--fallback-sample", type=int, default=1024,
                        metavar="ROWS",
                        help="rows retained by each sampling fallback "
                             "estimator (requires --fallback)")
    parser.add_argument("--epochs", type=int, default=5,
                        help="training epochs of each served Naru model")
    parser.add_argument("--samples", type=int, default=200,
                        help="progressive sample paths per query")
    parser.add_argument("--batch-size", type=int, default=16,
                        help="queries per (per-model) micro-batch")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the conditional-probability caches")
    parser.add_argument("--cache-entries", type=int, default=65536,
                        help="cache budget (shared across models, replicas and "
                             "the result cache in multi-model mode)")
    parser.add_argument("--replicas", type=int, default=1, metavar="N",
                        help="engine replicas per registered relation "
                             "(multi-model mode; estimates are identical for "
                             "any N)")
    parser.add_argument("--max-pending", type=int, default=0, metavar="N",
                        help="bound each replica group's pending queue at N "
                             "queries (0 = unbounded; multi-model mode)")
    parser.add_argument("--overflow", choices=("block", "shed"), default="block",
                        help="what a full replica group does with a new query: "
                             "dispatch early (block) or refuse it (shed)")
    parser.add_argument("--result-cache", action="store_true",
                        help="front the fleet with an exact-match result cache "
                             "on canonicalised queries (multi-model mode)")
    parser.add_argument("--stream", action="store_true",
                        help="submit queries one at a time through the asyncio "
                             "streaming client instead of as one batch call "
                             "(multi-model mode; estimates are identical)")
    parser.add_argument("--adaptive", action="store_true",
                        help="adapt each relation's micro-batch size to keep "
                             "latency under --slo-ms (multi-model "
                             "mode; requires --slo-ms)")
    parser.add_argument("--slo-ms", type=float, default=None, metavar="MS",
                        help="target p95 latency in milliseconds; must be "
                             "positive (scope set by --slo-scope)")
    parser.add_argument("--slo-scope", choices=("dispatch", "e2e"),
                        default="e2e",
                        help="what the SLO covers: end-to-end latency from "
                             "submission to result (e2e, default) or the "
                             "micro-batch dispatch alone (dispatch)")
    parser.add_argument("--flush-after-ms", type=float, default=None,
                        metavar="MS",
                        help="dispatch any partially filled micro-batch once "
                             "its oldest query has waited this long, bounding "
                             "queueing delay (multi-model mode; must be "
                             "positive)")
    parser.add_argument("--min-batch", type=int, default=1, metavar="N",
                        help="lower clamp of the adaptive micro-batch size "
                             "(multi-model mode; must be in [1, batch size])")
    parser.add_argument("--arrivals", choices=(*ARRIVAL_PROCESSES, "trace"),
                        default=None,
                        help="serve open-loop: offer queries at the arrival "
                             "process's timestamps regardless of completion "
                             "rate (multi-model mode; 'trace' replays "
                             "--trace-file)")
    parser.add_argument("--offered-qps", type=float, default=None,
                        metavar="QPS",
                        help="mean offered arrival rate of the generated "
                             "arrival process (must be positive; requires "
                             "--arrivals poisson|diurnal|flash)")
    parser.add_argument("--duration-s", type=float, default=None, metavar="S",
                        help="length of the generated arrival window in "
                             "seconds (default 2; requires --arrivals "
                             "poisson|diurnal|flash)")
    parser.add_argument("--trace-file", metavar="PATH",
                        help="arrival trace to replay (requires "
                             "--arrivals trace)")
    parser.add_argument("--save-trace", metavar="PATH",
                        help="record the generated arrival sequence to a "
                             "replayable JSON trace file (byte-stable for a "
                             "given seed)")
    parser.add_argument("--scenario", choices=(*sorted(SCENARIOS),
                                               "kill_worker"),
                        default=None,
                        help="chaos scenario to inject mid-run: slow_replica/"
                             "cache_wipe need an open-loop run (--arrivals), "
                             "kill_worker needs the process fleet (--workers)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="serve from N OS worker processes instead of "
                             "in-process engines (multi-model mode; estimates "
                             "are identical for any N; 0 = in-process)")
    parser.add_argument("--log-dir", metavar="PATH",
                        help="directory for per-worker log files "
                             "(worker-<id>.log; requires --workers)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--compare-sequential", action="store_true",
                        help="also run the unbatched baseline and print the speedup")
    parser.add_argument("--q-errors", action="store_true",
                        help="score estimates against exact selectivities")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON")
    return parser


def _serve_single(arguments) -> int:
    table = _DATASETS[arguments.dataset](arguments.rows)
    print(f"Relation: {table}")

    if arguments.workload:
        queries = load_workload(arguments.workload, expected_table=table.name)
        unknown = sorted({predicate.column for query in queries for predicate in query}
                         - set(table.column_names))
        if unknown:
            raise SystemExit(f"workload references columns missing from "
                             f"{table.name}: {', '.join(unknown)}")
        print(f"Replaying {len(queries)} queries from {arguments.workload}")
    else:
        generator = WorkloadGenerator(table, min_filters=arguments.min_filters,
                                      max_filters=arguments.max_filters,
                                      seed=arguments.seed)
        queries = generator.generate(arguments.num_queries)
        print(f"Generated {len(queries)} queries "
              f"({arguments.min_filters}-{arguments.max_filters} filters)")
    if arguments.save_workload:
        save_workload(arguments.save_workload, queries, table_name=table.name)
        print(f"Workload written to {arguments.save_workload}")

    config = NaruConfig(epochs=arguments.epochs, hidden_sizes=(64, 64),
                        batch_size=256, progressive_samples=arguments.samples,
                        seed=arguments.seed)
    naru = NaruEstimator(table, config)
    naru.fit()
    print(f"Trained Naru model ({arguments.epochs} epochs, "
          f"{naru.size_bytes() / 1e6:.2f} MB)")

    engine = EstimationEngine(naru, batch_size=arguments.batch_size,
                              num_samples=arguments.samples,
                              use_cache=not arguments.no_cache,
                              cache_entries=arguments.cache_entries,
                              seed=arguments.seed)
    report = engine.run(queries)
    stats = report.stats

    print(f"\nServed {stats.num_queries} queries in {stats.num_batches} "
          f"micro-batches of <= {stats.batch_size}")
    print(f"  elapsed          {stats.elapsed_s * 1000:.1f} ms")
    print(f"  throughput       {stats.queries_per_second:.1f} queries/s")
    if stats.cache is not None:
        print(f"  cache hit rate   {stats.cache['hit_rate']:.1%} "
              f"({stats.cache['hits']} hits / {stats.cache['misses']} misses)")
        print(f"  model rows       {stats.cache['rows_evaluated']} evaluated, "
              f"{stats.cache['rows_served_from_cache']} served from cache")
    if stats.rows_submitted:
        print(f"  prefix dedup     {stats.rows_submitted} rows -> "
              f"{stats.unique_rows} unique ({stats.dedup_ratio:.2f}x), "
              f"{stats.rows_evaluated} model-evaluated in "
              f"{stats.forward_calls} forward calls")

    document = {"engine": stats.as_dict(),
                "estimates": [result.selectivity for result in report.results]}

    if arguments.compare_sequential:
        baseline = run_sequential(naru, queries, num_samples=arguments.samples,
                                  seed=arguments.seed)
        speedup = (baseline.stats.elapsed_s / stats.elapsed_s
                   if stats.elapsed_s > 0 else float("inf"))
        drift = float(np.max(np.abs(report.selectivities - baseline.selectivities))) \
            if report.results else 0.0
        print(f"\nSequential baseline: {baseline.stats.queries_per_second:.1f} "
              f"queries/s -> batched speedup {speedup:.1f}x "
              f"(max estimate drift {drift:.2e})")
        document["sequential"] = baseline.stats.as_dict()
        document["speedup"] = speedup
        document["max_estimate_drift"] = drift

    if arguments.q_errors:
        truths = true_selectivities(table, [result.query for result in report.results])
        errors = [q_error(result.cardinality, truth * table.num_rows)
                  for result, truth in zip(report.results, truths)]
        if errors:
            print(f"\nq-error: median {np.median(errors):.2f}, "
                  f"p95 {np.quantile(errors, 0.95):.2f}, max {np.max(errors):.2f}")
        document["q_errors"] = errors

    if arguments.json:
        with open(arguments.json, "w") as handle:
            json.dump(document, handle, indent=1)
        print(f"\nReport written to {arguments.json}")
    return 0


def _serve_multi(arguments) -> int:
    registry = ModelRegistry(default_config=NaruConfig(
        epochs=arguments.epochs, hidden_sizes=(64, 64), batch_size=256,
        progressive_samples=arguments.samples, seed=arguments.seed))
    replica_note = f" x{arguments.replicas}" if arguments.replicas > 1 else ""
    for name in dict.fromkeys(arguments.tables):  # de-dup, keep order
        table = _DATASETS[name](arguments.rows)
        registry.register_table(table, replicas=arguments.replicas)
        print(f"Registered base relation: {table}{replica_note}")
    for text in arguments.join:
        spec = parse_join_spec(text, arguments.join_sample, arguments.seed)
        name = registry.register_join(spec, replicas=arguments.replicas)
        print(f"Registered join relation: {registry.relation(name)} "
              f"({spec.how} of {spec.left} ⨝ {spec.right}){replica_note}")
    if arguments.fallback:
        for name in registry.names:
            estimator = SamplingEstimator(
                registry.relation(name),
                sample_size=arguments.fallback_sample, seed=arguments.seed)
            registry.set_fallback(name, estimator)
            print(f"Registered fallback estimator for {name}: "
                  f"{estimator.name}")

    if arguments.workload:
        queries = load_workload(arguments.workload)
        unroutable = sorted({query.table for query in queries
                             if query.table is not None and query.table not in registry})
        if unroutable:
            raise SystemExit(
                f"workload {arguments.workload!r} targets relations not in "
                f"this registry: {', '.join(unroutable)} "
                f"(registered: {', '.join(registry.names)})")
        print(f"Replaying {len(queries)} queries from {arguments.workload}")
    elif arguments.dnf_fraction > 0 or arguments.like_fraction > 0:
        queries = generate_shape_workload(
            {name: registry.relation(name) for name in registry.names},
            arguments.num_queries, dnf_fraction=arguments.dnf_fraction,
            like_fraction=arguments.like_fraction,
            dnf_branches=tuple(arguments.dnf_branches),
            min_filters=arguments.min_filters,
            max_filters=arguments.max_filters, seed=arguments.seed)
        mix = Counter(query_shape(query).value for query in queries)
        parts = ", ".join(f"{count} {shape}"
                          for shape, count in sorted(mix.items()))
        print(f"Generated {len(queries)} queries across "
              f"{len(registry)} relations ({parts})")
    else:
        queries = generate_mixed_workload(
            {name: registry.relation(name) for name in registry.names},
            arguments.num_queries, min_filters=arguments.min_filters,
            max_filters=arguments.max_filters, seed=arguments.seed)
        print(f"Generated {len(queries)} queries across "
              f"{len(registry)} relations")
    if arguments.save_workload:
        save_workload(arguments.save_workload, queries)
        print(f"Workload written to {arguments.save_workload}")

    registry.fit_all()
    for name, entry in registry.size_report().items():
        print(f"Trained model for {name}: {entry['model_bytes'] / 1e6:.2f} MB "
              f"({entry['num_rows']} rows x {entry['num_columns']} cols"
              f"{', join' if entry['is_join'] else ''})")
    print(f"Fleet model storage: {registry.size_bytes() / 1e6:.2f} MB")

    if arguments.workers:
        return _serve_procfleet(arguments, registry, queries)

    router_kwargs = dict(batch_size=arguments.batch_size,
                         num_samples=arguments.samples,
                         use_cache=not arguments.no_cache,
                         cache_entries=arguments.cache_entries,
                         seed=arguments.seed,
                         max_pending=arguments.max_pending or None,
                         overflow=arguments.overflow,
                         result_cache=arguments.result_cache,
                         flush_after_ms=arguments.flush_after_ms)
    if arguments.adaptive:
        router = StreamingRouter(registry, slo_ms=arguments.slo_ms,
                                 adaptive=True, slo_scope=arguments.slo_scope,
                                 min_batch=arguments.min_batch,
                                 **router_kwargs)
        print(f"Adaptive batching on: p95 {arguments.slo_scope} SLO "
              f"{arguments.slo_ms:g} ms, micro-batches in "
              f"[{arguments.min_batch}, {arguments.batch_size}]")
    else:
        router = FleetRouter(registry, **router_kwargs)
    if arguments.flush_after_ms is not None:
        print(f"Flush timeout on: partially filled micro-batches dispatch "
              f"after {arguments.flush_after_ms:g} ms")
    if arguments.result_cache:
        try:
            keys = [canonical_query_key(query, route=router.resolve_route(query))
                    for query in queries]
        except RoutingError:
            keys = []  # the run below reports the unroutable query properly
        repeats = len(keys) - len(set(keys))
        if repeats:
            print(f"note: {repeats} repeated queries will be answered from "
                  "the result cache (each repeat serves its first dispatched "
                  "occurrence's estimate instead of re-sampling)")
    if arguments.arrivals:
        return _serve_open_loop(arguments, registry, router, queries)
    try:
        if arguments.stream:
            report = stream_workload(router, queries)
        else:
            report = router.run(queries)
    except RoutingError as error:
        raise SystemExit(f"unroutable query: {error}") from None
    stats = report.stats

    mode = "streamed" if arguments.stream else "Served"
    print(f"\n{mode.capitalize()} {stats.num_queries} queries across "
          f"{stats.num_models} "
          f"models ({stats.queries_per_second:.1f} queries/s overall, "
          f"cache budget {stats.cache_entries_per_model} entries/cache)")
    if stats.latency_ms is not None:
        print(f"  dispatch latency p50/p95/p99: "
              f"{stats.latency_ms['p50']:.1f} / {stats.latency_ms['p95']:.1f} "
              f"/ {stats.latency_ms['p99']:.1f} ms")
    if stats.queue_wait_ms is not None:
        print(f"  queue wait p50/p95/p99:       "
              f"{stats.queue_wait_ms['p50']:.1f} / "
              f"{stats.queue_wait_ms['p95']:.1f} / "
              f"{stats.queue_wait_ms['p99']:.1f} ms")
    if stats.e2e_ms is not None:
        print(f"  end-to-end p50/p95/p99:       "
              f"{stats.e2e_ms['p50']:.1f} / {stats.e2e_ms['p95']:.1f} / "
              f"{stats.e2e_ms['p99']:.1f} ms")
    if stats.timeout_flushes:
        print(f"  {stats.timeout_flushes} micro-batches dispatched by the "
              f"flush timeout")
    if stats.rows_submitted:
        print(f"  prefix dedup: {stats.rows_submitted} rows -> "
              f"{stats.unique_rows} unique ({stats.dedup_ratio:.2f}x), "
              f"{stats.rows_evaluated} model-evaluated")
    if stats.shed:
        print(f"  shed {stats.shed} queries at the admission limit "
              f"(max_pending={arguments.max_pending}, policy=shed)")
    if stats.result_cache is not None:
        print(f"  result cache: {stats.result_cache['hits']} hits / "
              f"{stats.result_cache['misses']} misses "
              f"({stats.result_cache['hit_rate']:.1%} hit rate)")
    if stats.epochs:
        marks = ", ".join(
            f"{route}@{entry['data_epoch']}"
            + (f" (model {entry['staleness']} behind)"
               if entry["staleness"] else "")
            for route, entry in stats.epochs.items())
        print(f"  data epochs: {marks}; max staleness {stats.max_staleness}")
    for route, route_stats in stats.routes.items():
        cache = route_stats["cache"]
        hit_rate = f", cache hit rate {cache['hit_rate']:.1%}" if cache else ""
        replicas = (f" on {route_stats['num_replicas']} replicas"
                    if route_stats["num_replicas"] > 1 else "")
        print(f"  {route:<24} {route_stats['num_queries']:>4} queries in "
              f"{route_stats['num_batches']} batches{replicas}, "
              f"{route_stats['queries_per_second']:8.1f} queries/s{hit_rate}")
        if arguments.adaptive and route_stats["batch_trace"]:
            trace = route_stats["batch_trace"]
            print(f"  {'':<24} dispatch p95 "
                  f"{route_stats['latency_ms']['p95']:.1f} ms, e2e p95 "
                  f"{route_stats['e2e_ms']['p95']:.1f} ms, "
                  f"batch size {trace[0]} -> {trace[-1]} "
                  f"(min {min(trace)}, {len(trace) - 1} dispatches)")
    if stats.estimators is not None and len(stats.estimators) > 1:
        print("  per-estimator breakdown:")
        for name, entry in stats.estimators.items():
            e2e = (f", e2e p95 {entry['e2e_ms']['p95']:.1f} ms"
                   if entry["e2e_ms"] else "")
            units = ", ".join(entry["units"]) if entry["units"] else "cache"
            print(f"    {name:<22} {entry['num_queries']:>4} queries via "
                  f"{units}{e2e}")

    document = {"fleet": stats.as_dict(),
                "estimates": [result.selectivity for result in report.results],
                "routes": [result.route for result in report.results]}

    if arguments.compare_sequential:
        if stats.shed:
            print("\nSkipping --compare-sequential: the shed policy dropped "
                  f"{stats.shed} queries, so the workloads no longer match")
        else:
            baseline = run_fleet_sequential(registry, queries,
                                            num_samples=arguments.samples,
                                            seed=arguments.seed)
            speedup = (baseline.stats.elapsed_s / stats.elapsed_s
                       if stats.elapsed_s > 0 else float("inf"))
            # Cache-served repeats intentionally reuse their first
            # occurrence's estimate while the baseline re-samples every
            # repeat under its own stream — exclude them so the reported
            # drift measures batching/routing determinism, not cache
            # semantics.
            compared = [(result.selectivity,
                         baseline.results[result.index].selectivity)
                        for result in report.results
                        if not result.from_result_cache]
            drift = max((abs(routed - sequential)
                         for routed, sequential in compared), default=0.0)
            excluded = len(report.results) - len(compared)
            note = (f"; {excluded} cache-served repeats excluded"
                    if excluded else "")
            print(f"\nSequential fleet baseline: "
                  f"{baseline.stats.queries_per_second:.1f} queries/s -> "
                  f"routed speedup {speedup:.1f}x "
                  f"(max estimate drift {drift:.2e}{note})")
            document["sequential"] = baseline.stats.as_dict()
            document["speedup"] = speedup
            document["max_estimate_drift"] = drift
            document["drift_excluded_cache_hits"] = excluded

    if arguments.q_errors:
        errors = []
        truths: dict[int, float] = {}
        for result in report.results:
            relation = registry.relation(result.route)
            truth = true_selectivities(relation, [result.query])[0]
            truths[result.index] = float(truth * relation.num_rows)
            errors.append(q_error(result.cardinality, truths[result.index]))
        if errors:
            print(f"\nq-error: median {np.median(errors):.2f}, "
                  f"p95 {np.quantile(errors, 0.95):.2f}, max {np.max(errors):.2f}")
        document["q_errors"] = errors
        if any(result.estimator for result in report.results):
            by_estimator = report.accuracy_by_estimator(truths)
            for name, entry in by_estimator.items():
                print(f"  {name:<22} {entry['num_queries']:>4} queries, "
                      f"median {entry['median_qerror']:.2f}, "
                      f"p95 {entry['p95_qerror']:.2f}, "
                      f"max {entry['max_qerror']:.2f}")
            document["q_errors_by_estimator"] = by_estimator

    if arguments.json:
        with open(arguments.json, "w") as handle:
            json.dump(document, handle, indent=1)
        print(f"\nReport written to {arguments.json}")
    return 0


def _serve_open_loop(arguments, registry, router, queries) -> int:
    """Offer a prepared workload open-loop, optionally under a chaos scenario."""
    if arguments.arrivals == "trace":
        try:
            trace = ArrivalTrace.load(arguments.trace_file)
        except (OSError, ValueError) as error:
            raise SystemExit(str(error)) from None
        print(f"Replaying {len(trace)} arrivals from {arguments.trace_file} "
              f"({trace.process}, recorded at {trace.rate_qps:g} qps over "
              f"{trace.duration_s:g} s, seed {trace.seed})")
    else:
        duration_s = arguments.duration_s if arguments.duration_s is not None \
            else 2.0
        trace = ArrivalTrace.record(arguments.arrivals,
                                    rate_qps=arguments.offered_qps,
                                    duration_s=duration_s,
                                    seed=arguments.seed)
        print(f"Generated {len(trace)} {arguments.arrivals} arrivals "
              f"({arguments.offered_qps:g} qps offered over {duration_s:g} s, "
              f"realised {trace.offered_qps:.1f} qps)")
        if arguments.save_trace:
            trace.save(arguments.save_trace)
            print(f"Arrival trace written to {arguments.save_trace}")

    scenario = None
    if arguments.scenario:
        try:
            route = router.resolve_route(queries[0])
        except RoutingError as error:
            raise SystemExit(f"unroutable query: {error}") from None
        scenario = SCENARIOS[arguments.scenario](route)
        print(f"Chaos scenario armed: {arguments.scenario}")

    try:
        outcome = run_open_loop(router, queries, trace, scenario=scenario)
    except RoutingError as error:
        raise SystemExit(f"unroutable query: {error}") from None
    stats = outcome.report.stats

    print(f"\nOffered {outcome.submitted + outcome.shed} arrivals at "
          f"{outcome.offered_qps:.1f} qps: {outcome.completed} completed "
          f"({outcome.achieved_qps:.1f} qps achieved), {outcome.shed} shed "
          f"at the admission limit")
    print(f"  peak pending     {outcome.peak_pending}"
          + (f" (bound {arguments.max_pending})"
             if arguments.max_pending else ""))
    if stats.queue_wait_ms is not None:
        print(f"  queue wait p50/p95/p99:       "
              f"{stats.queue_wait_ms['p50']:.1f} / "
              f"{stats.queue_wait_ms['p95']:.1f} / "
              f"{stats.queue_wait_ms['p99']:.1f} ms")
    if stats.e2e_ms is not None:
        print(f"  end-to-end p50/p95/p99:       "
              f"{stats.e2e_ms['p50']:.1f} / {stats.e2e_ms['p95']:.1f} / "
              f"{stats.e2e_ms['p99']:.1f} ms")
    for event in outcome.events:
        print(f"  chaos: {event}")

    document = {"open_loop": outcome.as_dict(), "fleet": stats.as_dict(),
                "estimates": [result.selectivity
                              for result in outcome.report.results]}

    if arguments.compare_sequential:
        expanded = [queries[i % len(queries)]
                    for i in range(len(trace))]
        baseline = run_fleet_sequential(registry, expanded,
                                        num_samples=arguments.samples,
                                        seed=arguments.seed)
        compared = [(result.selectivity,
                     baseline.results[result.index].selectivity)
                    for result in outcome.report.results
                    if not result.from_result_cache]
        drift = max((abs(open_loop - sequential)
                     for open_loop, sequential in compared), default=0.0)
        print(f"\nSequential fleet baseline on the expanded arrival "
              f"workload: max estimate drift {drift:.2e} over "
              f"{len(compared)} completed queries — open-loop pacing, "
              "shedding and chaos never move a completed number")
        document["max_estimate_drift"] = drift

    if arguments.json:
        with open(arguments.json, "w") as handle:
            json.dump(document, handle, indent=1)
        print(f"\nReport written to {arguments.json}")
    return 0


def _serve_procfleet(arguments, registry, queries) -> int:
    """Serve a prepared mixed workload from a cross-process fleet."""
    fleet = ProcessFleet(registry, workers=arguments.workers,
                         batch_size=arguments.batch_size,
                         num_samples=arguments.samples,
                         use_cache=not arguments.no_cache,
                         cache_entries=arguments.cache_entries,
                         seed=arguments.seed,
                         flush_after_ms=arguments.flush_after_ms,
                         log_dir=arguments.log_dir)
    for info in fleet.workers:
        hosted = ", ".join(f"{route}/{replica}" for route, replica in info.keys)
        log_note = f" -> {info.log_path}" if info.log_path else ""
        print(f"Worker {info.worker_id} (pid {info.pid}): {hosted}{log_note}")

    if arguments.scenario == "kill_worker":
        try:
            drill = run_kill_worker_drill(fleet, queries)
        finally:
            fleet.close()
        print(f"\nkill_worker drill: worker {drill['killed_worker']} "
              f"(pid {drill['killed_pid']}) SIGKILLed after "
              f"{drill['kill_after']} of {drill['submitted']} submissions")
        if drill["typed_error"]:
            print(f"  surfaced as {drill['error_type']} (worker "
                  f"{drill['error_worker_id']}, exit code "
                  f"{drill['error_exit_code']}) in {drill['wall_s']:.2f} s — "
                  "degraded, not collapsed")
        else:
            print("  WARNING: no typed WorkerError surfaced — the batches "
                  "may all have missed the dead worker; rerun with more "
                  "queries")
        if arguments.json:
            with open(arguments.json, "w") as handle:
                json.dump({"kill_worker_drill": drill}, handle, indent=1)
            print(f"\nReport written to {arguments.json}")
        return 0 if drill["typed_error"] else 1

    def _drain_on_sigterm(signum, frame):
        # SystemExit unwinds through the ``with fleet:`` block below, whose
        # __exit__ is the graceful drain: pending micro-batches flush and
        # their results are collected before the workers stop.
        raise SystemExit(128 + signum)

    previous = signal.signal(signal.SIGTERM, _drain_on_sigterm)
    try:
        with fleet:
            try:
                report = fleet.run(queries)
            except RoutingError as error:
                raise SystemExit(f"unroutable query: {error}") from None
    finally:
        signal.signal(signal.SIGTERM, previous)
    stats = report.stats

    print(f"\nServed {stats.num_queries} queries across {stats.num_models} "
          f"models on {arguments.workers} worker processes "
          f"({stats.queries_per_second:.1f} queries/s of summed worker "
          f"dispatch time)")
    if stats.latency_ms is not None:
        print(f"  dispatch latency p50/p95/p99: "
              f"{stats.latency_ms['p50']:.1f} / {stats.latency_ms['p95']:.1f} "
              f"/ {stats.latency_ms['p99']:.1f} ms")
    if stats.e2e_ms is not None:
        print(f"  end-to-end p50/p95/p99:       "
              f"{stats.e2e_ms['p50']:.1f} / {stats.e2e_ms['p95']:.1f} / "
              f"{stats.e2e_ms['p99']:.1f} ms")
    if stats.timeout_flushes:
        print(f"  {stats.timeout_flushes} micro-batches dispatched by the "
              f"flush timeout")
    if stats.rows_submitted:
        print(f"  prefix dedup: {stats.rows_submitted} rows -> "
              f"{stats.unique_rows} unique ({stats.dedup_ratio:.2f}x), "
              f"{stats.rows_evaluated} model-evaluated")
    if stats.epochs:
        marks = ", ".join(
            f"{route}@{entry['data_epoch']}"
            + (f" (model {entry['staleness']} behind)"
               if entry["staleness"] else "")
            for route, entry in stats.epochs.items())
        print(f"  data epochs: {marks}; max staleness {stats.max_staleness}")
    for route, route_stats in stats.routes.items():
        print(f"  {route:<24} {route_stats['num_queries']:>4} queries in "
              f"{route_stats['num_batches']} batches on "
              f"{route_stats['num_replicas']} replicas, "
              f"{route_stats['queries_per_second']:8.1f} queries/s")
    for worker_id, entry in (stats.workers or {}).items():
        print(f"  worker {worker_id:<17} {entry['num_queries']:>4} queries in "
              f"{entry['num_batches']} batches, "
              f"busy CPU {entry['busy_cpu_ms']:.0f} ms "
              f"({', '.join(entry['engines'])})")

    document = {"fleet": stats.as_dict(),
                "estimates": [result.selectivity for result in report.results],
                "routes": [result.route for result in report.results]}

    if arguments.compare_sequential:
        baseline = run_fleet_sequential(registry, queries,
                                        num_samples=arguments.samples,
                                        seed=arguments.seed)
        speedup = (baseline.stats.elapsed_s / stats.elapsed_s
                   if stats.elapsed_s > 0 else float("inf"))
        drift = max((abs(result.selectivity
                         - baseline.results[result.index].selectivity)
                     for result in report.results), default=0.0)
        print(f"\nSequential fleet baseline: "
              f"{baseline.stats.queries_per_second:.1f} queries/s -> "
              f"routed speedup {speedup:.1f}x (max estimate drift {drift:.2e})")
        document["sequential"] = baseline.stats.as_dict()
        document["speedup"] = speedup
        document["max_estimate_drift"] = drift

    if arguments.q_errors:
        errors = []
        for result in report.results:
            relation = registry.relation(result.route)
            truth = true_selectivities(relation, [result.query])[0]
            errors.append(q_error(result.cardinality, truth * relation.num_rows))
        if errors:
            print(f"\nq-error: median {np.median(errors):.2f}, "
                  f"p95 {np.quantile(errors, 0.95):.2f}, max {np.max(errors):.2f}")
        document["q_errors"] = errors

    if arguments.json:
        with open(arguments.json, "w") as handle:
            json.dump(document, handle, indent=1)
        print(f"\nReport written to {arguments.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; validates flag combinations and runs the right mode."""
    arguments = build_parser().parse_args(argv)
    if arguments.join and not arguments.tables:
        raise SystemExit("--join requires --tables (multi-model mode)")
    if not arguments.tables:
        fleet_flags = [flag for flag, used in (
            ("--replicas", arguments.replicas != 1),
            ("--max-pending", arguments.max_pending != 0),
            ("--overflow", arguments.overflow != "block"),
            ("--result-cache", arguments.result_cache),
            ("--stream", arguments.stream),
            ("--adaptive", arguments.adaptive),
            ("--slo-ms", arguments.slo_ms is not None),
            ("--slo-scope", arguments.slo_scope != "e2e"),
            ("--flush-after-ms", arguments.flush_after_ms is not None),
            ("--min-batch", arguments.min_batch != 1),
            ("--workers", arguments.workers != 0),
            ("--log-dir", arguments.log_dir is not None),
            ("--arrivals", arguments.arrivals is not None),
            ("--offered-qps", arguments.offered_qps is not None),
            ("--duration-s", arguments.duration_s is not None),
            ("--trace-file", arguments.trace_file is not None),
            ("--save-trace", arguments.save_trace is not None),
            ("--scenario", arguments.scenario is not None),
            ("--fallback", arguments.fallback is not None),
            ("--fallback-sample", arguments.fallback_sample != 1024),
            ("--dnf-fraction", arguments.dnf_fraction != 0),
            ("--like-fraction", arguments.like_fraction != 0),
            ("--dnf-branches", arguments.dnf_branches != [2]),
        ) if used]
        if fleet_flags:
            raise SystemExit(f"{', '.join(fleet_flags)} require(s) --tables "
                             "(multi-model mode)")
    if arguments.workers < 0:
        raise SystemExit("--workers must be non-negative (0 = in-process)")
    if arguments.log_dir is not None and not arguments.workers:
        raise SystemExit("--log-dir requires --workers: only worker "
                         "processes write per-worker log files")
    if arguments.workers:
        unsupported = [flag for flag, used in (
            ("--stream", arguments.stream),
            ("--adaptive", arguments.adaptive),
            ("--result-cache", arguments.result_cache),
            ("--max-pending", arguments.max_pending != 0),
            ("--overflow", arguments.overflow != "block"),
            ("--arrivals", arguments.arrivals is not None),
            ("--fallback", arguments.fallback is not None),
            ("--dnf-fraction", arguments.dnf_fraction != 0),
            ("--like-fraction", arguments.like_fraction != 0),
        ) if used]
        if unsupported:
            raise SystemExit(
                f"{', '.join(unsupported)} and --workers are mutually "
                "exclusive: the process fleet serves fixed micro-batches "
                "without admission control, result caching, streaming, "
                "open-loop pacing or ensemble routing")
    if arguments.replicas < 1:
        raise SystemExit("--replicas must be at least 1")
    if arguments.max_pending < 0:
        raise SystemExit("--max-pending must be non-negative (0 = unbounded)")
    if arguments.overflow == "shed" and arguments.max_pending == 0:
        raise SystemExit("--overflow shed requires --max-pending: with an "
                         "unbounded queue nothing can ever be shed")
    if arguments.slo_ms is not None and arguments.slo_ms <= 0:
        raise SystemExit(f"--slo-ms must be positive, got {arguments.slo_ms:g} "
                         "(omit the flag to serve without an SLO)")
    if arguments.flush_after_ms is not None and arguments.flush_after_ms <= 0:
        raise SystemExit(f"--flush-after-ms must be positive, got "
                         f"{arguments.flush_after_ms:g} (omit the flag to let "
                         "partial batches wait indefinitely)")
    for flag, fraction in (("--dnf-fraction", arguments.dnf_fraction),
                           ("--like-fraction", arguments.like_fraction)):
        if not 0.0 <= fraction <= 1.0:
            raise SystemExit(f"{flag} must lie in [0, 1], got {fraction:g}")
    if arguments.dnf_fraction + arguments.like_fraction > 1.0:
        raise SystemExit("--dnf-fraction and --like-fraction must sum to at "
                         "most 1 (the rest of the workload stays conjunctive)")
    if any(branches < 2 for branches in arguments.dnf_branches):
        raise SystemExit("--dnf-branches values must be at least 2 (a "
                         "single-branch disjunction is just a conjunction)")
    shaped = arguments.dnf_fraction > 0 or arguments.like_fraction > 0
    if arguments.dnf_branches != [2] and arguments.dnf_fraction == 0:
        raise SystemExit("--dnf-branches does nothing without --dnf-fraction: "
                         "no disjunctions would be generated")
    if shaped and arguments.workload:
        raise SystemExit("--dnf-fraction/--like-fraction shape *generated* "
                         "workloads and are incompatible with --workload "
                         "(the file already fixes each query's shape)")
    if arguments.fallback_sample < 1:
        raise SystemExit("--fallback-sample must be at least 1")
    if arguments.fallback_sample != 1024 and arguments.fallback is None:
        raise SystemExit("--fallback-sample does nothing without --fallback: "
                         "no fallback estimator would be built")
    if arguments.min_batch < 1:
        raise SystemExit("--min-batch must be at least 1")
    if arguments.min_batch > arguments.batch_size:
        raise SystemExit(f"--min-batch ({arguments.min_batch}) must not "
                         f"exceed --batch-size ({arguments.batch_size})")
    if arguments.adaptive and arguments.slo_ms is None:
        raise SystemExit("--adaptive requires --slo-ms: the controller needs "
                         "a latency target to steer the batch size towards")
    if arguments.slo_ms is not None and not arguments.adaptive:
        raise SystemExit("--slo-ms does nothing without --adaptive: no "
                         "controller would enforce the target (add --adaptive)")
    if arguments.slo_scope != "e2e" and not arguments.adaptive:
        raise SystemExit("--slo-scope does nothing without --adaptive: no "
                         "controller would use the scope (add --adaptive)")
    if arguments.min_batch != 1 and not arguments.adaptive:
        raise SystemExit("--min-batch does nothing without --adaptive: only "
                         "the adaptive controller moves the batch size "
                         "(add --adaptive)")
    if arguments.arrivals is not None and arguments.stream:
        raise SystemExit("--arrivals and --stream are mutually exclusive: "
                         "open-loop pacing already streams through the "
                         "asyncio client")
    if arguments.offered_qps is not None and arguments.offered_qps <= 0:
        raise SystemExit(f"--offered-qps must be positive, got "
                         f"{arguments.offered_qps:g}")
    if arguments.duration_s is not None and arguments.duration_s <= 0:
        raise SystemExit(f"--duration-s must be positive, got "
                         f"{arguments.duration_s:g}")
    generated = arguments.arrivals is not None and arguments.arrivals != "trace"
    if generated and arguments.offered_qps is None:
        raise SystemExit(f"--arrivals {arguments.arrivals} requires "
                         "--offered-qps: an open-loop run needs its offered "
                         "rate")
    if arguments.arrivals == "trace" and arguments.trace_file is None:
        raise SystemExit("--arrivals trace requires --trace-file: nothing to "
                         "replay otherwise")
    if arguments.arrivals == "trace":
        fixed = [flag for flag, used in (
            ("--offered-qps", arguments.offered_qps is not None),
            ("--duration-s", arguments.duration_s is not None),
            ("--save-trace", arguments.save_trace is not None),
        ) if used]
        if fixed:
            raise SystemExit(f"{', '.join(fixed)} and --arrivals trace are "
                             "mutually exclusive: a replayed trace fixes the "
                             "arrival sequence")
    for flag, used in (("--offered-qps", arguments.offered_qps is not None),
                       ("--duration-s", arguments.duration_s is not None),
                       ("--save-trace", arguments.save_trace is not None)):
        if used and not generated:
            raise SystemExit(f"{flag} requires --arrivals "
                             "poisson|diurnal|flash (a generated arrival "
                             "process)")
    if arguments.trace_file is not None and arguments.arrivals != "trace":
        raise SystemExit("--trace-file requires --arrivals trace")
    if arguments.scenario == "kill_worker":
        if not arguments.workers:
            raise SystemExit("--scenario kill_worker requires --workers: the "
                             "drill kills an OS worker process")
    elif arguments.scenario is not None and arguments.arrivals is None:
        raise SystemExit(f"--scenario {arguments.scenario} requires "
                         "--arrivals: chaos is injected into an open-loop "
                         "run")
    if arguments.tables:
        return _serve_multi(arguments)
    return _serve_single(arguments)


if __name__ == "__main__":
    sys.exit(main())
