"""Command line for the serving layer: replay a workload through the engine.

Usage::

    # Generate a 64-query workload over the census table and serve it batched.
    python -m repro.serve --dataset census --num-queries 64

    # Persist the generated workload, then replay it later.
    python -m repro.serve --save-workload workload.json --num-queries 64
    python -m repro.serve --workload workload.json --compare-sequential

    # Write the machine-readable report for dashboards / CI artifacts.
    python -m repro.serve --num-queries 32 --json report.json
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from ..core import NaruConfig, NaruEstimator
from ..data import make_census, make_conviva_a, make_dmv
from ..query import WorkloadGenerator, true_selectivities
from ..query.metrics import q_error
from .engine import EstimationEngine, run_sequential
from .workload import load_workload, save_workload

_DATASETS = {
    "census": make_census,
    "dmv": make_dmv,
    "conviva_a": make_conviva_a,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a query workload through the batched estimation engine")
    parser.add_argument("--dataset", choices=sorted(_DATASETS), default="census",
                        help="synthetic table to build and serve against")
    parser.add_argument("--rows", type=int, default=4000,
                        help="number of rows of the synthetic table")
    parser.add_argument("--workload", metavar="PATH",
                        help="replay a workload file instead of generating one")
    parser.add_argument("--save-workload", metavar="PATH",
                        help="write the served workload to a JSON file")
    parser.add_argument("--num-queries", type=int, default=64,
                        help="number of generated queries (ignored with --workload)")
    parser.add_argument("--min-filters", type=int, default=2)
    parser.add_argument("--max-filters", type=int, default=5)
    parser.add_argument("--epochs", type=int, default=5,
                        help="training epochs of the served Naru model")
    parser.add_argument("--samples", type=int, default=200,
                        help="progressive sample paths per query")
    parser.add_argument("--batch-size", type=int, default=16,
                        help="queries per micro-batch")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the conditional-probability cache")
    parser.add_argument("--cache-entries", type=int, default=65536)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--compare-sequential", action="store_true",
                        help="also run the unbatched baseline and print the speedup")
    parser.add_argument("--q-errors", action="store_true",
                        help="score estimates against exact selectivities")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON")
    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)

    table = _DATASETS[arguments.dataset](arguments.rows)
    print(f"Relation: {table}")

    if arguments.workload:
        queries = load_workload(arguments.workload, expected_table=table.name)
        unknown = sorted({predicate.column for query in queries for predicate in query}
                         - set(table.column_names))
        if unknown:
            raise SystemExit(f"workload references columns missing from "
                             f"{table.name}: {', '.join(unknown)}")
        print(f"Replaying {len(queries)} queries from {arguments.workload}")
    else:
        generator = WorkloadGenerator(table, min_filters=arguments.min_filters,
                                      max_filters=arguments.max_filters,
                                      seed=arguments.seed)
        queries = generator.generate(arguments.num_queries)
        print(f"Generated {len(queries)} queries "
              f"({arguments.min_filters}-{arguments.max_filters} filters)")
    if arguments.save_workload:
        save_workload(arguments.save_workload, queries, table_name=table.name)
        print(f"Workload written to {arguments.save_workload}")

    config = NaruConfig(epochs=arguments.epochs, hidden_sizes=(64, 64),
                        batch_size=256, progressive_samples=arguments.samples,
                        seed=arguments.seed)
    naru = NaruEstimator(table, config)
    naru.fit()
    print(f"Trained Naru model ({arguments.epochs} epochs, "
          f"{naru.size_bytes() / 1e6:.2f} MB)")

    engine = EstimationEngine(naru, batch_size=arguments.batch_size,
                              num_samples=arguments.samples,
                              use_cache=not arguments.no_cache,
                              cache_entries=arguments.cache_entries,
                              seed=arguments.seed)
    report = engine.run(queries)
    stats = report.stats

    print(f"\nServed {stats.num_queries} queries in {stats.num_batches} "
          f"micro-batches of <= {stats.batch_size}")
    print(f"  elapsed          {stats.elapsed_s * 1000:.1f} ms")
    print(f"  throughput       {stats.queries_per_second:.1f} queries/s")
    if stats.cache is not None:
        print(f"  cache hit rate   {stats.cache['hit_rate']:.1%} "
              f"({stats.cache['hits']} hits / {stats.cache['misses']} misses)")
        print(f"  model rows       {stats.cache['rows_evaluated']} evaluated, "
              f"{stats.cache['rows_served_from_cache']} served from cache")

    document = {"engine": stats.as_dict(),
                "estimates": [result.selectivity for result in report.results]}

    if arguments.compare_sequential:
        baseline = run_sequential(naru, queries, num_samples=arguments.samples,
                                  seed=arguments.seed)
        speedup = (baseline.stats.elapsed_s / stats.elapsed_s
                   if stats.elapsed_s > 0 else float("inf"))
        drift = float(np.max(np.abs(report.selectivities - baseline.selectivities))) \
            if report.results else 0.0
        print(f"\nSequential baseline: {baseline.stats.queries_per_second:.1f} "
              f"queries/s -> batched speedup {speedup:.1f}x "
              f"(max estimate drift {drift:.2e})")
        document["sequential"] = baseline.stats.as_dict()
        document["speedup"] = speedup
        document["max_estimate_drift"] = drift

    if arguments.q_errors:
        truths = true_selectivities(table, [result.query for result in report.results])
        errors = [q_error(result.cardinality, truth * table.num_rows)
                  for result, truth in zip(report.results, truths)]
        if errors:
            print(f"\nq-error: median {np.median(errors):.2f}, "
                  f"p95 {np.quantile(errors, 0.95):.2f}, max {np.max(errors):.2f}")
        document["q_errors"] = errors

    if arguments.json:
        with open(arguments.json, "w") as handle:
            json.dump(document, handle, indent=1)
        print(f"\nReport written to {arguments.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
