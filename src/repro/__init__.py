"""repro — reproduction of "Deep Unsupervised Cardinality Estimation" (Naru).

The package is organised into five sub-systems:

* :mod:`repro.nn`          — NumPy neural-network substrate (autograd, MADE, Adam),
* :mod:`repro.data`        — relational tables, synthetic datasets, joins,
* :mod:`repro.query`       — predicates, workload generation, exact execution, q-error,
* :mod:`repro.core`        — the Naru estimator: likelihood models + progressive sampling,
* :mod:`repro.estimators`  — classical and learned baselines,
* :mod:`repro.bench`       — the experiment harness reproducing every table and figure.

Quickstart::

    from repro.data import make_dmv
    from repro.core import NaruEstimator, NaruConfig
    from repro.query import WorkloadGenerator, q_error

    table = make_dmv(num_rows=20_000)
    naru = NaruEstimator(table, NaruConfig(epochs=3))
    naru.fit()
    query = WorkloadGenerator(table, seed=1).generate_query()
    print(naru.estimate_cardinality(query))
"""

from .core import NaruConfig, NaruEstimator
from .data import Table, make_census, make_conviva_a, make_conviva_b, make_dmv
from .query import Operator, Predicate, Query, WorkloadGenerator, q_error

__version__ = "1.0.0"

__all__ = [
    "NaruEstimator",
    "NaruConfig",
    "Table",
    "make_dmv",
    "make_conviva_a",
    "make_conviva_b",
    "make_census",
    "Query",
    "Predicate",
    "Operator",
    "WorkloadGenerator",
    "q_error",
    "__version__",
]
