"""Querying the density model: enumeration, uniform sampling and progressive
sampling (§5 of the paper, Algorithm 1).

All three integration schemes operate on the *valid-code masks* produced by
:meth:`repro.query.predicates.Query.column_masks`: one boolean mask per column
(or ``None`` for a wildcard / unfiltered column).  They only require a model
exposing the :class:`repro.core.made.AutoregressiveModel` protocol —
``conditional_probs``, ``log_prob``, ``domain_sizes`` and ``order`` — so the
same code runs against neural models and the exact oracle model.

Batched estimation
------------------
:meth:`ProgressiveSampler.estimate_selectivity_batch` packs many queries into
the *same* model forward passes: the sample paths of every in-flight query are
stacked into one code matrix, so a micro-batch of ``Q`` queries still costs at
most ``num_columns`` ``conditional_probs`` calls per round instead of
``Q × num_columns``.  Two §5.2-style optimisations ride along:

* **wildcard skipping** — columns that appear after the last constrained
  column (in the model's autoregressive order) of *every* in-flight query are
  never sampled: their truncated conditional is the full conditional, whose
  mass marginalises to one, and no later sampled column conditions on them;
* **dead-row skipping** — sample paths whose weight has hit zero (the query
  region has zero mass under their prefix) are dropped from subsequent model
  evaluations instead of being carried along on a uniform-fallback
  distribution.

Both optimisations leave the returned estimates unchanged (up to float
round-off of the wildcard-column mass): the single-query
:meth:`ProgressiveSampler.estimate_selectivity` is simply a batch of one.
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = ["ProgressiveSampler", "UniformRegionSampler", "enumerate_region"]

#: Row-chunk size of the per-column truncate/renormalise/sample arithmetic in
#: batched runs; large micro-batches stack enough sample paths that one-shot
#: vectorisation would fall out of the CPU caches.
_ROW_CHUNK = 8192


def _sample_rows_from_probs(probs: np.ndarray, rng_draws: np.ndarray) -> np.ndarray:
    """Draw one categorical sample per row given uniform draws in ``[0, 1)``."""
    cumulative = np.cumsum(probs, axis=1)
    # Guard against rounding: force the last cumulative value to 1.
    cumulative[:, -1] = 1.0
    return np.argmax(cumulative >= rng_draws, axis=1)


class ProgressiveSampler:
    """Unbiased Monte-Carlo estimator of range-query density (Algorithm 1).

    For each sample path the sampler walks the columns in the model's
    autoregressive order; at column ``i`` it asks the model for
    ``P(X_i | sampled prefix)``, zeroes the probabilities outside the query
    range ``R_i``, records the in-range mass, renormalises and samples the next
    prefix value from the *truncated* conditional.  The product of the recorded
    masses is an unbiased estimate of the query density; paths are batched so a
    query costs at most ``num_columns`` model forward passes regardless of the
    number of samples — and a micro-batch of queries shares those passes, see
    :meth:`estimate_selectivity_batch`.
    """

    def __init__(self, model, seed: int = 0) -> None:
        self.model = model
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def estimate_selectivity(self, masks: list[np.ndarray | None],
                             num_samples: int = 1000) -> float:
        """Estimate the probability mass inside the query region.

        Parameters
        ----------
        masks:
            One boolean valid-code mask per column (``None`` = wildcard).
        num_samples:
            Number of progressive sample paths (batched into one pass).
        """
        return float(self.estimate_selectivity_batch([masks],
                                                     num_samples=num_samples)[0])

    def estimate_selectivity_batch(
            self,
            masks_batch: list[list[np.ndarray | None]],
            num_samples: int = 1000,
            rngs: list[np.random.Generator] | None = None) -> np.ndarray:
        """Estimate many query regions with shared model forward passes.

        The sample paths of all queries are stacked into a single
        ``(num_queries * num_samples, num_columns)`` code matrix so every
        column costs one ``conditional_probs`` call for the whole micro-batch.

        Parameters
        ----------
        masks_batch:
            One mask list (as accepted by :meth:`estimate_selectivity`) per
            query.
        num_samples:
            Progressive sample paths *per query*.
        rngs:
            Optional one random generator per query.  Supplying per-query
            generators makes each query's estimate independent of how the
            workload was chopped into micro-batches — the
            :class:`repro.serve.EstimationEngine` relies on this to return
            identical estimates for any batch size.  When omitted, the first
            query consumes the sampler's own stream (so a batch of one is the
            sequential path) and the remaining queries use child generators
            derived from it.

        Returns
        -------
        numpy.ndarray
            One selectivity estimate per query, in input order.
        """
        domain_sizes = self.model.domain_sizes()
        num_columns = len(domain_sizes)
        num_queries = len(masks_batch)
        if num_queries == 0:
            return np.zeros(0)
        for masks in masks_batch:
            if len(masks) != num_columns:
                raise ValueError("one mask (or None) is required per column")
        if rngs is None:
            rngs = [self._rng]
            if num_queries > 1:
                rngs.extend(self._rng.spawn(num_queries - 1))
        elif len(rngs) != num_queries:
            raise ValueError("one random generator is required per query")

        # Wildcard skipping: once a query is past its *own* last constrained
        # column (in autoregressive order) its weight is final — trailing
        # wildcard columns contribute mass one and nothing the query still
        # samples conditions on them — so its rows drop out of the forward
        # passes.  Columns past every query's last constrained position are
        # not visited at all.
        last_constrained = np.full(num_queries, -1)
        for position, column in enumerate(self.model.order):
            for query, masks in enumerate(masks_batch):
                if masks[column] is not None:
                    last_constrained[query] = position
        sampled_columns = self.model.order[:int(last_constrained.max()) + 1]

        total_rows = num_queries * num_samples
        codes = np.zeros((total_rows, num_columns), dtype=np.int64)
        weights = np.ones(total_rows)
        alive = np.ones(total_rows, dtype=bool)
        row_query = np.repeat(np.arange(num_queries), num_samples)
        row_last_constrained = np.repeat(last_constrained, num_samples)

        for position, column in enumerate(sampled_columns):
            # Draw the full-width uniforms for every query before checking
            # liveness so each query's stream is consumed identically
            # regardless of batch composition and dead-row skipping.
            draws = np.concatenate([rng.random((num_samples, 1)) for rng in rngs])
            alive_rows = np.flatnonzero(alive & (row_last_constrained >= position))
            if alive_rows.size == 0:
                continue
            probs = self.model.conditional_probs(column, codes[alive_rows])
            column_masks = [masks[column] for masks in masks_batch]
            mask_matrix = None
            if any(mask is not None for mask in column_masks):
                mask_matrix = np.ones((num_queries, domain_sizes[column]))
                for query, mask in enumerate(column_masks):
                    if mask is not None:
                        mask_matrix[query] = mask
            # Truncate, weigh and sample in row chunks: every operation is
            # row-independent, and chunking keeps the temporaries of large
            # micro-batches inside the CPU caches.
            for start in range(0, alive_rows.size, _ROW_CHUNK):
                rows = alive_rows[start:start + _ROW_CHUNK]
                chunk = probs[start:start + _ROW_CHUNK]
                if mask_matrix is not None:
                    chunk = chunk * mask_matrix[row_query[rows]]
                mass = chunk.sum(axis=1)
                weights[rows] *= mass
                survived = mass > 0.0
                alive[rows] = survived
                # Renormalise only the surviving rows and sample the next value.
                safe_mass = np.where(survived, mass, 1.0)
                normalised = chunk / safe_mass[:, None]
                sampled = _sample_rows_from_probs(normalised, draws[rows])
                codes[rows[survived], column] = sampled[survived]

        return weights.reshape(num_queries, num_samples).mean(axis=1)


class UniformRegionSampler:
    """The paper's "first attempt": uniform Monte-Carlo over the query region.

    Points are drawn uniformly from ``R_1 × … × R_n`` and the model's point
    densities are averaged, then multiplied by the region size.  Kept as a
    baseline/ablation because it collapses catastrophically on skewed
    high-dimensional data (§5.1, Figure 3 left).
    """

    def __init__(self, model, seed: int = 0) -> None:
        self.model = model
        self._rng = np.random.default_rng(seed)

    def estimate_selectivity(self, masks: list[np.ndarray | None],
                             num_samples: int = 1000) -> float:
        domain_sizes = self.model.domain_sizes()
        region_size = 1.0
        candidate_codes: list[np.ndarray] = []
        for column, mask in enumerate(masks):
            if mask is None:
                codes = np.arange(domain_sizes[column])
            else:
                codes = np.flatnonzero(mask)
                if codes.size == 0:
                    return 0.0
            candidate_codes.append(codes)
            region_size *= float(codes.size)

        samples = np.stack([
            codes[self._rng.integers(0, codes.size, size=num_samples)]
            for codes in candidate_codes
        ], axis=1)
        densities = np.exp(self.model.log_prob(samples))
        return float(region_size * densities.mean())


def enumerate_region(model, masks: list[np.ndarray | None],
                     max_points: int = 200_000, batch_size: int = 4096) -> float:
    """Exactly sum the model's density over every point of the query region.

    Raises
    ------
    ValueError
        If the region contains more than ``max_points`` points — the situation
        in which the paper switches to progressive sampling.
    """
    domain_sizes = model.domain_sizes()
    per_column_codes: list[np.ndarray] = []
    region_size = 1.0
    for column, mask in enumerate(masks):
        codes = np.arange(domain_sizes[column]) if mask is None else np.flatnonzero(mask)
        if codes.size == 0:
            return 0.0
        per_column_codes.append(codes)
        region_size *= float(codes.size)
    if region_size > max_points:
        raise ValueError(
            f"query region has {region_size:.3g} points, enumeration capped at "
            f"{max_points}; use progressive sampling instead")

    total = 0.0
    batch: list[tuple[int, ...]] = []
    for point in itertools.product(*per_column_codes):
        batch.append(point)
        if len(batch) == batch_size:
            total += float(np.exp(model.log_prob(np.asarray(batch))).sum())
            batch = []
    if batch:
        total += float(np.exp(model.log_prob(np.asarray(batch))).sum())
    return total
