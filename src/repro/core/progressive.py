"""Querying the density model: enumeration, uniform sampling and progressive
sampling (§5 of the paper, Algorithm 1).

All three integration schemes operate on the *valid-code masks* produced by
:meth:`repro.query.predicates.Query.column_masks`: one boolean mask per column
(or ``None`` for a wildcard / unfiltered column).  They only require a model
exposing the :class:`repro.core.made.AutoregressiveModel` protocol —
``conditional_probs``, ``log_prob``, ``domain_sizes`` and ``order`` — so the
same code runs against neural models and the exact oracle model.
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = ["ProgressiveSampler", "UniformRegionSampler", "enumerate_region"]


def _sample_rows_from_probs(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draw one categorical sample per row of a ``(rows, categories)`` matrix."""
    cumulative = np.cumsum(probs, axis=1)
    # Guard against rounding: force the last cumulative value to 1.
    cumulative[:, -1] = 1.0
    draws = rng.random((probs.shape[0], 1))
    return np.argmax(cumulative >= draws, axis=1)


class ProgressiveSampler:
    """Unbiased Monte-Carlo estimator of range-query density (Algorithm 1).

    For each sample path the sampler walks the columns in the model's
    autoregressive order; at column ``i`` it asks the model for
    ``P(X_i | sampled prefix)``, zeroes the probabilities outside the query
    range ``R_i``, records the in-range mass, renormalises and samples the next
    prefix value from the *truncated* conditional.  The product of the recorded
    masses is an unbiased estimate of the query density; paths are batched so a
    query costs ``num_columns`` model forward passes regardless of the number
    of samples.
    """

    def __init__(self, model, seed: int = 0) -> None:
        self.model = model
        self._rng = np.random.default_rng(seed)

    def estimate_selectivity(self, masks: list[np.ndarray | None],
                             num_samples: int = 1000) -> float:
        """Estimate the probability mass inside the query region.

        Parameters
        ----------
        masks:
            One boolean valid-code mask per column (``None`` = wildcard).
        num_samples:
            Number of progressive sample paths (batched into one pass).
        """
        domain_sizes = self.model.domain_sizes()
        num_columns = len(domain_sizes)
        if len(masks) != num_columns:
            raise ValueError("one mask (or None) is required per column")

        codes = np.zeros((num_samples, num_columns), dtype=np.int64)
        weights = np.ones(num_samples)
        alive = np.ones(num_samples, dtype=bool)

        for column in self.model.order:
            mask = masks[column]
            if not alive.any():
                break
            probs = self.model.conditional_probs(column, codes)
            if mask is not None:
                probs = probs * mask[None, :]
            mass = probs.sum(axis=1)
            weights *= np.where(alive, mass, 0.0)
            newly_dead = mass <= 0.0
            alive &= ~newly_dead
            # Renormalise only the surviving rows and sample the next value.
            safe_mass = np.where(mass > 0.0, mass, 1.0)
            normalised = probs / safe_mass[:, None]
            sampled = _sample_rows_from_probs(
                np.where(alive[:, None], normalised, _uniform_fallback(probs.shape)),
                self._rng)
            codes[:, column] = sampled
        return float(weights.mean())


def _uniform_fallback(shape: tuple[int, int]) -> np.ndarray:
    """Uniform distribution used to fill rows whose weight is already zero."""
    return np.full(shape, 1.0 / shape[1])


class UniformRegionSampler:
    """The paper's "first attempt": uniform Monte-Carlo over the query region.

    Points are drawn uniformly from ``R_1 × … × R_n`` and the model's point
    densities are averaged, then multiplied by the region size.  Kept as a
    baseline/ablation because it collapses catastrophically on skewed
    high-dimensional data (§5.1, Figure 3 left).
    """

    def __init__(self, model, seed: int = 0) -> None:
        self.model = model
        self._rng = np.random.default_rng(seed)

    def estimate_selectivity(self, masks: list[np.ndarray | None],
                             num_samples: int = 1000) -> float:
        domain_sizes = self.model.domain_sizes()
        region_size = 1.0
        candidate_codes: list[np.ndarray] = []
        for column, mask in enumerate(masks):
            if mask is None:
                codes = np.arange(domain_sizes[column])
            else:
                codes = np.flatnonzero(mask)
                if codes.size == 0:
                    return 0.0
            candidate_codes.append(codes)
            region_size *= float(codes.size)

        samples = np.stack([
            codes[self._rng.integers(0, codes.size, size=num_samples)]
            for codes in candidate_codes
        ], axis=1)
        densities = np.exp(self.model.log_prob(samples))
        return float(region_size * densities.mean())


def enumerate_region(model, masks: list[np.ndarray | None],
                     max_points: int = 200_000, batch_size: int = 4096) -> float:
    """Exactly sum the model's density over every point of the query region.

    Raises
    ------
    ValueError
        If the region contains more than ``max_points`` points — the situation
        in which the paper switches to progressive sampling.
    """
    domain_sizes = model.domain_sizes()
    per_column_codes: list[np.ndarray] = []
    region_size = 1.0
    for column, mask in enumerate(masks):
        codes = np.arange(domain_sizes[column]) if mask is None else np.flatnonzero(mask)
        if codes.size == 0:
            return 0.0
        per_column_codes.append(codes)
        region_size *= float(codes.size)
    if region_size > max_points:
        raise ValueError(
            f"query region has {region_size:.3g} points, enumeration capped at "
            f"{max_points}; use progressive sampling instead")

    total = 0.0
    batch: list[tuple[int, ...]] = []
    for point in itertools.product(*per_column_codes):
        batch.append(point)
        if len(batch) == batch_size:
            total += float(np.exp(model.log_prob(np.asarray(batch))).sum())
            batch = []
    if batch:
        total += float(np.exp(model.log_prob(np.asarray(batch))).sum())
    return total
