"""Querying the density model: enumeration, uniform sampling and progressive
sampling (§5 of the paper, Algorithm 1).

All three integration schemes operate on the *valid-code masks* produced by
:meth:`repro.query.predicates.Query.column_masks`: one boolean mask per column
(or ``None`` for a wildcard / unfiltered column).  They only require a model
exposing the :class:`repro.core.made.AutoregressiveModel` protocol —
``conditional_probs``, ``log_prob``, ``domain_sizes`` and ``order`` — so the
same code runs against neural models and the exact oracle model.

Batched estimation
------------------
:meth:`ProgressiveSampler.estimate_selectivity_batch` packs many queries into
the *same* model forward passes: the sample paths of every in-flight query are
stacked into one code matrix, so a micro-batch of ``Q`` queries still costs at
most ``num_columns`` ``conditional_probs`` calls per round instead of
``Q × num_columns``.  Two §5.2-style optimisations ride along:

* **wildcard skipping** — columns that appear after the last constrained
  column (in the model's autoregressive order) of *every* in-flight query are
  never sampled: their truncated conditional is the full conditional, whose
  mass marginalises to one, and no later sampled column conditions on them;
* **dead-row skipping** — sample paths whose weight has hit zero (the query
  region has zero mass under their prefix) are dropped from subsequent model
  evaluations instead of being carried along on a uniform-fallback
  distribution.

Both optimisations leave the returned estimates unchanged (up to float
round-off of the wildcard-column mass): the single-query
:meth:`ProgressiveSampler.estimate_selectivity` is simply a batch of one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

__all__ = ["SamplerStats", "ProgressiveSampler", "UniformRegionSampler",
           "enumerate_region"]

#: Row-chunk size of the per-column truncate/renormalise/sample arithmetic in
#: batched runs; large micro-batches stack enough sample paths that one-shot
#: vectorisation would fall out of the CPU caches.
_ROW_CHUNK = 8192


def _sample_rows_from_probs(probs: np.ndarray, rng_draws: np.ndarray) -> np.ndarray:
    """Draw one categorical sample per row given uniform draws in ``[0, 1)``."""
    cumulative = np.cumsum(probs, axis=1)
    # Guard against rounding: force the last cumulative value to 1.
    cumulative[:, -1] = 1.0
    return np.argmax(cumulative >= rng_draws, axis=1)


def _region_candidates(
        domain_sizes: list[int],
        masks: list[np.ndarray | None]) -> tuple[list[np.ndarray] | None, float]:
    """Candidate code arrays and size of the query region ``R_1 × … × R_n``.

    A wildcard column contributes its whole domain.  If any column's mask
    admits no code the region is empty: returns ``(None, 0.0)`` so callers
    can early-return a zero selectivity without special-casing.
    """
    candidate_codes: list[np.ndarray] = []
    region_size = 1.0
    for column, mask in enumerate(masks):
        codes = np.arange(domain_sizes[column]) if mask is None else np.flatnonzero(mask)
        if codes.size == 0:
            return None, 0.0
        candidate_codes.append(codes)
        region_size *= float(codes.size)
    return candidate_codes, region_size


@dataclass
class SamplerStats:
    """Lifetime row accounting of one progressive sampler.

    ``rows_submitted`` counts the alive sample-path rows that needed a
    conditional at some position; ``unique_rows`` counts the rows actually
    sent to the model after prefix deduplication (equal to ``rows_submitted``
    when dedup is off); ``forward_calls`` counts ``conditional_probs`` calls.
    The serving engine snapshots these at scope boundaries to report
    per-workload deltas and the dedup ratio.
    """

    rows_submitted: int = 0
    unique_rows: int = 0
    forward_calls: int = 0

    def snapshot(self) -> tuple[int, int, int]:
        """Current counter values, for delta accounting across scopes."""
        return (self.rows_submitted, self.unique_rows, self.forward_calls)


class ProgressiveSampler:
    """Unbiased Monte-Carlo estimator of range-query density (Algorithm 1).

    For each sample path the sampler walks the columns in the model's
    autoregressive order; at column ``i`` it asks the model for
    ``P(X_i | sampled prefix)``, zeroes the probabilities outside the query
    range ``R_i``, records the in-range mass, renormalises and samples the next
    prefix value from the *truncated* conditional.  The product of the recorded
    masses is an unbiased estimate of the query density; paths are batched so a
    query costs at most ``num_columns`` model forward passes regardless of the
    number of samples — and a micro-batch of queries shares those passes, see
    :meth:`estimate_selectivity_batch`.

    Parameters
    ----------
    model:
        Any model implementing the autoregressive protocol.
    seed:
        Seed of the sampler's own random stream (used when callers do not
        supply per-query generators).
    dedup:
        Deduplicate the visible prefixes of the alive sample paths before
        each model call (default on): at position ``p`` the conditional
        depends only on the columns sampled so far, and sample paths collapse
        to a handful of distinct prefixes at early positions — every path
        shares the empty prefix at position 0 — so the model evaluates each
        unique prefix once and the results scatter back to the full row set.
        The random draws are consumed before liveness checks, so sampling
        streams are untouched; for models whose ``conditional_probs`` is
        row-exact (:class:`repro.core.made.MADEModel`, the oracle) the
        estimates are bit-identical with dedup on or off.
    """

    def __init__(self, model, seed: int = 0, dedup: bool = True) -> None:
        self.model = model
        self.dedup = dedup
        #: Lifetime row accounting, see :class:`SamplerStats`.
        self.stats = SamplerStats()
        self._rng = np.random.default_rng(seed)
        # Per-position mixed-radix packing of the visible prefix into one
        # int64 (for scalar-sort deduplication); ``None`` marks positions
        # whose radix product overflows, which fall back to row-wise unique.
        self._prefix_pack: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}

    def _prefix_packing(self, position: int) -> tuple[np.ndarray, np.ndarray | None]:
        """The (prefix column indices, mixed radix or None) of one position."""
        packing = self._prefix_pack.get(position)
        if packing is None:
            prefix_columns = np.asarray(self.model.order[:position], dtype=np.int64)
            domain_sizes = self.model.domain_sizes()
            sizes = [domain_sizes[column] for column in prefix_columns]
            radix = None
            if sizes and float(np.prod([float(size) for size in sizes])) < 2.0 ** 62:
                radix = np.ones(len(sizes), dtype=np.int64)
                for index in range(len(sizes) - 2, -1, -1):
                    radix[index] = radix[index + 1] * sizes[index + 1]
            packing = (prefix_columns, radix)
            self._prefix_pack[position] = packing
        return packing

    def _conditional_unique(self, position: int, column: int,
                            codes: np.ndarray,
                            alive_rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Model conditionals of the alive rows, deduplicated by visible prefix.

        Alive rows agree on every column *not* yet sampled (still zero), so
        deduplicating the visible prefix equals deduplicating whole rows; the
        model sees one representative row per unique prefix.  Returns
        ``(representatives, inverse)`` — each alive row's distribution is
        ``representatives[inverse[row]]`` — so callers can keep working in
        representative space instead of scattering distributions back to every
        row.  Whole-array numpy throughout — no scalar Python per row.
        """
        stats = self.stats
        stats.rows_submitted += alive_rows.size
        stats.forward_calls += 1
        if position == 0:
            # Every path shares the empty prefix: one model row for them all.
            stats.unique_rows += 1
            representatives = self.model.conditional_probs(
                column, codes[alive_rows[:1]])
            return representatives, np.zeros(alive_rows.size, dtype=np.int64)
        sub_codes = codes[alive_rows]
        prefix_columns, radix = self._prefix_packing(position)
        prefixes = sub_codes[:, prefix_columns]
        if radix is not None:
            _, first_rows, inverse = np.unique(prefixes @ radix,
                                               return_index=True,
                                               return_inverse=True)
        else:
            _, first_rows, inverse = np.unique(prefixes, axis=0,
                                               return_index=True,
                                               return_inverse=True)
        stats.unique_rows += first_rows.size
        representatives = self.model.conditional_probs(column,
                                                       sub_codes[first_rows])
        return representatives, inverse

    def _conditional_batch(self, position: int, column: int,
                           codes: np.ndarray,
                           alive_rows: np.ndarray) -> np.ndarray:
        """Per-row conditionals of the alive rows (scattered form).

        With dedup on this is :meth:`_conditional_unique` followed by the
        inverse scatter; with dedup off every row goes to the model directly.
        """
        stats = self.stats
        if not self.dedup:
            stats.rows_submitted += alive_rows.size
            stats.forward_calls += 1
            stats.unique_rows += alive_rows.size
            return self.model.conditional_probs(column, codes[alive_rows])
        representatives, inverse = self._conditional_unique(
            position, column, codes, alive_rows)
        return representatives[inverse]

    # ------------------------------------------------------------------ #
    def estimate_selectivity(self, masks: list[np.ndarray | None],
                             num_samples: int = 1000) -> float:
        """Estimate the probability mass inside the query region.

        Parameters
        ----------
        masks:
            One boolean valid-code mask per column (``None`` = wildcard).
        num_samples:
            Number of progressive sample paths (batched into one pass).
        """
        return float(self.estimate_selectivity_batch([masks],
                                                     num_samples=num_samples)[0])

    def estimate_selectivity_batch(
            self,
            masks_batch: list[list[np.ndarray | None]],
            num_samples: int = 1000,
            rngs: list[np.random.Generator] | None = None) -> np.ndarray:
        """Estimate many query regions with shared model forward passes.

        The sample paths of all queries are stacked into a single
        ``(num_queries * num_samples, num_columns)`` code matrix so every
        column costs one ``conditional_probs`` call for the whole micro-batch.

        Parameters
        ----------
        masks_batch:
            One mask list (as accepted by :meth:`estimate_selectivity`) per
            query.
        num_samples:
            Progressive sample paths *per query*.
        rngs:
            Optional one random generator per query.  Supplying per-query
            generators makes each query's estimate independent of how the
            workload was chopped into micro-batches — the
            :class:`repro.serve.EstimationEngine` relies on this to return
            identical estimates for any batch size.  When omitted, the first
            query consumes the sampler's own stream (so a batch of one is the
            sequential path) and the remaining queries use child generators
            derived from it.

        Returns
        -------
        numpy.ndarray
            One selectivity estimate per query, in input order.
        """
        domain_sizes = self.model.domain_sizes()
        num_columns = len(domain_sizes)
        num_queries = len(masks_batch)
        if num_queries == 0:
            return np.zeros(0)
        for masks in masks_batch:
            if len(masks) != num_columns:
                raise ValueError("one mask (or None) is required per column")
        if rngs is None:
            rngs = [self._rng]
            if num_queries > 1:
                rngs.extend(self._rng.spawn(num_queries - 1))
        elif len(rngs) != num_queries:
            raise ValueError("one random generator is required per query")

        # Wildcard skipping: once a query is past its *own* last constrained
        # column (in autoregressive order) its weight is final — trailing
        # wildcard columns contribute mass one and nothing the query still
        # samples conditions on them — so its rows drop out of the forward
        # passes.  Columns past every query's last constrained position are
        # not visited at all.
        last_constrained = np.full(num_queries, -1)
        for position, column in enumerate(self.model.order):
            for query, masks in enumerate(masks_batch):
                if masks[column] is not None:
                    last_constrained[query] = position
        sampled_columns = self.model.order[:int(last_constrained.max()) + 1]

        total_rows = num_queries * num_samples
        codes = np.zeros((total_rows, num_columns), dtype=np.int64)
        weights = np.ones(total_rows)
        alive = np.ones(total_rows, dtype=bool)
        row_query = np.repeat(np.arange(num_queries), num_samples)
        row_last_constrained = np.repeat(last_constrained, num_samples)

        for position, column in enumerate(sampled_columns):
            # Draw the full-width uniforms for every query before checking
            # liveness so each query's stream is consumed identically
            # regardless of batch composition and dead-row skipping.
            draws = np.concatenate([rng.random((num_samples, 1)) for rng in rngs])
            alive_rows = np.flatnonzero(alive & (row_last_constrained >= position))
            if alive_rows.size == 0:
                continue
            column_masks = [masks[column] for masks in masks_batch]
            mask_matrix = None
            if any(mask is not None for mask in column_masks):
                mask_matrix = np.ones((num_queries, domain_sizes[column]))
                for query, mask in enumerate(column_masks):
                    if mask is not None:
                        mask_matrix[query] = mask

            if self.dedup:
                # Representative-space arithmetic: rows sharing a (prefix,
                # query-mask) pair share their truncated distribution, so the
                # mask product, mass, renormalisation and cumulative sum run
                # once per distinct pair; rows only gather their pair's
                # results and compare against their own draws.  Every one of
                # these operations is row-pure, so the per-row values — and
                # hence the estimates — are bit-identical to the unfused
                # per-row loop below.
                representatives, inverse = self._conditional_unique(
                    position, column, codes, alive_rows)
                if mask_matrix is None:
                    truncated = representatives
                    groups = inverse
                else:
                    pair_ids = inverse * num_queries + row_query[alive_rows]
                    pairs, groups = np.unique(pair_ids, return_inverse=True)
                    truncated = (representatives[pairs // num_queries]
                                 * mask_matrix[pairs % num_queries])
                group_mass = truncated.sum(axis=1)
                safe_mass = np.where(group_mass > 0.0, group_mass, 1.0)
                cumulative = np.cumsum(truncated / safe_mass[:, None], axis=1)
                # Guard against rounding: force the last cumulative value to 1.
                cumulative[:, -1] = 1.0
                for start in range(0, alive_rows.size, _ROW_CHUNK):
                    rows = alive_rows[start:start + _ROW_CHUNK]
                    row_groups = groups[start:start + _ROW_CHUNK]
                    mass = group_mass[row_groups]
                    weights[rows] *= mass
                    survived = mass > 0.0
                    alive[rows] = survived
                    sampled = np.argmax(cumulative[row_groups] >= draws[rows],
                                        axis=1)
                    codes[rows[survived], column] = sampled[survived]
                continue

            probs = self._conditional_batch(position, column, codes, alive_rows)
            # Truncate, weigh and sample in row chunks: every operation is
            # row-independent, and chunking keeps the temporaries of large
            # micro-batches inside the CPU caches.
            for start in range(0, alive_rows.size, _ROW_CHUNK):
                rows = alive_rows[start:start + _ROW_CHUNK]
                chunk = probs[start:start + _ROW_CHUNK]
                if mask_matrix is not None:
                    chunk = chunk * mask_matrix[row_query[rows]]
                mass = chunk.sum(axis=1)
                weights[rows] *= mass
                survived = mass > 0.0
                alive[rows] = survived
                # Renormalise only the surviving rows and sample the next value.
                safe_mass = np.where(survived, mass, 1.0)
                normalised = chunk / safe_mass[:, None]
                sampled = _sample_rows_from_probs(normalised, draws[rows])
                codes[rows[survived], column] = sampled[survived]

        return weights.reshape(num_queries, num_samples).mean(axis=1)


class UniformRegionSampler:
    """The paper's "first attempt": uniform Monte-Carlo over the query region.

    Points are drawn uniformly from ``R_1 × … × R_n`` and the model's point
    densities are averaged, then multiplied by the region size.  Kept as a
    baseline/ablation because it collapses catastrophically on skewed
    high-dimensional data (§5.1, Figure 3 left).
    """

    def __init__(self, model, seed: int = 0) -> None:
        self.model = model
        self._rng = np.random.default_rng(seed)

    def estimate_selectivity(self, masks: list[np.ndarray | None],
                             num_samples: int = 1000) -> float:
        candidate_codes, region_size = _region_candidates(
            self.model.domain_sizes(), masks)
        if candidate_codes is None:
            return 0.0

        samples = np.stack([
            codes[self._rng.integers(0, codes.size, size=num_samples)]
            for codes in candidate_codes
        ], axis=1)
        densities = np.exp(self.model.log_prob(samples))
        return float(region_size * densities.mean())


def enumerate_region(model, masks: list[np.ndarray | None],
                     max_points: int = 200_000, batch_size: int = 4096) -> float:
    """Exactly sum the model's density over every point of the query region.

    Raises
    ------
    ValueError
        If the region contains more than ``max_points`` points — the situation
        in which the paper switches to progressive sampling.
    """
    per_column_codes, region_size = _region_candidates(model.domain_sizes(), masks)
    if per_column_codes is None:
        return 0.0
    if region_size > max_points:
        raise ValueError(
            f"query region has {region_size:.3g} points, enumeration capped at "
            f"{max_points}; use progressive sampling instead")

    total = 0.0
    batch: list[tuple[int, ...]] = []
    for point in itertools.product(*per_column_codes):
        batch.append(point)
        if len(batch) == batch_size:
            total += float(np.exp(model.log_prob(np.asarray(batch))).sum())
            batch = []
    if batch:
        total += float(np.exp(model.log_prob(np.asarray(batch))).sum())
    return total
