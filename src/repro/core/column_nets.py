"""Per-column autoregressive networks (architecture A, §3.2 of the paper).

Each column gets its own compact MLP whose input is the aggregated encoding
of the columns preceding it in the autoregressive order (vector concatenation
is used as the aggregation operator ⊕).  The first column's network receives
a constant input, making its output an unconditional marginal — exactly the
``0 → M_city`` construction in the paper's travel-checkins example.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.table import Table
from .encoding import TupleEncoder
from .made import AutoregressiveModel

__all__ = ["ColumnNetworkModel"]


class ColumnNetworkModel(AutoregressiveModel):
    """One small MLP per column, conditioned on the preceding columns."""

    def __init__(self, table: Table, hidden_sizes: tuple[int, ...] = (64, 64),
                 embedding_threshold: int = 64, embedding_dim: int = 64,
                 order: list[int] | None = None, seed: int = 0) -> None:
        super().__init__(table, order=order)
        rng = np.random.default_rng(seed)
        self.encoder = TupleEncoder(table, embedding_threshold=embedding_threshold,
                                    embedding_dim=embedding_dim, rng=rng)
        self.hidden_sizes = tuple(hidden_sizes)

        input_widths = self.encoder.input_widths
        output_widths = self.encoder.output_widths

        # ``column_nets[i]`` predicts the distribution of table column ``i``.
        self.column_nets: list[nn.Sequential] = []
        self._context_columns: list[list[int]] = []
        for position, column in enumerate(self.order):
            context = self.order[:position]
            context_width = sum(input_widths[c] for c in context)
            in_width = max(context_width, 1)  # the first column sees a constant
            layers: list[nn.Module] = []
            previous = in_width
            for width in self.hidden_sizes:
                layers.append(nn.Linear(previous, width, rng=rng))
                layers.append(nn.ReLU())
                previous = width
            layers.append(nn.Linear(previous, output_widths[column], rng=rng))
            self.column_nets.append(nn.Sequential(*layers))
            self._context_columns.append(context)

        # Map table-column index -> position in ``self.order`` (and hence in
        # ``column_nets``), so forward_logits can return logits in table order.
        self._position_of_column = {column: position
                                    for position, column in enumerate(self.order)}

    def _context_input(self, position: int, codes: np.ndarray) -> nn.Tensor:
        context = self._context_columns[position]
        if not context:
            return nn.Tensor(np.ones((codes.shape[0], 1)))
        blocks = [self.encoder.encode_column(column, codes[:, column])
                  for column in context]
        return nn.concatenate(blocks, axis=1)

    def forward_logits(self, codes: np.ndarray) -> list[nn.Tensor]:
        codes = np.asarray(codes, dtype=np.int64)
        logits: list[nn.Tensor | None] = [None] * self.num_columns
        for column in range(self.num_columns):
            position = self._position_of_column[column]
            context = self._context_input(position, codes)
            output = self.column_nets[position](context)
            logits[column] = self.encoder.decode_logits(column, output)
        return logits  # type: ignore[return-value]
