"""Unsupervised maximum-likelihood training loop and goodness-of-fit metrics.

Naru is trained exactly like a classical synopsis is built: by reading tuples
of the relation, with no queries or feedback involved (§4.1).  The training
objective is the cross-entropy between the empirical joint and the model
(Equation 2); the interpretable goodness-of-fit is the *entropy gap*
``H(P, P̂) − H(P) = KL(P ‖ P̂)`` in bits (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..data.table import Table

__all__ = ["data_entropy_bits", "cross_entropy_bits", "TrainingHistory", "Trainer"]

_NATS_TO_BITS = 1.0 / np.log(2.0)


def data_entropy_bits(table: Table) -> float:
    """Entropy ``H(P)`` of the table's empirical joint distribution, in bits."""
    _, counts = np.unique(table.encoded(), axis=0, return_counts=True)
    probabilities = counts / counts.sum()
    return float(-(probabilities * np.log2(probabilities)).sum())


def cross_entropy_bits(model, codes: np.ndarray, batch_size: int = 2048) -> float:
    """Cross-entropy ``H(P, P̂)`` of coded tuples under the model, in bits."""
    codes = np.asarray(codes, dtype=np.int64)
    total = 0.0
    for start in range(0, codes.shape[0], batch_size):
        batch = codes[start:start + batch_size]
        total += float(-model.log_prob(batch).sum())
    return total / codes.shape[0] * _NATS_TO_BITS


@dataclass
class TrainingHistory:
    """Per-epoch training diagnostics."""

    epoch_losses_bits: list[float] = field(default_factory=list)
    epoch_entropy_gaps_bits: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def num_epochs(self) -> int:
        return len(self.epoch_losses_bits)


class Trainer:
    """Runs the maximum-likelihood training loop for an autoregressive model.

    Parameters
    ----------
    model:
        Any :class:`repro.core.made.AutoregressiveModel`.
    table:
        The relation whose tuples are the training data.
    batch_size, learning_rate:
        Optimisation hyper-parameters (Adam is used, as in the paper).
    seed:
        Seed for shuffling.
    """

    def __init__(self, model, table: Table, batch_size: int = 512,
                 learning_rate: float = 2e-3, seed: int = 0) -> None:
        self.model = model
        self.table = table
        self.batch_size = batch_size
        self.optimizer = nn.Adam(model.parameters(), lr=learning_rate)
        self._rng = np.random.default_rng(seed)
        self.history = TrainingHistory()
        self._data_entropy_bits: float | None = None

    # ------------------------------------------------------------------ #
    def data_entropy(self) -> float:
        """Cached empirical data entropy ``H(P)`` in bits."""
        if self._data_entropy_bits is None:
            self._data_entropy_bits = data_entropy_bits(self.table)
        return self._data_entropy_bits

    def entropy_gap_bits(self, sample_rows: int | None = 4096, seed: int = 0) -> float:
        """Current entropy gap (KL divergence) of the model, in bits."""
        codes = self.table.encoded()
        if sample_rows is not None and sample_rows < codes.shape[0]:
            rng = np.random.default_rng(seed)
            codes = codes[rng.integers(0, codes.shape[0], size=sample_rows)]
        gap = cross_entropy_bits(self.model, codes) - self.data_entropy()
        return max(0.0, gap)

    # ------------------------------------------------------------------ #
    def train_epoch(self, codes: np.ndarray | None = None) -> float:
        """One pass over the data; returns the mean loss in bits per tuple."""
        import time

        start_time = time.perf_counter()
        if codes is None:
            codes = self.table.encoded()
        permutation = self._rng.permutation(codes.shape[0])
        codes = codes[permutation]

        total_loss = 0.0
        total_rows = 0
        self.model.train()
        for start in range(0, codes.shape[0], self.batch_size):
            batch = codes[start:start + self.batch_size]
            self.optimizer.zero_grad()
            loss = self.model.nll(batch)
            loss.backward()
            self.optimizer.step()
            total_loss += loss.item() * batch.shape[0]
            total_rows += batch.shape[0]
        self.model.eval()

        mean_loss_bits = total_loss / total_rows * _NATS_TO_BITS
        self.history.epoch_losses_bits.append(mean_loss_bits)
        self.history.epoch_seconds.append(time.perf_counter() - start_time)
        return mean_loss_bits

    def train(self, epochs: int, track_entropy_gap: bool = False,
              entropy_gap_sample: int = 2048) -> TrainingHistory:
        """Train for ``epochs`` passes over the data.

        Parameters
        ----------
        epochs:
            Number of passes over the relation.
        track_entropy_gap:
            If true, the entropy gap is evaluated after every epoch and
            recorded in the history (used by the Figure 5 reproduction).
        entropy_gap_sample:
            Number of tuples sampled for the gap evaluation.
        """
        for _ in range(epochs):
            self.train_epoch()
            if track_entropy_gap:
                self.history.epoch_entropy_gaps_bits.append(
                    self.entropy_gap_bits(sample_rows=entropy_gap_sample))
        return self.history

    def fine_tune(self, table: Table, epochs: int = 1) -> TrainingHistory:
        """Continue training on tuples from a (possibly updated) relation.

        Used for the data-shift study (§6.7.3): after new partitions are
        ingested the existing model receives gradient updates on samples from
        the updated relation, without being rebuilt from scratch.
        """
        codes = table.encoded()
        for _ in range(epochs):
            self.train_epoch(codes=codes)
        return self.history
