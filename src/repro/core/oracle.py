"""Oracle density models computed directly from the data (§6.7 of the paper).

For the Conviva-B micro-benchmarks the paper replaces the neural network with
an *emulated oracle model*: the exact conditional distributions obtained by
scanning the (tiny) table.  This isolates the error contributed by progressive
sampling from the error contributed by density estimation.  The paper further
injects an artificial entropy gap into the oracle to study how inaccurate the
density model is allowed to be (Figure 7); :class:`NoisyOracleModel` implements
that knob by mixing the exact conditionals with a uniform distribution.
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table

__all__ = ["OracleModel", "NoisyOracleModel"]


class OracleModel:
    """Exact autoregressive conditionals obtained by scanning the table.

    Implements the same protocol as the neural models
    (:class:`repro.core.made.AutoregressiveModel`), so it can be plugged into
    the progressive sampler, the uniform sampler and the enumerator unchanged.
    Per-column groupings of the data by prefix are cached, so answering many
    queries against the same oracle is fast even for 100-column tables.
    """

    def __init__(self, table: Table, order: list[int] | None = None) -> None:
        self.table = table
        self.codes = table.encoded()
        self.domain_sizes_list = table.domain_sizes
        self.order = list(order) if order is not None else list(range(table.num_columns))
        if sorted(self.order) != list(range(table.num_columns)):
            raise ValueError("order must be a permutation of the column positions")
        self._cache: dict[int, tuple] = {}

    @property
    def num_columns(self) -> int:
        return len(self.domain_sizes_list)

    def domain_sizes(self) -> list[int]:
        return list(self.domain_sizes_list)

    # ------------------------------------------------------------------ #
    def _prefix_columns(self, column_index: int) -> list[int]:
        position = self.order.index(column_index)
        return self.order[:position]

    def _column_grouping(self, column_index: int) -> tuple:
        """Cache: (prefix cols, prefix→group map, group conditionals, marginal)."""
        if column_index in self._cache:
            return self._cache[column_index]
        prefix = self._prefix_columns(column_index)
        domain = self.domain_sizes_list[column_index]
        marginal = np.bincount(self.codes[:, column_index], minlength=domain).astype(float)
        marginal /= marginal.sum()
        if not prefix:
            entry = (prefix, {}, np.empty((0, domain)), marginal)
            self._cache[column_index] = entry
            return entry
        data_prefix = np.ascontiguousarray(self.codes[:, prefix])
        unique_rows, inverse = np.unique(data_prefix, axis=0, return_inverse=True)
        counts = np.zeros((unique_rows.shape[0], domain))
        np.add.at(counts, (inverse, self.codes[:, column_index]), 1.0)
        conditionals = counts / counts.sum(axis=1, keepdims=True)
        key_to_group = {unique_rows[g].tobytes(): g for g in range(unique_rows.shape[0])}
        entry = (prefix, key_to_group, conditionals, marginal)
        self._cache[column_index] = entry
        return entry

    def conditional_probs(self, column_index: int, codes: np.ndarray) -> np.ndarray:
        """Exact ``P(X_i | x_<i)`` for each row of a (partially filled) batch.

        Rows whose prefix never occurs in the data receive the column's
        unconditional marginal (such prefixes only arise on zero-weight sample
        paths, so any valid distribution would do).

        Like the neural models, the output is row-independent: any subset of
        rows (including the empty batch) may be evaluated in any grouping and
        yields the same per-row distributions.
        """
        codes = np.asarray(codes, dtype=np.int64)
        prefix, key_to_group, conditionals, marginal = self._column_grouping(column_index)
        output = np.empty((codes.shape[0], marginal.size))
        if codes.shape[0] == 0:
            return output
        if not prefix:
            output[:] = marginal
            return output
        query_prefix = np.ascontiguousarray(codes[:, prefix])
        unique_queries, inverse = np.unique(query_prefix, axis=0, return_inverse=True)
        for group, prefix_values in enumerate(unique_queries):
            match = key_to_group.get(prefix_values.tobytes())
            distribution = marginal if match is None else conditionals[match]
            output[inverse == group] = distribution
        return output

    def log_prob(self, codes: np.ndarray) -> np.ndarray:
        """Exact log joint probability of each tuple (``-inf`` if absent)."""
        codes = np.asarray(codes, dtype=np.int64)
        counts = np.zeros(codes.shape[0])
        for index, row in enumerate(codes):
            matches = np.all(self.codes == row[None, :], axis=1)
            counts[index] = matches.sum()
        with np.errstate(divide="ignore"):
            return np.log(counts / self.table.num_rows)

    def entropy_bits(self) -> float:
        """Exact entropy ``H(P)`` of the empirical joint, in bits."""
        _, counts = np.unique(self.codes, axis=0, return_counts=True)
        probabilities = counts / counts.sum()
        return float(-(probabilities * np.log2(probabilities)).sum())


class NoisyOracleModel(OracleModel):
    """Oracle conditionals blurred towards uniform to emulate an entropy gap.

    Parameters
    ----------
    table:
        The relation.
    noise:
        Mixing weight in ``[0, 1]``: each conditional becomes
        ``(1 - noise) · exact + noise · uniform``.  ``0`` is the perfect
        oracle; larger values move probability mass off the true data
        distribution, increasing the model's entropy gap.
    """

    def __init__(self, table: Table, noise: float,
                 order: list[int] | None = None) -> None:
        super().__init__(table, order=order)
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be in [0, 1]")
        self.noise = noise

    def conditional_probs(self, column_index: int, codes: np.ndarray) -> np.ndarray:
        exact = super().conditional_probs(column_index, codes)
        domain = self.domain_sizes_list[column_index]
        uniform = 1.0 / domain
        return (1.0 - self.noise) * exact + self.noise * uniform

    def log_prob(self, codes: np.ndarray) -> np.ndarray:
        """Log probability under the *noisy* autoregressive factorisation."""
        codes = np.asarray(codes, dtype=np.int64)
        total = np.zeros(codes.shape[0])
        for column in self.order:
            probs = self.conditional_probs(column, codes)
            picked = probs[np.arange(codes.shape[0]), codes[:, column]]
            with np.errstate(divide="ignore"):
                total += np.log(picked)
        return total

    def entropy_gap_bits(self, sample_rows: int | None = 2000,
                         seed: int = 0) -> float:
        """Empirical KL divergence (bits) between the data and this model.

        Computed as the cross-entropy of (a sample of) the data under the
        noisy model minus the exact data entropy.
        """
        rng = np.random.default_rng(seed)
        if sample_rows is None or sample_rows >= self.table.num_rows:
            sample = self.codes
        else:
            sample = self.codes[rng.integers(0, self.table.num_rows, size=sample_rows)]
        cross_entropy_bits = float(-(self.log_prob(sample) / np.log(2.0)).mean())
        return max(0.0, cross_entropy_bits - self.entropy_bits())
