"""Naru core: autoregressive likelihood models, training and progressive sampling."""

from .column_nets import ColumnNetworkModel
from .config import NaruConfig
from .encoding import ColumnCodec, TupleEncoder
from .estimator import NaruEstimator
from .made import AutoregressiveModel, MADEModel
from .oracle import NoisyOracleModel, OracleModel
from .progressive import ProgressiveSampler, UniformRegionSampler, enumerate_region
from .training import Trainer, TrainingHistory, cross_entropy_bits, data_entropy_bits

__all__ = [
    "NaruConfig",
    "NaruEstimator",
    "AutoregressiveModel",
    "MADEModel",
    "ColumnNetworkModel",
    "TupleEncoder",
    "ColumnCodec",
    "OracleModel",
    "NoisyOracleModel",
    "ProgressiveSampler",
    "UniformRegionSampler",
    "enumerate_region",
    "Trainer",
    "TrainingHistory",
    "data_entropy_bits",
    "cross_entropy_bits",
]
