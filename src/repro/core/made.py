"""Masked autoregressive MLP over relational tuples (architecture B, §4.3).

This is the model the paper defaults to: a multi-layer perceptron whose weight
matrices are multiplied by binary masks so that the output block of column
``i`` only receives information from the input blocks of columns appearing
*earlier* in the autoregressive order — the MADE construction of Germain et
al. adapted to grouped (per-column, possibly embedded) inputs and outputs.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.table import Table
from .encoding import TupleEncoder

__all__ = ["AutoregressiveModel", "MADEModel"]


class AutoregressiveModel(nn.Module):
    """Interface shared by all Naru density models.

    A model maps a batch of integer-coded tuples to one probability
    distribution per column, conditioned on the values of the columns that
    precede it in :attr:`order`.  Both the training loop and the progressive
    sampler are written against this interface, so architectures are
    interchangeable (and the oracle model in :mod:`repro.core.oracle`
    implements the same protocol without a neural network).
    """

    def __init__(self, table: Table, order: list[int] | None = None) -> None:
        super().__init__()
        self.column_names = table.column_names
        self.domain_sizes_list = table.domain_sizes
        self.order = list(order) if order is not None else list(range(table.num_columns))
        if sorted(self.order) != list(range(table.num_columns)):
            raise ValueError("order must be a permutation of the column positions")

    @property
    def num_columns(self) -> int:
        return len(self.domain_sizes_list)

    def domain_sizes(self) -> list[int]:
        return list(self.domain_sizes_list)

    # -- protocol ------------------------------------------------------- #
    def forward_logits(self, codes: np.ndarray) -> list[nn.Tensor]:
        """Per-column logits ``(batch, |A_i|)`` for a batch of coded tuples."""
        raise NotImplementedError

    def nll(self, codes: np.ndarray) -> nn.Tensor:
        """Mean negative log-likelihood (nats per tuple) of a coded batch.

        This is the maximum-likelihood / cross-entropy training objective
        (Equation 2 of the paper).
        """
        codes = np.asarray(codes, dtype=np.int64)
        logits = self.forward_logits(codes)
        total = None
        for index, column_logits in enumerate(logits):
            log_probs = column_logits.log_softmax(axis=-1)
            picked = log_probs.gather(codes[:, index])
            total = picked if total is None else total + picked
        return -total.mean()

    def log_prob(self, codes: np.ndarray) -> np.ndarray:
        """Log probability (nats) of each tuple in a coded batch."""
        codes = np.asarray(codes, dtype=np.int64)
        with nn.no_grad():
            logits = self.forward_logits(codes)
            total = np.zeros(codes.shape[0])
            for index, column_logits in enumerate(logits):
                log_probs = column_logits.log_softmax(axis=-1).numpy()
                total += log_probs[np.arange(codes.shape[0]), codes[:, index]]
        return total

    def conditional_probs(self, column_index: int, codes: np.ndarray) -> np.ndarray:
        """``P(X_i | x_<i)`` for each row of a (partially filled) coded batch.

        Columns at or after ``column_index`` in the autoregressive order are
        ignored by construction, so their entries in ``codes`` may hold
        arbitrary placeholder values.

        The batch contract is row-independent: each output row depends only on
        the corresponding input row, so callers (the batched progressive
        sampler, the serving-layer conditional cache) are free to evaluate any
        subset of rows in any grouping — including the empty batch, which
        returns an empty ``(0, |A_i|)`` matrix without touching the network.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.shape[0] == 0:
            return np.empty((0, self.domain_sizes_list[column_index]))
        with nn.no_grad():
            logits = self.forward_logits(codes)[column_index]
            return np.exp(logits.log_softmax(axis=-1).numpy())


def _degrees_for_blocks(block_widths: list[int], block_degrees: list[int]) -> np.ndarray:
    """Expand per-block degrees to per-unit degrees."""
    return np.concatenate([
        np.full(width, degree, dtype=np.int64)
        for width, degree in zip(block_widths, block_degrees)
    ])


class MADEModel(AutoregressiveModel):
    """Masked multi-layer perceptron with grouped column blocks.

    Parameters
    ----------
    table:
        Table whose joint distribution is being modelled (defines domains).
    hidden_sizes:
        Hidden-layer widths.
    embedding_threshold, embedding_dim:
        Encoding strategy thresholds, see :class:`TupleEncoder`.
    order:
        Autoregressive ordering of the columns (defaults to table order).
    seed:
        Weight-initialisation seed.
    """

    def __init__(self, table: Table, hidden_sizes: tuple[int, ...] = (128, 128),
                 embedding_threshold: int = 64, embedding_dim: int = 64,
                 order: list[int] | None = None, seed: int = 0) -> None:
        super().__init__(table, order=order)
        rng = np.random.default_rng(seed)
        self.encoder = TupleEncoder(table, embedding_threshold=embedding_threshold,
                                    embedding_dim=embedding_dim, rng=rng)
        self.hidden_sizes = tuple(hidden_sizes)

        input_widths = self.encoder.input_widths
        output_widths = self.encoder.output_widths
        # Degree of column c = 1 + its position in the autoregressive order.
        position = {column: index for index, column in enumerate(self.order)}
        column_degrees = [position[column] + 1 for column in range(self.num_columns)]

        input_degrees = _degrees_for_blocks(input_widths, column_degrees)
        output_degrees = _degrees_for_blocks(output_widths, column_degrees)

        max_hidden_degree = max(1, self.num_columns - 1)
        self.layers: list[nn.MaskedLinear] = []
        previous_degrees = input_degrees
        previous_width = sum(input_widths)
        for width in self.hidden_sizes:
            layer = nn.MaskedLinear(previous_width, width, rng=rng)
            hidden_degrees = (np.arange(width) % max_hidden_degree) + 1
            mask = (hidden_degrees[None, :] >= previous_degrees[:, None]).astype(float)
            layer.set_mask(mask)
            self.layers.append(layer)
            previous_degrees = hidden_degrees
            previous_width = width

        self.output_layer = nn.MaskedLinear(previous_width, sum(output_widths), rng=rng)
        output_mask = (output_degrees[None, :] > previous_degrees[:, None]).astype(float)
        self.output_layer.set_mask(output_mask)
        self._output_slices = self._block_slices(output_widths)

    @staticmethod
    def _block_slices(widths: list[int]) -> list[slice]:
        slices = []
        offset = 0
        for width in widths:
            slices.append(slice(offset, offset + width))
            offset += width
        return slices

    def forward_logits(self, codes: np.ndarray) -> list[nn.Tensor]:
        codes = np.asarray(codes, dtype=np.int64)
        hidden = self.encoder(codes)
        for layer in self.layers:
            hidden = layer(hidden).relu()
        output = self.output_layer(hidden)
        logits = []
        for index, block in enumerate(self._output_slices):
            logits.append(self.encoder.decode_logits(index, output[:, block]))
        return logits
