"""Masked autoregressive MLP over relational tuples (architecture B, §4.3).

This is the model the paper defaults to: a multi-layer perceptron whose weight
matrices are multiplied by binary masks so that the output block of column
``i`` only receives information from the input blocks of columns appearing
*earlier* in the autoregressive order — the MADE construction of Germain et
al. adapted to grouped (per-column, possibly embedded) inputs and outputs.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.table import Table
from ..nn.autograd import rowwise_matmul_data
from .encoding import TupleEncoder

__all__ = ["AutoregressiveModel", "MADEModel"]


class AutoregressiveModel(nn.Module):
    """Interface shared by all Naru density models.

    A model maps a batch of integer-coded tuples to one probability
    distribution per column, conditioned on the values of the columns that
    precede it in :attr:`order`.  Both the training loop and the progressive
    sampler are written against this interface, so architectures are
    interchangeable (and the oracle model in :mod:`repro.core.oracle`
    implements the same protocol without a neural network).
    """

    def __init__(self, table: Table, order: list[int] | None = None) -> None:
        super().__init__()
        self.column_names = table.column_names
        self.domain_sizes_list = table.domain_sizes
        self.order = list(order) if order is not None else list(range(table.num_columns))
        if sorted(self.order) != list(range(table.num_columns)):
            raise ValueError("order must be a permutation of the column positions")

    @property
    def num_columns(self) -> int:
        return len(self.domain_sizes_list)

    def domain_sizes(self) -> list[int]:
        return list(self.domain_sizes_list)

    # -- protocol ------------------------------------------------------- #
    def forward_logits(self, codes: np.ndarray) -> list[nn.Tensor]:
        """Per-column logits ``(batch, |A_i|)`` for a batch of coded tuples."""
        raise NotImplementedError

    def nll(self, codes: np.ndarray) -> nn.Tensor:
        """Mean negative log-likelihood (nats per tuple) of a coded batch.

        This is the maximum-likelihood / cross-entropy training objective
        (Equation 2 of the paper).
        """
        codes = np.asarray(codes, dtype=np.int64)
        logits = self.forward_logits(codes)
        total = None
        for index, column_logits in enumerate(logits):
            log_probs = column_logits.log_softmax(axis=-1)
            picked = log_probs.gather(codes[:, index])
            total = picked if total is None else total + picked
        return -total.mean()

    def log_prob(self, codes: np.ndarray) -> np.ndarray:
        """Log probability (nats) of each tuple in a coded batch."""
        codes = np.asarray(codes, dtype=np.int64)
        with nn.no_grad():
            logits = self.forward_logits(codes)
            total = np.zeros(codes.shape[0])
            for index, column_logits in enumerate(logits):
                log_probs = column_logits.log_softmax(axis=-1).numpy()
                total += log_probs[np.arange(codes.shape[0]), codes[:, index]]
        return total

    def conditional_probs(self, column_index: int, codes: np.ndarray) -> np.ndarray:
        """``P(X_i | x_<i)`` for each row of a (partially filled) coded batch.

        Columns at or after ``column_index`` in the autoregressive order are
        ignored by construction, so their entries in ``codes`` may hold
        arbitrary placeholder values.

        The batch contract is row-independent: each output row depends only on
        the corresponding input row, so callers (the batched progressive
        sampler, the serving-layer conditional cache) are free to evaluate any
        subset of rows in any grouping — including the empty batch, which
        returns an empty ``(0, |A_i|)`` matrix without touching the network.

        Subclasses may override this with a fused fast path (see
        :meth:`MADEModel.conditional_probs`); the base implementation
        delegates to :meth:`conditional_probs_unfused`, the reference path.
        """
        return self.conditional_probs_unfused(column_index, codes)

    def conditional_probs_unfused(self, column_index: int,
                                  codes: np.ndarray) -> np.ndarray:
        """Reference path: run the *full* forward and slice out one column.

        Kept alongside any fused override both as the bit-exactness oracle of
        the serving tests and as the pre-fusion baseline the throughput
        benchmark's sequential mode measures against.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.shape[0] == 0:
            return np.empty((0, self.domain_sizes_list[column_index]))
        with nn.no_grad():
            logits = self.forward_logits(codes)[column_index]
            return np.exp(logits.log_softmax(axis=-1).numpy())


def _degrees_for_blocks(block_widths: list[int], block_degrees: list[int]) -> np.ndarray:
    """Expand per-block degrees to per-unit degrees."""
    return np.concatenate([
        np.full(width, degree, dtype=np.int64)
        for width, degree in zip(block_widths, block_degrees)
    ])


class MADEModel(AutoregressiveModel):
    """Masked multi-layer perceptron with grouped column blocks.

    Every matrix product in this model is *row-exact* (see
    :func:`repro.nn.autograd.rowwise_matmul_data`): an output row is a pure
    function of its input row, bit-identical for any batch composition.  That
    property is what lets the serving stack regroup rows freely — prefix
    deduplication in the progressive sampler, the conditional LRU cache and
    chunked dispatch all return the very bits of an unfused full-batch
    forward, so "drift 0.0" holds exactly rather than to round-off.

    :meth:`conditional_probs` additionally takes a *column-sliced* fast path:
    instead of multiplying the whole output layer and decoding every column's
    logit block, it slices the requested block's weight columns and decodes
    only that block.  Per-output-element dot products are independent, so the
    sliced result is bit-identical to the full forward;
    :meth:`forward_logits` computes its output blocks with the same sliced
    products, which makes the equality hold by construction (the test suite
    asserts it bit for bit).

    Parameters
    ----------
    table:
        Table whose joint distribution is being modelled (defines domains).
    hidden_sizes:
        Hidden-layer widths.
    embedding_threshold, embedding_dim:
        Encoding strategy thresholds, see :class:`TupleEncoder`.
    order:
        Autoregressive ordering of the columns (defaults to table order).
    seed:
        Weight-initialisation seed.
    """

    def __init__(self, table: Table, hidden_sizes: tuple[int, ...] = (128, 128),
                 embedding_threshold: int = 64, embedding_dim: int = 64,
                 order: list[int] | None = None, seed: int = 0) -> None:
        super().__init__(table, order=order)
        rng = np.random.default_rng(seed)
        self.encoder = TupleEncoder(table, embedding_threshold=embedding_threshold,
                                    embedding_dim=embedding_dim, rng=rng)
        self.hidden_sizes = tuple(hidden_sizes)

        input_widths = self.encoder.input_widths
        output_widths = self.encoder.output_widths
        # Degree of column c = 1 + its position in the autoregressive order.
        position = {column: index for index, column in enumerate(self.order)}
        column_degrees = [position[column] + 1 for column in range(self.num_columns)]

        input_degrees = _degrees_for_blocks(input_widths, column_degrees)
        output_degrees = _degrees_for_blocks(output_widths, column_degrees)

        max_hidden_degree = max(1, self.num_columns - 1)
        self.layers: list[nn.MaskedLinear] = []
        previous_degrees = input_degrees
        previous_width = sum(input_widths)
        for width in self.hidden_sizes:
            layer = nn.MaskedLinear(previous_width, width, rng=rng, row_exact=True)
            hidden_degrees = (np.arange(width) % max_hidden_degree) + 1
            mask = (hidden_degrees[None, :] >= previous_degrees[:, None]).astype(float)
            layer.set_mask(mask)
            self.layers.append(layer)
            previous_degrees = hidden_degrees
            previous_width = width

        self.output_layer = nn.MaskedLinear(previous_width, sum(output_widths),
                                            rng=rng, row_exact=True)
        output_mask = (output_degrees[None, :] > previous_degrees[:, None]).astype(float)
        self.output_layer.set_mask(output_mask)
        self._output_slices = self._block_slices(output_widths)
        self._input_slices = self._block_slices(input_widths)

    @staticmethod
    def _block_slices(widths: list[int]) -> list[slice]:
        slices = []
        offset = 0
        for width in widths:
            slices.append(slice(offset, offset + width))
            offset += width
        return slices

    def _first_hidden(self, codes: np.ndarray) -> nn.Tensor:
        """First hidden activations computed as per-column table lookups.

        The first layer's input is a concatenation of per-column blocks that
        are each a pure function of one column's code (a one-hot vector or an
        embedding row), so its pre-activation decomposes into a sum of
        per-column contributions::

            h_pre[row] = sum_c T_c[codes[row, c]] + b,
            T_c = E_c @ W_c          (embedded columns)
            T_c = masked W rows of c (one-hot columns)

        Each table ``T_c`` is a small ``(|A_c|, hidden)`` matrix that does not
        depend on the batch at all, and the per-row work collapses to one row
        gather per column plus elementwise adds — no wide matmul, no one-hot
        materialisation.  Gathers and elementwise sums are trivially
        row-exact, so this preserves the model's bit-exact regrouping
        guarantee while replacing its single most expensive product.
        """
        layer = self.layers[0]
        masked = layer.weight * nn.Tensor(layer.mask)
        total: nn.Tensor | None = None
        for index, codec in enumerate(self.encoder.codecs):
            block = masked[self._input_slices[index]]
            if codec.use_embedding:
                block = self.encoder.embeddings[index].weight @ block
            contribution = block.take_rows(codes[:, index])
            total = contribution if total is None else total + contribution
        return (total + layer.bias).relu()

    def forward_logits(self, codes: np.ndarray) -> list[nn.Tensor]:
        codes = np.asarray(codes, dtype=np.int64)
        if self.layers:
            hidden = self._first_hidden(codes)
            for layer in self.layers[1:]:
                hidden = layer(hidden).relu()
        else:
            hidden = self.encoder(codes)
        # The output layer is applied one column block at a time: each block's
        # logits are the product with that block's weight columns alone, the
        # same sliced computation the conditional_probs fast path performs —
        # so sliced and full forwards agree bit for bit by construction.
        weight = self.output_layer.weight
        mask = self.output_layer.mask
        bias = self.output_layer.bias
        logits = []
        for index, block in enumerate(self._output_slices):
            masked_block = weight[:, block] * nn.Tensor(mask[:, block])
            block_out = hidden.rowwise_matmul(masked_block) + bias[block]
            logits.append(self.encoder.decode_logits(index, block_out,
                                                     row_exact=True))
        return logits

    # -- fused serving path -------------------------------------------- #
    def _encode_data(self, codes: np.ndarray) -> np.ndarray:
        """Raw-numpy mirror of ``self.encoder(codes)`` (bit-identical)."""
        blocks = []
        for index, codec in enumerate(self.encoder.codecs):
            column_codes = codes[:, index]
            if codec.use_embedding:
                blocks.append(self.encoder.embeddings[index].weight.data[column_codes])
            else:
                one_hot = np.zeros((column_codes.size, codec.domain_size))
                one_hot[np.arange(column_codes.size), column_codes] = 1.0
                blocks.append(one_hot)
        return np.concatenate(blocks, axis=1)

    def conditional_probs(self, column_index: int, codes: np.ndarray) -> np.ndarray:
        """Column-sliced fast path: compute only the requested block.

        Mirrors the full :meth:`forward_logits` pass in raw numpy, but slices
        the output layer down to the requested column's weight columns and
        decodes only that block — per-output-element dot products are
        independent, so the result is bit-identical to running the whole
        forward and discarding every other block, at a fraction of the cost.
        The batch contract documented on the base class holds exactly: every
        product is row-exact, so any regrouping of rows returns the same bits.
        """
        codes = np.asarray(codes, dtype=np.int64)
        domain = self.domain_sizes_list[column_index]
        if codes.shape[0] == 0:
            return np.empty((0, domain))
        if self.layers:
            # Raw-numpy mirror of _first_hidden: identical table construction
            # (same elementwise mask product, same matmuls), identical gather
            # and summation order, hence bit-identical activations.
            first = self.layers[0]
            masked = first.weight.data * first.mask
            # The accumulator is updated in place once it owns a fresh 2-D
            # buffer (a fancy-indexed gather always copies): ``np.add(a, b,
            # out=a)`` performs the very same addition as ``a + b`` — the
            # values, and hence the bits, are identical — it just skips one
            # temporary per column, which is most of this loop's bandwidth.
            total: np.ndarray | None = None
            owned = False
            for index, codec in enumerate(self.encoder.codecs):
                table = masked[self._input_slices[index]]
                if codec.use_embedding:
                    table = self.encoder.embeddings[index].weight.data @ table
                column_codes = codes[:, index]
                if (column_codes == column_codes[0]).all():
                    # Shared code across the batch (typically a column the
                    # sampler has not reached yet, still at its placeholder):
                    # one broadcast row adds the very same addends as the
                    # full gather would, at none of its bandwidth.
                    contribution = table[column_codes[0]]
                else:
                    contribution = table[column_codes]
                if total is None:
                    total = contribution
                    owned = contribution.ndim == 2
                elif owned:
                    np.add(total, contribution, out=total)
                else:
                    total = total + contribution
                    owned = total.ndim == 2
            if owned:
                np.add(total, first.bias.data, out=total)
                pre = total
            else:
                pre = total + first.bias.data
            if pre.ndim == 1:
                pre = np.broadcast_to(pre, (codes.shape[0], pre.size))
                hidden = pre * (pre > 0)
            else:
                np.multiply(pre, pre > 0, out=pre)
                hidden = pre
            for layer in self.layers[1:]:
                pre = rowwise_matmul_data(hidden, layer.weight.data * layer.mask)
                np.add(pre, layer.bias.data, out=pre)
                np.multiply(pre, pre > 0, out=pre)
                hidden = pre
        else:
            hidden = self._encode_data(codes)
        block = self._output_slices[column_index]
        out = self.output_layer
        masked_block = out.weight.data[:, block] * out.mask[:, block]
        logits = rowwise_matmul_data(hidden, masked_block)
        np.add(logits, out.bias.data[block], out=logits)
        codec = self.encoder.codecs[column_index]
        if codec.use_embedding:
            logits = rowwise_matmul_data(
                logits, self.encoder.embeddings[column_index].weight.data.T)
        np.subtract(logits, logits.max(axis=-1, keepdims=True), out=logits)
        log_probs = np.subtract(
            logits, np.log(np.exp(logits).sum(axis=-1, keepdims=True)),
            out=logits)
        return np.exp(log_probs, out=log_probs)
