"""The Naru estimator: a deep likelihood model plus progressive sampling.

This is the package's headline public API.  ``NaruEstimator`` wires together
the pieces described in the paper:

* an autoregressive density model over the dictionary-encoded relation
  (masked MLP by default, per-column networks optionally — §3.2/§4.3),
* column encoding/decoding strategies (§4.2),
* unsupervised maximum-likelihood training (§4.1),
* query answering by exact enumeration for small regions and progressive
  sampling for everything else (§5).
"""

from __future__ import annotations

import numpy as np

from ..data.table import Table
from ..estimators.base import CardinalityEstimator
from ..query.predicates import DNFQuery, Query
from ..query.shapes import QueryShape, query_shape
from .column_nets import ColumnNetworkModel
from .config import NaruConfig
from .made import MADEModel
from .progressive import ProgressiveSampler, UniformRegionSampler, enumerate_region
from .training import Trainer, TrainingHistory

__all__ = ["NaruEstimator"]


class NaruEstimator(CardinalityEstimator):
    """Deep unsupervised cardinality estimator (Naru).

    Parameters
    ----------
    table:
        The relation to summarise.  Only its tuples are read; no queries or
        feedback are needed.
    config:
        Hyper-parameters; see :class:`repro.core.config.NaruConfig`.

    Examples
    --------
    >>> from repro.data import make_census
    >>> from repro.core import NaruEstimator, NaruConfig
    >>> from repro.query import Query
    >>> table = make_census(num_rows=2000)
    >>> naru = NaruEstimator(table, NaruConfig(epochs=1, hidden_sizes=(32, 32)))
    >>> _ = naru.fit()
    >>> query = Query.from_tuples([("sex", "=", "sex_0"), ("age", "<=", 40)])
    >>> 0.0 <= naru.estimate_selectivity(query) <= 1.0
    True
    """

    def __init__(self, table: Table, config: NaruConfig | None = None) -> None:
        super().__init__(table)
        self.config = config or NaruConfig()
        self.name = f"Naru-{self.config.progressive_samples}"
        order = list(self.config.column_order) if self.config.column_order else None

        if self.config.architecture == "made":
            self.model = MADEModel(
                table,
                hidden_sizes=self.config.hidden_sizes,
                embedding_threshold=self.config.embedding_threshold,
                embedding_dim=self.config.embedding_dim,
                order=order,
                seed=self.config.seed,
            )
        else:
            self.model = ColumnNetworkModel(
                table,
                hidden_sizes=self.config.hidden_sizes,
                embedding_threshold=self.config.embedding_threshold,
                embedding_dim=self.config.embedding_dim,
                order=order,
                seed=self.config.seed,
            )

        self.trainer = Trainer(self.model, table,
                               batch_size=self.config.batch_size,
                               learning_rate=self.config.learning_rate,
                               seed=self.config.seed)
        self._sampler = ProgressiveSampler(self.model, seed=self.config.seed)
        self._uniform_sampler = UniformRegionSampler(self.model, seed=self.config.seed)
        self._fitted = False

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, epochs: int | None = None,
            track_entropy_gap: bool = False) -> TrainingHistory:
        """Train the likelihood model with maximum likelihood (Equation 2).

        Parameters
        ----------
        epochs:
            Number of passes over the data; defaults to ``config.epochs``.
        track_entropy_gap:
            Record the entropy gap after each epoch (slower; used by the
            Figure 5 reproduction).
        """
        history = self.trainer.train(epochs if epochs is not None else self.config.epochs,
                                     track_entropy_gap=track_entropy_gap)
        self._fitted = True
        return history

    def refresh(self, codes: np.ndarray, epochs: int = 1) -> TrainingHistory:
        """Fine-tune the existing model on (new) dictionary-encoded tuples.

        Used after data ingests (§6.7.3): the model keeps its weights and
        receives additional gradient updates on samples from the updated
        relation.  ``codes`` must be encoded with the same dictionaries the
        estimator was built with.
        """
        for _ in range(epochs):
            self.trainer.train_epoch(codes=np.asarray(codes, dtype=np.int64))
        return self.trainer.history

    def entropy_gap_bits(self, sample_rows: int | None = 4096) -> float:
        """Goodness-of-fit: KL divergence from the data in bits (§3.3)."""
        return self.trainer.entropy_gap_bits(sample_rows=sample_rows)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def capabilities(self) -> frozenset[QueryShape]:
        """Shapes Naru serves: conjunctions, prefixes, bounded disjunctions.

        ``LIKE 'x%'`` reduces to a valid-code mask, so prefixes ride the
        ordinary conjunctive machinery.  Disjunctions are answered by
        inclusion–exclusion over conjunctive terms, bounded by
        ``config.max_dnf_branches`` (see :meth:`can_serve`).
        """
        return frozenset({QueryShape.CONJUNCTIVE, QueryShape.PREFIX,
                          QueryShape.DISJUNCTIVE})

    def can_serve(self, query: "Query | DNFQuery") -> bool:
        """Shape capability plus the inclusion–exclusion branch budget.

        The expansion of a ``k``-branch disjunction has ``2^k − 1``
        conjunctive terms; disjunctions wider than
        ``config.max_dnf_branches`` are refused so the serving layer routes
        them to a fallback estimator instead of paying an exponential
        expansion.
        """
        if not super().can_serve(query):
            return False
        if isinstance(query, DNFQuery):
            return len(query.branches) <= self.config.max_dnf_branches
        return True

    def estimate_selectivity(self, query: "Query | DNFQuery",
                             num_samples: int | None = None,
                             method: str = "auto") -> float:
        """Estimate the selectivity of a query.

        Parameters
        ----------
        query:
            The query; unfiltered columns are treated as wildcards.  A
            :class:`~repro.query.predicates.DNFQuery` is answered by
            inclusion–exclusion: each signed expansion term is a plain
            conjunction estimated with the same ``num_samples``/``method``.
        num_samples:
            Progressive-sampling paths; defaults to ``config.progressive_samples``.
        method:
            ``"auto"`` (enumerate small regions, sample otherwise),
            ``"progressive"``, ``"enumerate"`` or ``"uniform"`` (the naive
            region sampler, kept for ablations).
        """
        if isinstance(query, DNFQuery):
            if len(query.branches) == 1:
                return self.estimate_selectivity(query.branches[0],
                                                 num_samples, method)
            return self._inclusion_exclusion(
                query, lambda term: self.estimate_selectivity(
                    term, num_samples, method))
        if not self._fitted:
            raise RuntimeError("call fit() before estimating queries")
        masks = query.column_masks(self.table)
        samples = num_samples or self.config.progressive_samples

        if method == "auto":
            region = query.region_size(self.table)
            method = ("enumerate" if region <= self.config.enumeration_threshold
                      else "progressive")
        if method == "enumerate":
            estimate = enumerate_region(self.model, masks,
                                        max_points=max(self.config.enumeration_threshold,
                                                       2048))
        elif method == "progressive":
            estimate = self._sampler.estimate_selectivity(masks, num_samples=samples)
        elif method == "uniform":
            estimate = self._uniform_sampler.estimate_selectivity(masks,
                                                                  num_samples=samples)
        else:
            raise ValueError(f"unknown estimation method {method!r}")
        return float(min(max(estimate, 0.0), 1.0))

    def estimate_selectivity_batch(self, queries: list[Query],
                                   num_samples: int | None = None,
                                   rngs: list[np.random.Generator] | None = None
                                   ) -> np.ndarray:
        """Estimate many queries with shared progressive-sampling passes.

        All queries are packed into one batched sampler run (see
        :meth:`repro.core.progressive.ProgressiveSampler.estimate_selectivity_batch`),
        so the whole batch costs at most ``num_columns`` model forward rounds.
        A batch of one is exactly the sequential progressive path.  For
        workload-scale serving with micro-batching and conditional caching use
        :class:`repro.serve.EstimationEngine`, which feeds this same machinery.

        Parameters
        ----------
        queries:
            The queries to estimate (always via progressive sampling).
        num_samples:
            Sample paths per query; defaults to ``config.progressive_samples``.
        rngs:
            Optional per-query random generators (used by the serving engine
            to make estimates independent of micro-batch boundaries).

        Returns
        -------
        numpy.ndarray
            One selectivity in ``[0, 1]`` per query, in input order.
        """
        if not self._fitted:
            raise RuntimeError("call fit() before estimating queries")
        masks_batch = [query.column_masks(self.table) for query in queries]
        samples = num_samples or self.config.progressive_samples
        estimates = self._sampler.estimate_selectivity_batch(
            masks_batch, num_samples=samples, rngs=rngs)
        return np.clip(estimates, 0.0, 1.0)

    def point_likelihood(self, values: dict[str, object]) -> float:
        """Probability of one fully specified tuple (equality on every column).

        This is the straightforward point-density use of the likelihood model
        (§5, "Equality Predicates"): a single forward pass.
        """
        known = set(self.table.column_names)
        unknown = sorted(set(values) - known)
        if unknown:
            raise ValueError(
                f"point query names columns not in table "
                f"{self.table.name!r}: {unknown}")
        missing = sorted(known - set(values))
        if missing:
            raise ValueError(f"point queries must specify every column; missing {missing}")
        codes = np.zeros((1, self.table.num_columns), dtype=np.int64)
        for name, value in values.items():
            column = self.table.column(name)
            codes[0, self.table.column_index(name)] = column.value_to_code(value)
        return float(np.exp(self.model.log_prob(codes))[0])

    # ------------------------------------------------------------------ #
    def size_bytes(self) -> int:
        """Model size (float32 weights), the quantity the storage budget caps."""
        return self.model.size_bytes()
