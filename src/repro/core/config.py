"""Configuration objects for building Naru estimators."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NaruConfig"]


@dataclass
class NaruConfig:
    """Hyper-parameters of a :class:`repro.core.estimator.NaruEstimator`.

    The defaults mirror the paper's choices scaled to CPU training: a masked
    multi-layer perceptron (architecture B, §4.3), one-hot input encoding for
    domains up to 64 values and 64-dimensional embeddings with embedding-reuse
    decoding above that, trained with Adam on the maximum-likelihood objective.

    Attributes
    ----------
    hidden_sizes:
        Widths of the hidden layers of the autoregressive network.
    architecture:
        ``"made"`` for the masked autoencoder (architecture B) or ``"column"``
        for the per-column-network design of §3.2 (architecture A).
    embedding_threshold:
        Domains strictly larger than this use embedding encoding/decoding.
    embedding_dim:
        Width ``h`` of the learned embeddings (input and reuse decoding).
    epochs, batch_size, learning_rate:
        Training-loop parameters for the unsupervised maximum-likelihood fit.
    progressive_samples:
        Default number of progressive-sampling paths per query.
    enumeration_threshold:
        Query regions with at most this many points are answered by exact
        enumeration through the model instead of sampling (§5).
    max_dnf_branches:
        Largest disjunction (branch count of a
        :class:`repro.query.predicates.DNFQuery`) the estimator answers by
        inclusion–exclusion.  The expansion has ``2^k − 1`` conjunctive
        terms, so wider disjunctions are declared unservable
        (:meth:`~repro.core.estimator.NaruEstimator.can_serve` returns
        ``False``) and the serving layer routes them to a fallback
        estimator instead.
    column_order:
        Optional explicit autoregressive ordering (list of column positions);
        defaults to the table order, as in the paper.
    seed:
        Seed controlling weight initialisation, batching and sampling.
    """

    hidden_sizes: tuple[int, ...] = (128, 128, 128)
    architecture: str = "made"
    embedding_threshold: int = 64
    embedding_dim: int = 64
    epochs: int = 10
    batch_size: int = 512
    learning_rate: float = 5e-3
    progressive_samples: int = 1000
    enumeration_threshold: int = 2000
    max_dnf_branches: int = 4
    column_order: tuple[int, ...] | None = None
    seed: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.architecture not in ("made", "column"):
            raise ValueError(f"unknown architecture {self.architecture!r}")
        if not self.hidden_sizes:
            raise ValueError("at least one hidden layer is required")
        if self.embedding_dim < 1 or self.embedding_threshold < 1:
            raise ValueError("embedding parameters must be positive")
        if self.epochs < 0 or self.batch_size < 1:
            raise ValueError("invalid training parameters")
        if self.progressive_samples < 1:
            raise ValueError("progressive_samples must be positive")
        if self.max_dnf_branches < 1:
            raise ValueError("max_dnf_branches must be positive")

    def with_overrides(self, **kwargs) -> "NaruConfig":
        """Return a copy of the config with the given fields replaced."""
        values = {**self.__dict__, **kwargs}
        values.pop("extra", None)
        return NaruConfig(extra=dict(self.extra), **values)
