"""Column encoding and decoding strategies (§4.2 of the paper).

Every column is dictionary-encoded by the data substrate; this module maps
those integer codes into neural-network inputs and maps network outputs back
into per-domain probability distributions:

* **Small domains** (``|A_i| ≤ threshold``, default 64): one-hot input
  encoding and a direct fully-connected output head of width ``|A_i|``.
* **Large domains**: a learned embedding matrix ``E_i ∈ R^{|A_i| × h}`` is used
  for the input, and the *same* matrix decodes the output ("embedding reuse"):
  the network produces an ``h``-dimensional feature vector ``H`` and the logits
  are ``H E_iᵀ``, cutting the output-head cost from ``O(|A_i|)`` to ``O(h)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..data.table import Table

__all__ = ["ColumnCodec", "TupleEncoder"]


@dataclass(frozen=True)
class ColumnCodec:
    """Per-column encoding/decoding decision.

    Attributes
    ----------
    name:
        Column name.
    domain_size:
        ``|A_i|``.
    use_embedding:
        Whether the column uses embedding encoding (and embedding-reuse
        decoding) instead of one-hot / direct softmax.
    input_width:
        Width of the column's block in the concatenated network input.
    output_width:
        Width of the column's block in the network output (``|A_i|`` for the
        direct head, ``h`` for embedding reuse).
    """

    name: str
    domain_size: int
    use_embedding: bool
    input_width: int
    output_width: int


class TupleEncoder(nn.Module):
    """Encodes integer-coded tuples into the network input representation.

    The encoder owns the per-column embedding tables; the same tables are
    handed to the model's output stage for embedding-reuse decoding.
    """

    def __init__(self, table: Table, embedding_threshold: int = 64,
                 embedding_dim: int = 64,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embedding_threshold = embedding_threshold
        self.embedding_dim = embedding_dim
        self.codecs: list[ColumnCodec] = []
        self.embeddings: list[nn.Embedding | None] = []
        for column in table.columns:
            use_embedding = column.domain_size > embedding_threshold
            width = embedding_dim if use_embedding else column.domain_size
            self.codecs.append(ColumnCodec(
                name=column.name,
                domain_size=column.domain_size,
                use_embedding=use_embedding,
                input_width=width,
                output_width=embedding_dim if use_embedding else column.domain_size,
            ))
            self.embeddings.append(
                nn.Embedding(column.domain_size, embedding_dim, rng=rng)
                if use_embedding else None)

    # ------------------------------------------------------------------ #
    @property
    def num_columns(self) -> int:
        return len(self.codecs)

    @property
    def input_widths(self) -> list[int]:
        """Per-column widths of the concatenated input encoding."""
        return [codec.input_width for codec in self.codecs]

    @property
    def output_widths(self) -> list[int]:
        """Per-column widths of the network's output blocks."""
        return [codec.output_width for codec in self.codecs]

    @property
    def total_input_width(self) -> int:
        return sum(self.input_widths)

    def domain_sizes(self) -> list[int]:
        return [codec.domain_size for codec in self.codecs]

    # ------------------------------------------------------------------ #
    def encode_column(self, column_index: int, codes: np.ndarray) -> nn.Tensor:
        """Encode one column's codes into its input block ``(batch, width)``."""
        codec = self.codecs[column_index]
        codes = np.asarray(codes, dtype=np.int64)
        if codec.use_embedding:
            return self.embeddings[column_index](codes)
        one_hot = np.zeros((codes.size, codec.domain_size))
        one_hot[np.arange(codes.size), codes] = 1.0
        return nn.Tensor(one_hot)

    def forward(self, codes: np.ndarray) -> nn.Tensor:
        """Encode a batch of tuples ``(batch, num_columns)`` into the input."""
        codes = np.asarray(codes, dtype=np.int64)
        blocks = [self.encode_column(index, codes[:, index])
                  for index in range(self.num_columns)]
        return nn.concatenate(blocks, axis=1)

    # ------------------------------------------------------------------ #
    def decode_logits(self, column_index: int, output_block: nn.Tensor,
                      row_exact: bool = False) -> nn.Tensor:
        """Turn a column's output block into logits over its domain.

        For small domains the block already *is* the logits; for large domains
        the block is an ``h``-dimensional feature vector multiplied with the
        (shared) embedding matrix — the embedding-reuse optimisation.  With
        ``row_exact=True`` that product is computed row by row
        (:meth:`repro.nn.autograd.Tensor.rowwise_matmul`), so decoded logits
        are bit-identical for any batch composition — required by models whose
        serving path regroups rows (see :class:`repro.core.made.MADEModel`).
        """
        codec = self.codecs[column_index]
        if not codec.use_embedding:
            return output_block
        embedding = self.embeddings[column_index]
        if row_exact:
            return output_block.rowwise_matmul(embedding.weight.T)
        return output_block @ embedding.weight.T
