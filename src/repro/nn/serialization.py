"""Saving and loading model weights as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from .modules import Module

__all__ = ["save_state_dict", "load_state_dict", "save_module", "load_into_module"]


def save_state_dict(state: dict[str, np.ndarray], path: str | os.PathLike) -> None:
    """Write a name → array mapping to ``path`` as a compressed ``.npz``."""
    arrays = {name: np.asarray(value) for name, value in state.items()}
    np.savez_compressed(path, **arrays)


def load_state_dict(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Serialise all parameters of ``module`` to ``path``."""
    save_state_dict(module.state_dict(), path)


def load_into_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters from ``path`` into ``module`` (in place) and return it."""
    module.load_state_dict(load_state_dict(path))
    return module


def state_dict_num_bytes(state: dict[str, Any], bytes_per_weight: int = 4) -> int:
    """Approximate storage footprint of a state dict at float32 precision."""
    return sum(np.asarray(value).size for value in state.values()) * bytes_per_weight
