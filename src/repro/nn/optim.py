"""Gradient-descent optimisers for the NumPy neural-network substrate."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: holds parameters and implements ``zero_grad``."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimiser [Kingma & Ba 2015] — the optimiser used by the paper."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 2e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
