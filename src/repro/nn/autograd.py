"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the lowest layer of the neural-network substrate used by the
Naru reproduction.  The paper's reference implementation relies on PyTorch;
this environment has no deep-learning framework installed, so we provide a
small, well-tested tensor engine with exactly the operations the estimator
needs: broadcasting arithmetic, matrix products, ReLU, log/exp, reductions,
stable ``log_softmax``, row gathering for embeddings, and concatenation.

The design follows the classic tape-based approach: every operation returns a
new :class:`Tensor` holding the forward value plus a closure that accumulates
gradients into its parents.  Calling :meth:`Tensor.backward` topologically
sorts the graph and runs the closures in reverse order.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "rowwise_matmul_data"]

_GRAD_ENABLED = True


def rowwise_matmul_data(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` evaluated one row of ``a`` at a time (row-exact matmul).

    BLAS gemm kernels pick different instruction blockings for different
    batch sizes, so ``(a @ b)[rows]`` and ``a[rows] @ b`` can disagree in the
    last ulp — which breaks any scheme that evaluates a *subset* of rows and
    expects the bits of the full evaluation (prefix deduplication, the
    conditional LRU cache, chunked dispatch).  This kernel instead maps the
    gufunc form of :func:`numpy.matmul` over the rows, so each output row is
    the standalone ``(1, k) @ (k, n)`` product of its input row alone: the
    result is a pure per-row function, identical for any batch composition,
    at ~1-2x the cost of one fused gemm.
    """
    if a.shape[0] == 0:
        return np.empty((0, b.shape[1]))
    expanded = np.broadcast_to(b, (a.shape[0],) + b.shape)
    return np.matmul(a[:, None, :], expanded)[:, 0, :]


class no_grad:
    """Context manager that disables graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether new operations are recorded on the autodiff tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A NumPy array with an optional gradient and autodiff history.

    Parameters
    ----------
    data:
        Array-like forward value.  Stored as ``float64`` for numerical
        robustness (the models here are small, so memory is not a concern).
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """Return the forward value as a NumPy array (shared, do not mutate)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() only works on single-element tensors")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------ #
    # Graph plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[["Tensor"], None] | None) -> "Tensor":
        """Create a result tensor wired into the graph if grad is enabled."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires and backward is not None:
            out._parents = tuple(parents)
            out._backward = lambda: backward(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float64))

        # Topological order via iterative DFS (avoids recursion limits).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(out: Tensor) -> None:
            a._accumulate(_unbroadcast(out.grad, a.shape))
            b._accumulate(_unbroadcast(out.grad, b.shape))

        return self._make(a.data + b.data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self

        def backward(out: Tensor) -> None:
            a._accumulate(-out.grad)

        return self._make(-a.data, (a,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(out: Tensor) -> None:
            a._accumulate(_unbroadcast(out.grad * b.data, a.shape))
            b._accumulate(_unbroadcast(out.grad * a.data, b.shape))

        return self._make(a.data * b.data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("only scalar exponents are supported")
        a = self
        value = a.data ** exponent

        def backward(out: Tensor) -> None:
            a._accumulate(out.grad * exponent * a.data ** (exponent - 1.0))

        return self._make(value, (a,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        a, b = self, other

        def backward(out: Tensor) -> None:
            a._accumulate(out.grad @ b.data.T)
            b._accumulate(a.data.T @ out.grad)

        return self._make(a.data @ b.data, (a, b), backward)

    __matmul__ = matmul

    def rowwise_matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product computed row by row, see :func:`rowwise_matmul_data`.

        Forward values are bit-identical for any grouping of the rows of
        ``self`` (unlike :meth:`matmul`, whose BLAS kernel rounds differently
        per batch size); gradients are the ordinary matmul gradients.
        """
        other = self._coerce(other)
        a, b = self, other

        def backward(out: Tensor) -> None:
            a._accumulate(out.grad @ b.data.T)
            b._accumulate(a.data.T @ out.grad)

        return self._make(rowwise_matmul_data(a.data, b.data), (a, b), backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0

        def backward(out: Tensor) -> None:
            a._accumulate(out.grad * mask)

        return self._make(a.data * mask, (a,), backward)

    def exp(self) -> "Tensor":
        a = self
        value = np.exp(a.data)

        def backward(out: Tensor) -> None:
            a._accumulate(out.grad * value)

        return self._make(value, (a,), backward)

    def log(self) -> "Tensor":
        a = self

        def backward(out: Tensor) -> None:
            a._accumulate(out.grad / a.data)

        return self._make(np.log(a.data), (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        value = np.tanh(a.data)

        def backward(out: Tensor) -> None:
            a._accumulate(out.grad * (1.0 - value ** 2))

        return self._make(value, (a,), backward)

    def sigmoid(self) -> "Tensor":
        a = self
        value = 1.0 / (1.0 + np.exp(-a.data))

        def backward(out: Tensor) -> None:
            a._accumulate(out.grad * value * (1.0 - value))

        return self._make(value, (a,), backward)

    # ------------------------------------------------------------------ #
    # Reductions and shape ops
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        a = self
        value = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            a._accumulate(np.broadcast_to(grad, a.shape).copy())

        return self._make(value, (a,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else np.prod(
            [self.shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))])
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        original = a.shape

        def backward(out: Tensor) -> None:
            a._accumulate(out.grad.reshape(original))

        return self._make(a.data.reshape(shape), (a,), backward)

    def transpose(self) -> "Tensor":
        a = self

        def backward(out: Tensor) -> None:
            a._accumulate(out.grad.T)

        return self._make(a.data.T, (a,), backward)

    def __getitem__(self, key) -> "Tensor":
        a = self

        def backward(out: Tensor) -> None:
            grad = np.zeros_like(a.data)
            np.add.at(grad, key, out.grad)
            a._accumulate(grad)

        return self._make(a.data[key], (a,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Row lookup (embedding gather): ``out[j] = self[indices[j]]``."""
        a = self
        idx = np.asarray(indices, dtype=np.int64)

        def backward(out: Tensor) -> None:
            grad = np.zeros_like(a.data)
            np.add.at(grad, idx, out.grad)
            a._accumulate(grad)

        return self._make(a.data[idx], (a,), backward)

    def gather(self, indices: np.ndarray) -> "Tensor":
        """Pick one element per row: ``out[j] = self[j, indices[j]]``."""
        a = self
        idx = np.asarray(indices, dtype=np.int64)
        rows = np.arange(a.shape[0])

        def backward(out: Tensor) -> None:
            grad = np.zeros_like(a.data)
            np.add.at(grad, (rows, idx), out.grad)
            a._accumulate(grad)

        return self._make(a.data[rows, idx], (a,), backward)

    # ------------------------------------------------------------------ #
    # Softmax family (numerically stable, fused backward)
    # ------------------------------------------------------------------ #
    def log_softmax(self, axis: int = -1) -> "Tensor":
        a = self
        shifted = a.data - a.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        value = shifted - log_norm
        softmax = np.exp(value)

        def backward(out: Tensor) -> None:
            grad = out.grad - softmax * out.grad.sum(axis=axis, keepdims=True)
            a._accumulate(grad)

        return self._make(value, (a,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()

    # ------------------------------------------------------------------ #
    # Structural ops
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        sizes = [t.shape[axis] for t in tensors]
        value = np.concatenate([t.data for t in tensors], axis=axis)

        def backward(out: Tensor) -> None:
            offset = 0
            for tensor, size in zip(tensors, sizes):
                slicer = [slice(None)] * out.grad.ndim
                slicer[axis] = slice(offset, offset + size)
                tensor._accumulate(out.grad[tuple(slicer)])
                offset += size

        return Tensor._make(value, tensors, backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor equal to ``self`` where ``mask`` is False, else ``value``."""
        a = self
        mask = np.asarray(mask, dtype=bool)
        out_value = np.where(mask, value, a.data)

        def backward(out: Tensor) -> None:
            a._accumulate(np.where(mask, 0.0, out.grad))

        return self._make(out_value, (a,), backward)


def concatenate(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Module-level alias of :meth:`Tensor.concatenate`."""
    return Tensor.concatenate(tensors, axis=axis)
