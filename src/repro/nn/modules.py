"""Neural-network building blocks (the ``nn.Module`` layer of the substrate).

Provides the module abstraction plus the layers Naru needs: dense layers,
*masked* dense layers (the core of the MADE autoregressive architecture),
embedding tables, dropout and small containers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from . import init
from .autograd import Tensor

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "MaskedLinear",
    "Embedding",
    "ReLU",
    "Dropout",
    "Sequential",
]


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for optimisation and
    (de)serialisation, mirroring the PyTorch API the paper's code relies on.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # Parameter / submodule discovery
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs for this module and its children."""
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{index}.")
                    elif isinstance(item, Parameter):
                        yield f"{full_name}.{index}", item

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters of the module tree."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters (used for storage budgets)."""
        return sum(param.size for param in self.parameters())

    def size_bytes(self, bytes_per_weight: int = 4) -> int:
        """Approximate serialized model size, assuming float32 storage."""
        return self.num_parameters() * bytes_per_weight

    # ------------------------------------------------------------------ #
    # Train / eval mode
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Return a name → array mapping of all parameters (copies)."""
        return OrderedDict((name, param.data.copy())
                           for name, param in self.named_parameters())

    def load_state_dict(self, state: dict) -> None:
        """Load parameter values from :meth:`state_dict` output."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {param.data.shape}, got {value.shape}")
            param.data = value

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class MaskedLinear(Module):
    """Dense layer whose weight matrix is elementwise-multiplied by a fixed mask.

    This is the building block of MADE [Germain et al. 2015]: the binary mask
    zeroes the connections that would violate the autoregressive property.

    With ``row_exact=True`` the forward product is computed row by row
    (:meth:`repro.nn.autograd.Tensor.rowwise_matmul`), which makes every
    output row a pure function of its input row — bit-identical no matter how
    the batch is composed.  Serving-side optimisations that re-group rows
    (prefix deduplication, conditional caching, chunked dispatch) rely on
    this; it costs a modest constant factor over the fused BLAS product.
    """

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True, rng: np.random.Generator | None = None,
                 row_exact: bool = False) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.row_exact = row_exact
        self.weight = Parameter(init.kaiming_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        # The mask is a buffer, not a parameter: it is never trained.
        self.mask = np.ones((in_features, out_features))

    def set_mask(self, mask: np.ndarray) -> None:
        """Install the autoregressive connectivity mask (shape ``in × out``)."""
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != (self.in_features, self.out_features):
            raise ValueError(
                f"mask shape {mask.shape} does not match layer "
                f"({self.in_features}, {self.out_features})")
        self.mask = mask

    def forward(self, x: Tensor) -> Tensor:
        masked_weight = self.weight * Tensor(self.mask)
        if self.row_exact:
            out = x.rowwise_matmul(masked_weight)
        else:
            out = x @ masked_weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Used both for *input* encoding of large-domain columns and, via weight
    tying, for the *embedding reuse* decoding optimisation (§4.2 of the paper).
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=0.1))

    def forward(self, indices: np.ndarray) -> Tensor:
        return self.weight.take_rows(np.asarray(indices, dtype=np.int64))


class ReLU(Module):
    """Rectified linear unit as a module (for use inside ``Sequential``)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Dropout(Module):
    """Inverted dropout; identity when the module is in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)
