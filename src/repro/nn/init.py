"""Weight-initialisation helpers for the NumPy neural-network substrate."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "normal", "zeros"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    fan_in, fan_out = shape[0], shape[-1]
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation, suited for ReLU networks."""
    fan_in = shape[0]
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator,
           std: float = 0.02) -> np.ndarray:
    """Zero-mean Gaussian initialisation (used for embedding matrices)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape)
