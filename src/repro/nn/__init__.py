"""NumPy-based neural-network substrate used by the Naru reproduction.

The original system is built on PyTorch; this package provides the equivalent
pieces from scratch so the estimator is self-contained:

* :mod:`repro.nn.autograd` — reverse-mode autodiff tensors,
* :mod:`repro.nn.modules` — layers (``Linear``, ``MaskedLinear``, ``Embedding`` …),
* :mod:`repro.nn.functional` — activations and losses,
* :mod:`repro.nn.optim` — SGD and Adam,
* :mod:`repro.nn.serialization` — ``.npz`` model checkpoints.
"""

from .autograd import Tensor, concatenate, no_grad, rowwise_matmul_data
from .functional import (
    binary_cross_entropy,
    cross_entropy,
    log_softmax,
    mse_loss,
    nll_loss,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from .modules import (
    Dropout,
    Embedding,
    Linear,
    MaskedLinear,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from .optim import SGD, Adam, Optimizer
from .serialization import (
    load_into_module,
    load_state_dict,
    save_module,
    save_state_dict,
)

__all__ = [
    "Tensor",
    "no_grad",
    "concatenate",
    "rowwise_matmul_data",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "binary_cross_entropy",
    "Module",
    "Parameter",
    "Linear",
    "MaskedLinear",
    "Embedding",
    "ReLU",
    "Dropout",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "save_state_dict",
    "load_state_dict",
    "save_module",
    "load_into_module",
]
