"""Functional interface over :mod:`repro.nn.autograd` tensors.

These helpers mirror the subset of ``torch.nn.functional`` the Naru estimator
uses: activations, losses, and the stable softmax family.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "binary_cross_entropy",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    return x.log_softmax(axis=axis)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood of integer ``targets`` under ``log_probs``.

    Parameters
    ----------
    log_probs:
        ``(batch, classes)`` tensor of log probabilities.
    targets:
        ``(batch,)`` integer class indices.
    """
    picked = log_probs.gather(np.asarray(targets, dtype=np.int64))
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy between ``logits`` and integer ``targets``."""
    return nll_loss(logits.log_softmax(axis=-1), targets)


def mse_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target_tensor = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_tensor
    return (diff * diff).mean()


def binary_cross_entropy(prediction: Tensor, target: np.ndarray | Tensor,
                         eps: float = 1e-12) -> Tensor:
    """Binary cross-entropy on probabilities in ``(0, 1)``."""
    target_tensor = target if isinstance(target, Tensor) else Tensor(target)
    clipped = Tensor(np.clip(prediction.data, eps, 1.0 - eps),
                     requires_grad=prediction.requires_grad)
    # Preserve the graph: re-express the clip as a pass-through on the original
    # tensor when no clipping actually occurred (the common case).
    if np.array_equal(clipped.data, prediction.data):
        clipped = prediction
    loss = -(target_tensor * clipped.log()
             + (1.0 - target_tensor) * (1.0 - clipped).log())
    return loss.mean()
