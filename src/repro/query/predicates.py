"""Predicates and conjunctive queries over dictionary-encoded tables.

The problem statement (§2.2 of the paper) covers conjunctions of per-attribute
filters with the operators ``=, ≠, <, ≤, >, ≥``, interval containment and
``IN``.  All of them reduce, per column, to a *set of valid dictionary codes*
(a boolean mask over the column's domain).  That reduction is what both the
exact executor and every estimator in this package consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

import numpy as np

from ..data.table import Column, Table

__all__ = ["Operator", "Predicate", "Query"]


class Operator(str, Enum):
    """Supported filter operators."""

    EQ = "="
    NEQ = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "in"
    BETWEEN = "between"


@dataclass(frozen=True)
class Predicate:
    """A single filter ``column <op> value``.

    ``value`` is a scalar for comparison operators, an iterable of scalars for
    ``IN`` and a ``(low, high)`` pair (inclusive on both ends) for ``BETWEEN``.
    """

    column: str
    operator: Operator
    value: object

    def __post_init__(self) -> None:
        operator = Operator(self.operator)
        object.__setattr__(self, "operator", operator)
        if operator is Operator.BETWEEN:
            low, high = self.value  # raises if not a 2-sequence
            if low > high:
                raise ValueError(f"BETWEEN bounds out of order: {self.value!r}")
        if operator is Operator.IN and not isinstance(self.value, (list, tuple, set, frozenset, np.ndarray)):
            raise ValueError("IN predicate requires an iterable of values")

    # ------------------------------------------------------------------ #
    def valid_codes(self, column: Column) -> np.ndarray:
        """Boolean mask over the column's domain of codes satisfying the filter.

        Literals need not be present in the domain: comparison operators use
        the sorted-domain order, equality with an absent literal yields an
        all-false mask (zero selectivity contribution).
        """
        domain_size = column.domain_size
        mask = np.zeros(domain_size, dtype=bool)
        op = self.operator
        if op is Operator.EQ or op is Operator.NEQ:
            try:
                code = column.value_to_code(self.value)
                mask[code] = True
            except KeyError:
                pass
            return ~mask if op is Operator.NEQ else mask
        if op is Operator.LE:
            mask[: column.codes_leq(self.value)] = True
            return mask
        if op is Operator.LT:
            mask[: column.codes_lt(self.value)] = True
            return mask
        if op is Operator.GE:
            mask[column.codes_lt(self.value):] = True
            return mask
        if op is Operator.GT:
            mask[column.codes_leq(self.value):] = True
            return mask
        if op is Operator.IN:
            for value in self.value:
                try:
                    mask[column.value_to_code(value)] = True
                except KeyError:
                    continue
            return mask
        if op is Operator.BETWEEN:
            low, high = self.value
            mask[column.codes_lt(low): column.codes_leq(high)] = True
            return mask
        raise AssertionError(f"unhandled operator {op!r}")

    def __str__(self) -> str:
        return f"{self.column} {self.operator.value} {self.value!r}"


class Query:
    """A conjunction of :class:`Predicate` filters over one table's schema.

    Parameters
    ----------
    predicates:
        The conjunctive filters.
    table:
        Optional name of the relation the query targets.  Single-estimator
        code paths ignore it; the multi-model serving layer
        (:class:`repro.serve.FleetRouter`) uses it to route the query to the
        estimator registered under that name.  ``None`` (the default, and what
        every pre-existing call site produces) leaves routing to the server's
        default route.
    """

    def __init__(self, predicates: Sequence[Predicate],
                 table: str | None = None) -> None:
        self.predicates = list(predicates)
        self.table = table

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tuples(cls, filters: Iterable[tuple[str, str, object]],
                    table: str | None = None) -> "Query":
        """Build a query from ``(column, operator, value)`` tuples."""
        return cls([Predicate(col, Operator(op), value) for col, op, value in filters],
                   table=table)

    def qualified(self, table: str) -> "Query":
        """A copy of this query targeting the named relation."""
        return Query(self.predicates, table=table)

    # ------------------------------------------------------------------ #
    @property
    def num_filters(self) -> int:
        """Number of non-wildcard filters."""
        return len(self.predicates)

    def filtered_columns(self) -> list[str]:
        """Names of columns that carry at least one filter."""
        seen: list[str] = []
        for predicate in self.predicates:
            if predicate.column not in seen:
                seen.append(predicate.column)
        return seen

    def column_masks(self, table: Table) -> list[np.ndarray | None]:
        """Per-table-column valid-code masks; ``None`` marks a wildcard column.

        Multiple predicates on the same column are intersected (conjunction).
        """
        masks: list[np.ndarray | None] = [None] * table.num_columns
        for predicate in self.predicates:
            index = table.column_index(predicate.column)
            mask = predicate.valid_codes(table.columns[index])
            masks[index] = mask if masks[index] is None else masks[index] & mask
        return masks

    def region_size(self, table: Table) -> float:
        """Number of points in the query region ``R_1 × … × R_n``.

        Wildcard columns contribute their full domain.  Returned as a float
        because the count easily exceeds 2**63 for wide tables.
        """
        size = 1.0
        for column, mask in zip(table.columns, self.column_masks(table)):
            size *= float(column.domain_size if mask is None else int(mask.sum()))
        return size

    def __iter__(self):
        return iter(self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    def __str__(self) -> str:
        conjunction = " AND ".join(str(p) for p in self.predicates) or "TRUE"
        return f"[{self.table}] {conjunction}" if self.table else conjunction

    def __repr__(self) -> str:
        return f"Query({str(self)})"
