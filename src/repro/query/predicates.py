"""Predicates, conjunctive queries and DNF disjunctions over encoded tables.

The problem statement (§2.2 of the paper) covers conjunctions of per-attribute
filters with the operators ``=, ≠, <, ≤, >, ≥``, interval containment and
``IN``.  All of them reduce, per column, to a *set of valid dictionary codes*
(a boolean mask over the column's domain).  That reduction is what both the
exact executor and every estimator in this package consume.

Two extensions widen the language beyond the paper without changing that
contract:

* ``LIKE 'x%'`` string-prefix filters.  Because every column domain is stored
  sorted, the values sharing a prefix form one contiguous code range, so a
  prefix filter reduces to a valid-code mask exactly like the comparison
  operators.
* :class:`DNFQuery` — a disjunction (``OR``) of conjunctive :class:`Query`
  branches.  Estimators answer it either natively (e.g. by unioning row
  masks over a sample) or through :func:`dnf_expansion`, the
  inclusion–exclusion expansion whose terms are again plain conjunctive
  queries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

import numpy as np

from ..data.table import Column, Table

__all__ = ["Operator", "Predicate", "Query", "DNFQuery", "dnf_expansion",
           "canonical_in_values"]


class Operator(str, Enum):
    """Supported filter operators."""

    EQ = "="
    NEQ = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "in"
    BETWEEN = "between"
    LIKE = "like"


def canonical_in_values(value: Iterable) -> list:
    """The members of an ``IN`` literal in canonical (sorted) order.

    ``IN`` accepts ``set``/``frozenset`` values, which iterate in hash order —
    unstable across processes.  Everything that renders or serialises an
    ``IN`` list (``Predicate.__str__``, workload files, cache keys) sorts the
    members with this type-aware key first, so equal predicates always produce
    byte-identical output.  Duplicates are preserved for list/tuple literals.
    """
    return sorted(value, key=lambda item: (str(type(item)), repr(item)))


@dataclass(frozen=True)
class Predicate:
    """A single filter ``column <op> value``.

    ``value`` is a scalar for comparison operators, an iterable of scalars for
    ``IN``, a ``(low, high)`` pair (inclusive on both ends) for ``BETWEEN``
    and a ``'prefix%'`` pattern string for ``LIKE``.
    """

    column: str
    operator: Operator
    value: object

    def __post_init__(self) -> None:
        operator = Operator(self.operator)
        object.__setattr__(self, "operator", operator)
        if operator is Operator.BETWEEN:
            low, high = self.value  # raises if not a 2-sequence
            if low > high:
                raise ValueError(f"BETWEEN bounds out of order: {self.value!r}")
        if operator is Operator.IN and not isinstance(self.value, (list, tuple, set, frozenset, np.ndarray)):
            raise ValueError("IN predicate requires an iterable of values")
        if operator is Operator.LIKE:
            if not isinstance(self.value, str) or not self.value.endswith("%"):
                raise ValueError(
                    f"LIKE supports prefix patterns of the form 'x%', "
                    f"got {self.value!r}")
            # '_' is a literal character, not a wildcard: the categorical
            # domains of this package label values "name_index".
            if "%" in self.value[:-1]:
                raise ValueError(
                    f"LIKE supports a single trailing '%' wildcard only, "
                    f"got {self.value!r}")

    # ------------------------------------------------------------------ #
    def valid_codes(self, column: Column) -> np.ndarray:
        """Boolean mask over the column's domain of codes satisfying the filter.

        Literals need not be present in the domain: comparison operators use
        the sorted-domain order, equality with an absent literal yields an
        all-false mask (zero selectivity contribution).
        """
        domain_size = column.domain_size
        mask = np.zeros(domain_size, dtype=bool)
        op = self.operator
        if op is Operator.EQ or op is Operator.NEQ:
            try:
                code = column.value_to_code(self.value)
                mask[code] = True
            except KeyError:
                pass
            return ~mask if op is Operator.NEQ else mask
        if op is Operator.LE:
            mask[: column.codes_leq(self.value)] = True
            return mask
        if op is Operator.LT:
            mask[: column.codes_lt(self.value)] = True
            return mask
        if op is Operator.GE:
            mask[column.codes_lt(self.value):] = True
            return mask
        if op is Operator.GT:
            mask[column.codes_leq(self.value):] = True
            return mask
        if op is Operator.IN:
            for value in self.value:
                try:
                    mask[column.value_to_code(value)] = True
                except KeyError:
                    continue
            return mask
        if op is Operator.BETWEEN:
            low, high = self.value
            mask[column.codes_lt(low): column.codes_leq(high)] = True
            return mask
        if op is Operator.LIKE:
            if column.is_numeric:
                raise ValueError(
                    f"LIKE applies to string columns only; "
                    f"{self.column!r} is numeric")
            # The domain is sorted, so values sharing a prefix occupy one
            # contiguous code range: [prefix, prefix + U+10FFFF).  The upper
            # sentinel is the largest code point, so every continuation of
            # the prefix sorts strictly below it.
            prefix = self.value[:-1]
            start = int(np.searchsorted(column.domain, prefix, side="left"))
            stop = int(np.searchsorted(column.domain, prefix + chr(0x10FFFF),
                                       side="left"))
            mask[start:stop] = True
            return mask
        raise AssertionError(f"unhandled operator {op!r}")

    def __str__(self) -> str:
        if self.operator is Operator.IN:
            return f"{self.column} in {canonical_in_values(self.value)!r}"
        return f"{self.column} {self.operator.value} {self.value!r}"


class Query:
    """A conjunction of :class:`Predicate` filters over one table's schema.

    Parameters
    ----------
    predicates:
        The conjunctive filters.
    table:
        Optional name of the relation the query targets.  Single-estimator
        code paths ignore it; the multi-model serving layer
        (:class:`repro.serve.FleetRouter`) uses it to route the query to the
        estimator registered under that name.  ``None`` (the default, and what
        every pre-existing call site produces) leaves routing to the server's
        default route.
    """

    def __init__(self, predicates: Sequence[Predicate],
                 table: str | None = None) -> None:
        self.predicates = list(predicates)
        self.table = table

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tuples(cls, filters: Iterable[tuple[str, str, object]],
                    table: str | None = None) -> "Query":
        """Build a query from ``(column, operator, value)`` tuples."""
        return cls([Predicate(col, Operator(op), value) for col, op, value in filters],
                   table=table)

    def qualified(self, table: str) -> "Query":
        """A copy of this query targeting the named relation."""
        return Query(self.predicates, table=table)

    # ------------------------------------------------------------------ #
    @property
    def num_filters(self) -> int:
        """Number of non-wildcard filters."""
        return len(self.predicates)

    def filtered_columns(self) -> list[str]:
        """Names of columns that carry at least one filter."""
        seen: list[str] = []
        for predicate in self.predicates:
            if predicate.column not in seen:
                seen.append(predicate.column)
        return seen

    def column_masks(self, table: Table) -> list[np.ndarray | None]:
        """Per-table-column valid-code masks; ``None`` marks a wildcard column.

        Multiple predicates on the same column are intersected (conjunction).
        """
        masks: list[np.ndarray | None] = [None] * table.num_columns
        for predicate in self.predicates:
            index = table.column_index(predicate.column)
            mask = predicate.valid_codes(table.columns[index])
            masks[index] = mask if masks[index] is None else masks[index] & mask
        return masks

    def region_size(self, table: Table) -> float:
        """Number of points in the query region ``R_1 × … × R_n``.

        Wildcard columns contribute their full domain.  Returned as a float
        because the count easily exceeds 2**63 for wide tables.
        """
        size = 1.0
        for column, mask in zip(table.columns, self.column_masks(table)):
            size *= float(column.domain_size if mask is None else int(mask.sum()))
        return size

    def __iter__(self):
        return iter(self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    def __str__(self) -> str:
        conjunction = " AND ".join(str(p) for p in self.predicates) or "TRUE"
        return f"[{self.table}] {conjunction}" if self.table else conjunction

    def __repr__(self) -> str:
        return f"Query({str(self)})"


class DNFQuery:
    """A disjunction (``OR``) of conjunctive :class:`Query` branches.

    Disjunctive normal form is the minimal widening of the paper's
    conjunctive language that every estimator can still answer: estimators
    with row-level access (sampling, the exact executor) union per-branch row
    masks, and density models expand the disjunction by inclusion–exclusion
    over conjunctive terms (:func:`dnf_expansion`).

    Branches are stored unqualified; the disjunction's own ``table`` is the
    single routing qualifier.  A single-branch ``DNFQuery`` is semantically
    identical to its branch, and the serving layer guarantees it produces
    bit-identical estimates.

    Parameters
    ----------
    branches:
        The conjunctive branches — :class:`Query` objects or bare predicate
        sequences.  At least one is required.
    table:
        Optional relation qualifier.  When omitted it is inherited from the
        branches; branches naming *different* relations are rejected.
    """

    def __init__(self, branches: Sequence["Query | Sequence[Predicate]"],
                 table: str | None = None) -> None:
        resolved = [branch if isinstance(branch, Query) else Query(branch)
                    for branch in branches]
        if not resolved:
            raise ValueError("a DNF query needs at least one branch")
        tables = {branch.table for branch in resolved
                  if branch.table is not None}
        if table is not None:
            tables.add(table)
        if len(tables) > 1:
            raise ValueError("DNF branches target different relations: "
                             + ", ".join(sorted(tables)))
        self.table = next(iter(tables), None)
        self.branches = [Query(branch.predicates) for branch in resolved]

    # ------------------------------------------------------------------ #
    @classmethod
    def from_tuples(cls, branches: Iterable[Iterable[tuple[str, str, object]]],
                    table: str | None = None) -> "DNFQuery":
        """Build a DNF query from per-branch ``(column, operator, value)`` tuples."""
        return cls([Query.from_tuples(branch) for branch in branches],
                   table=table)

    def qualified(self, table: str) -> "DNFQuery":
        """A copy of this query targeting the named relation."""
        return DNFQuery(self.branches, table=table)

    # ------------------------------------------------------------------ #
    @property
    def num_filters(self) -> int:
        """Total number of filters across all branches."""
        return sum(branch.num_filters for branch in self.branches)

    def filtered_columns(self) -> list[str]:
        """Names of columns filtered by at least one branch, first-seen order."""
        seen: list[str] = []
        for branch in self.branches:
            for column in branch.filtered_columns():
                if column not in seen:
                    seen.append(column)
        return seen

    def branch_masks(self, table: Table) -> list[list[np.ndarray | None]]:
        """Per-branch valid-code masks (see :meth:`Query.column_masks`)."""
        return [branch.column_masks(table) for branch in self.branches]

    def __iter__(self):
        # Yields every predicate across all branches, so schema checks
        # written against conjunctive queries (``for predicate in query``)
        # keep working.  Branch structure is *not* recoverable from this
        # iteration — use ``.branches`` for semantics.
        return itertools.chain.from_iterable(self.branches)

    def __str__(self) -> str:
        disjunction = " OR ".join(f"({branch})" for branch in self.branches)
        return f"[{self.table}] {disjunction}" if self.table else disjunction

    def __repr__(self) -> str:
        return f"DNFQuery({str(self)})"


def dnf_expansion(query: DNFQuery) -> list[tuple[int, Query]]:
    """Signed inclusion–exclusion terms of a DNF query.

    ``sel(B₁ ∪ … ∪ B_k) = Σ_{∅≠S⊆{1..k}} (−1)^{|S|+1} · sel(∧_{i∈S} B_i)``,
    and the intersection of conjunctive branches is itself conjunctive: the
    concatenation of their predicate lists (``Query.column_masks`` intersects
    same-column filters).  Every term is therefore a plain :class:`Query`
    that any conjunctive-capable estimator can answer; summing the signed
    term selectivities yields the disjunction's selectivity.

    Terms are returned in deterministic order — by subset size, then
    lexicographically by branch index — and the single-branch expansion is
    exactly ``[(1, branch)]``.  The expansion has ``2^k − 1`` terms, so
    callers bound the branch count (see ``NaruConfig.max_dnf_branches``).
    """
    branches = query.branches
    terms: list[tuple[int, Query]] = []
    for size in range(1, len(branches) + 1):
        sign = 1 if size % 2 else -1
        for subset in itertools.combinations(range(len(branches)), size):
            predicates = [predicate for index in subset
                          for predicate in branches[index].predicates]
            terms.append((sign, Query(predicates, table=query.table)))
    return terms
