"""Exact query execution: ground-truth selectivities by scanning the table.

The paper obtains true selectivities by executing every workload query on
Postgres; here the same role is played by a vectorised scan over the
dictionary-encoded table.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.table import Table
from .predicates import DNFQuery, Query

__all__ = ["qualifying_rows", "true_cardinality", "true_selectivity",
           "true_selectivities"]


def qualifying_rows(table: Table, query: "Query | DNFQuery") -> np.ndarray:
    """Boolean row mask of tuples satisfying the query.

    Conjunctive queries intersect per-column code masks; DNF queries union
    the row masks of their conjunctive branches, so ground truth exists for
    every shape the serving layer accepts.
    """
    if isinstance(query, DNFQuery):
        mask = np.zeros(table.num_rows, dtype=bool)
        for branch in query.branches:
            mask |= qualifying_rows(table, branch)
        return mask
    mask = np.ones(table.num_rows, dtype=bool)
    for column, domain_mask in zip(table.columns, query.column_masks(table)):
        if domain_mask is None:
            continue
        mask &= domain_mask[column.codes]
        if not mask.any():
            break
    return mask


def true_cardinality(table: Table, query: "Query | DNFQuery") -> int:
    """Exact number of rows satisfying the query."""
    return int(qualifying_rows(table, query).sum())


def true_selectivity(table: Table, query: "Query | DNFQuery") -> float:
    """Exact fraction of rows satisfying the query."""
    return true_cardinality(table, query) / table.num_rows


def true_selectivities(table: Table, queries: Sequence["Query | DNFQuery"]) -> np.ndarray:
    """Exact selectivities of a whole workload, in query order.

    Convenience for scoring served workloads (see :mod:`repro.serve`)
    against ground truth in one call.
    """
    return np.array([true_selectivity(table, query) for query in queries])
