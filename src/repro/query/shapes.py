"""Query-shape classification for capability-based estimator routing.

The serving layer dispatches each query to the best-capable estimator by
*shape*: the structural class that decides which estimation strategies can
answer it.  Estimators advertise the shapes they serve
(:meth:`repro.estimators.base.CardinalityEstimator.capabilities`) as sets of
:class:`QueryShape`, and :class:`repro.serve.FleetRouter` matches
:func:`query_shape` against those sets when picking the ``(relation,
estimator)`` pair for a submission.
"""

from __future__ import annotations

from enum import Enum

from .predicates import DNFQuery, Operator, Query

__all__ = ["QueryShape", "query_shape"]


class QueryShape(str, Enum):
    """Structural classes of the query language.

    ``CONJUNCTIVE``
        The paper's language: a conjunction of ``=, ≠, <, ≤, >, ≥``,
        ``BETWEEN`` and ``IN`` filters.  Every estimator serves it.
    ``PREFIX``
        A conjunction containing at least one ``LIKE 'x%'`` string-prefix
        filter.  Reduces to valid-code masks like any other conjunction, so
        every mask-based estimator serves it too.
    ``DISJUNCTIVE``
        A :class:`~repro.query.predicates.DNFQuery` with two or more
        branches.  Needs either native union support or an
        inclusion–exclusion expansion; branches may themselves contain
        ``LIKE`` filters.
    """

    CONJUNCTIVE = "conjunctive"
    PREFIX = "prefix"
    DISJUNCTIVE = "disjunctive"


def query_shape(query: "Query | DNFQuery") -> QueryShape:
    """Classify a query into its :class:`QueryShape`.

    A single-branch DNF query classifies as its branch would — it is
    semantically a plain conjunction, and the serving layer answers it
    bit-identically to one.
    """
    if isinstance(query, DNFQuery):
        if len(query.branches) > 1:
            return QueryShape.DISJUNCTIVE
        return query_shape(query.branches[0])
    if any(predicate.operator is Operator.LIKE for predicate in query.predicates):
        return QueryShape.PREFIX
    return QueryShape.CONJUNCTIVE
