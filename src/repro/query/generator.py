"""Workload generation following §6.1.3 of the paper.

The generator draws, for each query:

1. the number of filters ``f`` uniformly from ``[min_filters, max_filters]``
   (the paper uses 5–11 on an 11-column table to avoid trivially selective
   queries),
2. ``f`` distinct columns uniformly at random,
3. one operator per column — ``{=, ≤, ≥}`` uniformly for columns whose domain
   has at least 10 values, ``=`` otherwise (no range predicates on small
   categoricals), and
4. the filter literals from a uniformly sampled data tuple, so literals follow
   the data distribution.

:class:`OODWorkloadGenerator` produces the out-of-distribution variant used in
§6.3 where the literals are drawn from the full per-column domain instead,
which makes most queries empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..data.table import Table
from .executor import true_selectivity
from .predicates import Operator, Predicate, Query

__all__ = ["LabeledQuery", "WorkloadGenerator", "OODWorkloadGenerator"]

_RANGE_DOMAIN_THRESHOLD = 10
_RANGE_OPERATORS = (Operator.EQ, Operator.LE, Operator.GE)


@dataclass(frozen=True)
class LabeledQuery:
    """A query together with its exact cardinality and selectivity."""

    query: Query
    cardinality: int
    selectivity: float


class WorkloadGenerator:
    """Random conjunctive range/equality workloads over a table.

    Parameters
    ----------
    table:
        The relation to generate queries against.
    min_filters, max_filters:
        Inclusive bounds on the number of (non-wildcard) filters per query;
        ``max_filters`` is clipped to the number of columns.
    seed:
        Seed for the deterministic pseudo-random generator.
    """

    def __init__(self, table: Table, min_filters: int = 5,
                 max_filters: int = 11, seed: int = 0) -> None:
        if min_filters < 1:
            raise ValueError("min_filters must be at least 1")
        self.table = table
        self.min_filters = min(min_filters, table.num_columns)
        self.max_filters = min(max_filters, table.num_columns)
        if self.min_filters > self.max_filters:
            raise ValueError("min_filters exceeds max_filters after clipping")
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def _pick_operator(self, domain_size: int) -> Operator:
        if domain_size >= _RANGE_DOMAIN_THRESHOLD:
            return _RANGE_OPERATORS[self._rng.integers(0, len(_RANGE_OPERATORS))]
        return Operator.EQ

    def _pick_literals(self, column_indices: np.ndarray) -> list:
        """Literals come from a uniformly sampled data tuple (in-distribution)."""
        row = int(self._rng.integers(0, self.table.num_rows))
        return [self.table.columns[index].values[row] for index in column_indices]

    def generate_query(self) -> Query:
        """Generate one random conjunctive query."""
        num_filters = int(self._rng.integers(self.min_filters, self.max_filters + 1))
        column_indices = self._rng.choice(self.table.num_columns, size=num_filters,
                                          replace=False)
        literals = self._pick_literals(column_indices)
        predicates = []
        for index, literal in zip(column_indices, literals):
            column = self.table.columns[index]
            operator = self._pick_operator(column.domain_size)
            predicates.append(Predicate(column.name, operator, literal))
        return Query(predicates)

    def generate(self, count: int) -> list[Query]:
        """Generate ``count`` random queries."""
        return [self.generate_query() for _ in range(count)]

    def generate_labeled(self, count: int) -> list[LabeledQuery]:
        """Generate queries together with exact cardinalities (ground truth)."""
        labeled = []
        for query in self.generate(count):
            selectivity = true_selectivity(self.table, query)
            labeled.append(LabeledQuery(
                query=query,
                cardinality=int(round(selectivity * self.table.num_rows)),
                selectivity=selectivity,
            ))
        return labeled

    def __iter__(self) -> Iterator[Query]:
        while True:
            yield self.generate_query()


class OODWorkloadGenerator(WorkloadGenerator):
    """Out-of-distribution workloads: literals drawn from the full domain.

    Because the joint domain is astronomically larger than the data, almost
    every generated query has zero true cardinality — the regime used by the
    paper to test estimator robustness (§6.3, Table 5).
    """

    def _pick_literals(self, column_indices: np.ndarray) -> list:
        literals = []
        for index in column_indices:
            domain = self.table.columns[index].domain
            literals.append(domain[int(self._rng.integers(0, domain.size))])
        return literals
