"""Accuracy metrics: multiplicative (q-)error, buckets and quantile summaries.

Matches §6.1.3 of the paper: the reported metric is the multiplicative error
``max(estimate, actual) / min(estimate, actual)`` with both cardinalities
floored at 1, reported in quantiles (median / 95th / 99th / max) and grouped
by true-selectivity bucket (high > 2%, medium 0.5–2%, low ≤ 0.5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "q_error",
    "selectivity_bucket",
    "ErrorSummary",
    "summarize_errors",
    "bucketize",
    "SELECTIVITY_BUCKETS",
]

#: Bucket names in the order the paper's tables print them.
SELECTIVITY_BUCKETS = ("high", "medium", "low")

_HIGH_THRESHOLD = 0.02
_MEDIUM_THRESHOLD = 0.005


def q_error(estimated_cardinality: float, true_cardinality: float) -> float:
    """Multiplicative error between an estimate and the truth.

    Both inputs are floored at 1 tuple to guard against division by zero, as
    in the paper.
    """
    estimate = max(float(estimated_cardinality), 1.0)
    actual = max(float(true_cardinality), 1.0)
    return max(estimate, actual) / min(estimate, actual)


def selectivity_bucket(selectivity: float) -> str:
    """Classify a true selectivity into the paper's high/medium/low buckets."""
    if selectivity > _HIGH_THRESHOLD:
        return "high"
    if selectivity > _MEDIUM_THRESHOLD:
        return "medium"
    return "low"


@dataclass(frozen=True)
class ErrorSummary:
    """Quantile summary of a set of q-errors."""

    count: int
    median: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }

    def __str__(self) -> str:
        return (f"median={self.median:.2f} p95={self.p95:.2f} "
                f"p99={self.p99:.2f} max={self.maximum:.2f} (n={self.count})")


def summarize_errors(errors: Iterable[float]) -> ErrorSummary:
    """Compute the paper's quantiles (median, 95th, 99th, max) of q-errors."""
    values = np.asarray(list(errors), dtype=np.float64)
    if values.size == 0:
        return ErrorSummary(count=0, median=float("nan"), p95=float("nan"),
                            p99=float("nan"), maximum=float("nan"))
    return ErrorSummary(
        count=int(values.size),
        median=float(np.quantile(values, 0.5)),
        p95=float(np.quantile(values, 0.95)),
        p99=float(np.quantile(values, 0.99)),
        maximum=float(values.max()),
    )


def bucketize(errors: Sequence[float],
              selectivities: Sequence[float]) -> Mapping[str, ErrorSummary]:
    """Group q-errors by true-selectivity bucket and summarise each group."""
    if len(errors) != len(selectivities):
        raise ValueError("errors and selectivities must have the same length")
    grouped: dict[str, list[float]] = {bucket: [] for bucket in SELECTIVITY_BUCKETS}
    for error, selectivity in zip(errors, selectivities):
        grouped[selectivity_bucket(selectivity)].append(error)
    return {bucket: summarize_errors(values) for bucket, values in grouped.items()}
