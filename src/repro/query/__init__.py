"""Query machinery: predicates, workload generation, exact execution, metrics."""

from .executor import (qualifying_rows, true_cardinality, true_selectivities,
                       true_selectivity)
from .generator import LabeledQuery, OODWorkloadGenerator, WorkloadGenerator
from .metrics import (
    SELECTIVITY_BUCKETS,
    ErrorSummary,
    bucketize,
    q_error,
    selectivity_bucket,
    summarize_errors,
)
from .predicates import Operator, Predicate, Query

__all__ = [
    "Operator",
    "Predicate",
    "Query",
    "qualifying_rows",
    "true_cardinality",
    "true_selectivity",
    "true_selectivities",
    "WorkloadGenerator",
    "OODWorkloadGenerator",
    "LabeledQuery",
    "q_error",
    "selectivity_bucket",
    "summarize_errors",
    "bucketize",
    "ErrorSummary",
    "SELECTIVITY_BUCKETS",
]
