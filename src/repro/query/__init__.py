"""Query machinery: predicates, workload generation, exact execution, metrics."""

from .executor import (qualifying_rows, true_cardinality, true_selectivities,
                       true_selectivity)
from .generator import LabeledQuery, OODWorkloadGenerator, WorkloadGenerator
from .metrics import (
    SELECTIVITY_BUCKETS,
    ErrorSummary,
    bucketize,
    q_error,
    selectivity_bucket,
    summarize_errors,
)
from .predicates import (DNFQuery, Operator, Predicate, Query,
                         canonical_in_values, dnf_expansion)
from .shapes import QueryShape, query_shape

__all__ = [
    "Operator",
    "Predicate",
    "Query",
    "DNFQuery",
    "dnf_expansion",
    "canonical_in_values",
    "QueryShape",
    "query_shape",
    "qualifying_rows",
    "true_cardinality",
    "true_selectivity",
    "true_selectivities",
    "WorkloadGenerator",
    "OODWorkloadGenerator",
    "LabeledQuery",
    "q_error",
    "selectivity_bucket",
    "summarize_errors",
    "bucketize",
    "ErrorSummary",
    "SELECTIVITY_BUCKETS",
]
